"""Bench ext-equity — what a region-level score hides.

Paper artifact: the expert panel behind Fig. 2 / Table 1 included
"digital inclusion advocacy" (footnote 1); the equity question is why.
A single regional IQB score averages over subscriber groups; this
bench breaks the mixed-urban preset down by ISP and by access
technology and reports the internal gap.

Expected shape: the region's fiber minority scores far above its DSL
pockets — a gap on the order of the *entire* spread between the best
and worst region presets, invisible in the region-level number.
"""

from repro.analysis.equity import scores_by_isp, scores_by_technology
from repro.analysis.tables import render_table

REGION = "mixed-urban"


def test_bench_equity_by_technology(benchmark, campaigns, config):
    records = campaigns[REGION]
    breakdown = benchmark(scores_by_technology, records, REGION, config)

    rows = [
        (g.group, "n/a" if g.score is None else f"{g.score:.3f}", g.samples)
        for g in breakdown.scored_groups()
    ]
    print(
        f"\n[ext-equity] {REGION!r} by access technology "
        f"(region-level IQB {breakdown.overall:.3f}):"
    )
    print(render_table(["Technology", "IQB", "Tests"], rows))
    print(f"Equity gap: {breakdown.gap:.3f}")

    scores = {g.group: g.score for g in breakdown.scored_groups()}
    assert scores["fiber"] > scores["cable"] > scores["dsl"]
    # The internal divide rivals the cross-region spread.
    assert breakdown.gap > 0.3
    # The region-level score hides the worst group's experience.
    assert breakdown.overall - scores["dsl"] > 0.2


def test_bench_equity_by_isp(benchmark, campaigns, config):
    records = campaigns[REGION]
    breakdown = benchmark(scores_by_isp, records, REGION, config)

    rows = [
        (g.group, "n/a" if g.score is None else f"{g.score:.3f}", g.samples)
        for g in breakdown.scored_groups()
    ]
    print(f"\n[ext-equity] {REGION!r} by ISP:")
    print(render_table(["ISP", "IQB", "Tests"], rows))

    scores = {g.group: g.score for g in breakdown.scored_groups()}
    assert scores["UrbanFiber"] > scores["CityCable"]
    assert breakdown.gap is not None and breakdown.gap > 0.1
