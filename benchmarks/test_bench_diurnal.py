"""Bench ext-diurnal — prime-time degradation per region.

Paper artifact: the datasets tier ingests crowdsourced tests taken at
all hours; whether a region's quality *survives the evening* is the
congestion question a speed test taken at noon cannot answer. The
bench splits each preset's campaign into prime-time (18-23h) and
off-peak tests and scores both halves.

Expected shape: oversubscribed regions (load factor > 1) degrade at
peak; the lightly-loaded fiber metro barely moves; floor-limited
regions (already ~0 off-peak) cannot show degradation.
"""

from repro.analysis.tables import render_table
from repro.analysis.temporal import peak_vs_offpeak
from repro.netsim import REGION_PRESETS


def test_bench_peak_vs_offpeak(benchmark, campaigns, config):
    def analyze():
        return {
            region: peak_vs_offpeak(records, region, config)
            for region, records in campaigns.items()
        }

    contrasts = benchmark(analyze)

    rows = []
    for region, contrast in sorted(contrasts.items()):
        rows.append(
            (
                region,
                contrast.peak_score,
                contrast.off_peak_score,
                (
                    "n/a"
                    if contrast.degradation is None
                    else f"{contrast.degradation:+.3f}"
                ),
                REGION_PRESETS[region].load_factor,
            )
        )
    print("\n[ext-diurnal] Prime-time vs off-peak IQB:")
    print(
        render_table(
            ["Region", "Peak", "Off-peak", "Degradation", "Load factor"],
            rows,
        )
    )

    for region, contrast in contrasts.items():
        assert contrast.peak_score is not None, region
        assert contrast.off_peak_score is not None, region
        # Evenings are never clearly *better* than off-peak.
        assert contrast.degradation >= -0.1, region

    # Somewhere the evening bites visibly.
    assert any(c.degradation > 0.05 for c in contrasts.values())
    # The lightly-loaded fiber metro degrades less than the
    # oversubscribed cable suburb.
    assert (
        contrasts["metro-fiber"].degradation
        <= contrasts["suburban-cable"].degradation + 0.05
    )
