#!/usr/bin/env python
"""Scoring-benchmark regression gate.

Runs the scale and Eq. 1-5 scoring benches under ``pytest-benchmark``,
writes the machine-readable results to ``BENCH_scale.json``, and fails
(exit code 1) when any scoring benchmark's median time regresses more
than the allowed fraction (default 20%) against the checked-in baseline
``benchmarks/BENCH_baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py
    PYTHONPATH=src python benchmarks/compare_bench.py --threshold 0.1
    PYTHONPATH=src python benchmarks/compare_bench.py --update-baseline

``--update-baseline`` re-records the baseline from the fresh run (use
after an intentional perf change, and commit the result). Benchmarks
present in only one of the two files are reported but never fail the
gate, so adding a bench does not break CI until a baseline exists.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Dict

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"
RESULTS_PATH = REPO_ROOT / "BENCH_scale.json"
BENCH_FILES = (
    "test_bench_scale.py",
    "test_bench_eq_scoring.py",
    "test_bench_parallel.py",
)


def run_benches(results_path: Path) -> int:
    """Run the scoring benches, writing pytest-benchmark JSON."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[str(BENCH_DIR / name) for name in BENCH_FILES],
        "-q",
        "--benchmark-only",
        f"--benchmark-json={results_path}",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    return completed.returncode


def load_medians(path: Path) -> Dict[str, float]:
    """benchmark name → median seconds from a pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in document.get("benchmarks", [])
    }


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
) -> int:
    """Print the comparison table; return the number of regressions."""
    regressions = 0
    width = max((len(name) for name in current), default=10)
    print(f"{'benchmark'.ljust(width)}  baseline    current     ratio")
    for name in sorted(current):
        median = current[name]
        base = baseline.get(name)
        if base is None or base <= 0.0:
            print(f"{name.ljust(width)}  {'n/a':>9}  {median:9.6f}  (no baseline)")
            continue
        ratio = median / base
        verdict = ""
        if ratio > 1.0 + threshold:
            verdict = f"  REGRESSION (> +{threshold:.0%})"
            regressions += 1
        print(
            f"{name.ljust(width)}  {base:9.6f}  {median:9.6f}  {ratio:8.2f}x"
            f"{verdict}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"{name.ljust(width)}  (in baseline only; not run)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed median-time regression fraction (default 0.20)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record this run as the new checked-in baseline",
    )
    parser.add_argument(
        "--results",
        default=str(RESULTS_PATH),
        help="where to write the fresh benchmark JSON",
    )
    args = parser.parse_args(argv)

    if importlib.util.find_spec("pytest_benchmark") is None:
        print(
            "compare_bench: pytest-benchmark is not installed; "
            "install it (pip install pytest-benchmark) to run the gate",
            file=sys.stderr,
        )
        return 1

    results_path = Path(args.results)
    code = run_benches(results_path)
    if code != 0:
        print(f"benchmark run failed with exit code {code}", file=sys.stderr)
        return code
    if not results_path.exists():
        print(
            f"compare_bench: benchmark run produced no {results_path}; "
            "pytest-benchmark may have collected zero benchmarks",
            file=sys.stderr,
        )
        return 1
    print(f"wrote {results_path}")

    if args.update_baseline:
        shutil.copyfile(results_path, BASELINE_PATH)
        print(f"updated baseline at {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with --update-baseline "
            f"to record one",
            file=sys.stderr,
        )
        return 1

    regressions = compare(
        load_medians(BASELINE_PATH),
        load_medians(results_path),
        args.threshold,
    )
    if regressions:
        print(
            f"{regressions} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {BASELINE_PATH.name}",
            file=sys.stderr,
        )
        return 1
    print("no scoring benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
