#!/usr/bin/env python
"""Scoring-benchmark regression gate.

Runs the scale, Eq. 1-5 scoring, parallel, kernel, streaming, and
serving benches under
``pytest-benchmark``, writes the machine-readable results to
``BENCH_scale.json``, and fails (exit code 1) when any scoring
benchmark regresses more than the allowed fraction (default 20%)
against the checked-in baseline ``benchmarks/BENCH_baseline.json``.

Two measures keep the gate meaningful on shared/noisy machines, where
raw wall-clock medians of an *unchanged* tree swing far beyond 20%
between runs:

* each bench is compared on its **min** round time (the
  least-disturbed round; the classic noise-robust statistic), and
* per-bench ratios are **drift-normalized** by the cohort's median
  ratio, which cancels whole-machine speed differences between the
  baseline run and this run. A real regression stands out against the
  cohort; a slow CI box does not. (The flip side — a change that
  slows *every* bench by the same factor is invisible here — is an
  accepted tradeoff; the per-bench assertions inside the bench files
  still bound absolute behaviour.)

On top of the relative threshold, a bench must also be at least
``--slack`` seconds (default 0.5ms) slower than its drift-adjusted
baseline to count as a regression: sub-millisecond microbenches
jitter by double-digit percentages between processes (allocator and
layout effects), and a relative-only gate would flag them forever.

When the first run still reports regressions the gate re-runs the
benches (up to ``--retries`` extra passes) and keeps each bench's
best-of-all-runs time before re-comparing. Load spikes during a
~50s sequential bench run hit different benches in different runs,
so the per-bench minimum converges on quiet-machine numbers; a real
regression is slow in every run and survives the merge.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py
    PYTHONPATH=src python benchmarks/compare_bench.py --threshold 0.1
    PYTHONPATH=src python benchmarks/compare_bench.py --update-baseline

``--update-baseline`` re-records the baseline from the fresh run (use
after an intentional perf change, and commit the result). Benchmarks
present in only one of the two files are reported but never fail the
gate, so adding a bench does not break CI until a baseline exists.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import shutil
import subprocess
import sys
from pathlib import Path
from typing import Dict

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"
RESULTS_PATH = REPO_ROOT / "BENCH_scale.json"
BENCH_FILES = (
    "test_bench_scale.py",
    "test_bench_eq_scoring.py",
    "test_bench_parallel.py",
    "test_bench_kernel.py",
    "test_bench_streaming.py",
    "test_bench_health.py",
    "test_bench_serve.py",
    "test_bench_cache.py",
)

#: The pair of kernel benches the summary speedup ratio is read from.
SPEEDUP_BENCHES = (
    "test_bench_exact_kernel[256]",
    "test_bench_vectorized_kernel[256]",
)

#: Batch recompute vs incremental streaming re-score at a 100k-record
#: buffered window (see test_bench_streaming.py).
STREAMING_BENCHES = (
    "test_bench_batch_rescore",
    "test_bench_incremental_rescore",
)

#: Invalidated kernel sweep vs warm cached read on the 256-region
#: serving plane (see test_bench_serve.py).
SERVE_BENCHES = (
    "test_bench_serve_cold_sweep",
    "test_bench_serve_warm_read",
)

#: Cold JSONL re-ingest vs tile warm-start on the 100k-record
#: campaign (see test_bench_cache.py).
CACHE_BENCHES = (
    "test_bench_cold_reingest",
    "test_bench_cache_warm_start",
)


def run_benches(results_path: Path) -> int:
    """Run the scoring benches, writing pytest-benchmark JSON."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[str(BENCH_DIR / name) for name in BENCH_FILES],
        "-q",
        "--benchmark-only",
        # One timer for the whole cohort: drift normalization divides
        # every bench by the cohort median ratio, which is only sound
        # when all benches move with the same clock. CPU time also
        # shields the gate from noisy-neighbour wall-clock swings.
        "--benchmark-timer=time.process_time",
        "--benchmark-warmup=on",
        "--benchmark-warmup-iterations=1",
        "--benchmark-min-rounds=7",
        f"--benchmark-json={results_path}",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    return completed.returncode


def load_times(path: Path, stat: str = "min") -> Dict[str, float]:
    """benchmark name → ``stat`` seconds from a pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return {
        bench["name"]: float(bench["stats"][stat])
        for bench in document.get("benchmarks", [])
    }


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    slack: float = 0.0005,
) -> int:
    """Print the comparison table; return the number of regressions.

    Ratios are drift-normalized: each bench's current/baseline ratio
    is divided by the cohort's median ratio, so a uniformly slower or
    faster machine cancels out and only per-bench outliers regress.
    A bench must exceed the relative threshold *and* be more than
    ``slack`` seconds over its drift-adjusted baseline to regress.
    """
    regressions = 0
    width = max((len(name) for name in current), default=10)
    ratios = {
        name: current[name] / baseline[name]
        for name in current
        if baseline.get(name, 0.0) > 0.0
    }
    drift = _median(ratios.values()) if ratios else 1.0
    if drift <= 0.0:
        drift = 1.0
    print(f"machine drift vs baseline run: {drift:.2f}x (cohort median)")
    print(
        f"{'benchmark'.ljust(width)}  baseline    current     ratio"
        f"  normalized"
    )
    for name in sorted(current):
        value = current[name]
        base = baseline.get(name)
        if base is None or base <= 0.0:
            print(f"{name.ljust(width)}  {'n/a':>9}  {value:9.6f}  (no baseline)")
            continue
        ratio = ratios[name]
        normalized = ratio / drift
        verdict = ""
        over_relative = normalized > 1.0 + threshold
        over_absolute = (value - base * drift) > slack
        if over_relative and over_absolute:
            verdict = f"  REGRESSION (> +{threshold:.0%})"
            regressions += 1
        elif over_relative:
            verdict = "  (jitter: within absolute slack)"
        print(
            f"{name.ljust(width)}  {base:9.6f}  {value:9.6f}  {ratio:8.2f}x"
            f"  {normalized:8.2f}x{verdict}"
        )
    for name in sorted(set(baseline) - set(current)):
        print(f"{name.ljust(width)}  (in baseline only; not run)")
    return regressions


def kernel_speedup(current: Dict[str, float]):
    """exact/vectorized time ratio on the 256-region kernel bench."""
    exact_name, vectorized_name = SPEEDUP_BENCHES
    exact = current.get(exact_name)
    vectorized = current.get(vectorized_name)
    if not exact or not vectorized:
        return None
    return exact / vectorized


def streaming_speedup(current: Dict[str, float]):
    """batch/incremental time ratio on the 100k streaming benches."""
    batch_name, incremental_name = STREAMING_BENCHES
    batch = current.get(batch_name)
    incremental = current.get(incremental_name)
    if not batch or not incremental:
        return None
    return batch / incremental


def serve_speedup(current: Dict[str, float]):
    """cold-sweep/warm-read time ratio on the 256-region serve bench."""
    cold_name, warm_name = SERVE_BENCHES
    cold = current.get(cold_name)
    warm = current.get(warm_name)
    if not cold or not warm:
        return None
    return cold / warm


def cache_speedup(current: Dict[str, float]):
    """re-ingest/warm-start time ratio on the 100k cache benches."""
    cold_name, warm_name = CACHE_BENCHES
    cold = current.get(cold_name)
    warm = current.get(warm_name)
    if not cold or not warm:
        return None
    return cold / warm


def speedup_note(current: Dict[str, float]) -> str:
    """Human-readable summary of the headline speedup ratios."""
    parts = []
    kernel = kernel_speedup(current)
    if kernel is not None:
        parts.append(
            f"exact/vectorized kernel speedup at 256 regions: {kernel:.1f}x"
        )
    streaming = streaming_speedup(current)
    if streaming is not None:
        parts.append(
            f"batch/incremental streaming re-score speedup at 100k: "
            f"{streaming:.1f}x"
        )
    serve = serve_speedup(current)
    if serve is not None:
        parts.append(
            f"warm-cache serve read speedup at 256 regions: {serve:.0f}x"
        )
    cache = cache_speedup(current)
    if cache is not None:
        parts.append(
            f"cache warm-start speedup at 100k records: {cache:.1f}x"
        )
    if not parts:
        return ""
    return f" ({'; '.join(parts)})"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed median-time regression fraction (default 0.20)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.0005,
        help=(
            "absolute seconds a bench must exceed its drift-adjusted "
            "baseline by to regress (default 0.0005)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help=(
            "extra bench passes to merge (best-of) when the first "
            "comparison reports regressions (default 2)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record this run as the new checked-in baseline",
    )
    parser.add_argument(
        "--results",
        default=str(RESULTS_PATH),
        help="where to write the fresh benchmark JSON",
    )
    args = parser.parse_args(argv)

    if importlib.util.find_spec("pytest_benchmark") is None:
        print(
            "compare_bench: pytest-benchmark is not installed; "
            "install it (pip install pytest-benchmark) to run the gate",
            file=sys.stderr,
        )
        return 1

    results_path = Path(args.results)
    code = run_benches(results_path)
    if code != 0:
        print(f"benchmark run failed with exit code {code}", file=sys.stderr)
        return code
    if not results_path.exists():
        print(
            f"compare_bench: benchmark run produced no {results_path}; "
            "pytest-benchmark may have collected zero benchmarks",
            file=sys.stderr,
        )
        return 1
    print(f"wrote {results_path}")

    current = load_times(results_path)
    note = speedup_note(current)

    if args.update_baseline:
        shutil.copyfile(results_path, BASELINE_PATH)
        print(f"updated baseline at {BASELINE_PATH}{note}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with --update-baseline "
            f"to record one",
            file=sys.stderr,
        )
        return 1

    baseline = load_times(BASELINE_PATH)
    regressions = compare(baseline, current, args.threshold, args.slack)
    retries_left = max(args.retries, 0)
    while regressions and retries_left:
        retries_left -= 1
        print(
            f"{regressions} apparent regression(s); re-running benches "
            f"and merging best-of times ({retries_left} retries left)"
        )
        code = run_benches(results_path)
        if code != 0:
            print(
                f"benchmark re-run failed with exit code {code}",
                file=sys.stderr,
            )
            return code
        rerun = load_times(results_path)
        current = {
            name: min(value, rerun.get(name, value))
            for name, value in current.items()
        }
        note = speedup_note(current)
        regressions = compare(baseline, current, args.threshold, args.slack)
    if regressions:
        print(
            f"{regressions} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs {BASELINE_PATH.name}",
            file=sys.stderr,
        )
        return 1
    print("no scoring benchmark regressed beyond the threshold" + note)
    return 0


if __name__ == "__main__":
    sys.exit(main())
