"""Bench ext-sketch — bounded-memory quantiles for fleet-scale collection.

Paper artifact: the datasets tier must compute per-region 95th
percentiles over measurement volumes that a central raw-data pipeline
handles today but a privacy-conscious or edge-heavy deployment might
not want to centralize. The bench quantifies what the mergeable
t-digest buys and costs:

* memory (centroid count) vs p95 error against the exact percentile,
  across compression settings;
* end-to-end scoring agreement when four collector shards sketch
  disjoint slices of a campaign and a coordinator merges them.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import score_region
from repro.core.metrics import Metric
from repro.measurements.tdigest import TDigest
from repro.probing.sinks import TDigestSink

REGION = "suburban-cable"


def test_bench_memory_vs_accuracy(benchmark, campaigns):
    # Pool every region's NDT downloads: a realistic multi-thousand
    # stream rather than one region's few hundred tests.
    values = []
    for records in campaigns.values():
        values.extend(records.for_source("ndt").values(Metric.DOWNLOAD))
    from repro.core.aggregation import percentile_of

    exact = percentile_of(values, 95.0)

    def sweep():
        out = {}
        for delta in (20, 50, 100, 300):
            digest = TDigest(delta=delta)
            digest.extend(values)
            estimate = digest.quantile(95.0)
            out[delta] = (digest.centroid_count, estimate)
        return out

    results = benchmark(sweep)

    rows = [
        (
            delta,
            centroids,
            estimate,
            abs(estimate - exact) / exact,
        )
        for delta, (centroids, estimate) in sorted(results.items())
    ]
    print(
        f"\n[ext-sketch] NDT download p95 over {len(values)} tests "
        f"(exact {exact:.1f} Mb/s):"
    )
    print(
        render_table(
            ["delta", "Centroids", "p95 estimate", "Rel error"], rows
        )
    )

    for delta, (centroids, estimate) in results.items():
        assert estimate == pytest.approx(exact, rel=0.1)
    # Practical settings are genuinely sketches (delta=300 on a stream
    # this short keeps most points and is included only as the
    # near-exact reference row).
    assert results[100][0] < len(values) / 2
    assert results[20][0] < len(values) / 10


def test_bench_sharded_scoring(benchmark, campaigns, config):
    records = campaigns[REGION]

    def shard_and_score():
        sinks = [TDigestSink() for _ in range(4)]
        for i, record in enumerate(records):
            sinks[i % 4].accept(record)
        merged = sinks[0]
        for sink in sinks[1:]:
            merged = merged.merge(sink)
        return score_region(merged.sources_for(REGION), config).value

    sketched = benchmark.pedantic(shard_and_score, rounds=1, iterations=1)
    exact = score_region(records.group_by_source(), config).value

    print(
        f"\n[ext-sketch] IQB from 4 merged collector shards: "
        f"{sketched:.3f} vs exact {exact:.3f}"
    )
    assert sketched == pytest.approx(exact, abs=0.12)
