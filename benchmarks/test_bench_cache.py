"""Dataset-cache benchmarks: warm-start from tiles vs re-ingesting raw
measurements.

The cache's performance contract is that ``iqb score --from-cache``
skips the expensive part of a cold start — parsing ~100k JSONL lines
and folding every measurement into the sketch plane — by loading
pre-aggregated quantile-sketch tiles whose size scales with *cells*
(region × source), not records.

Three pytest-benchmark entries (tracked by ``compare_bench`` against
``BENCH_baseline.json``) at a ≥100k-record campaign:

* ``test_bench_cold_reingest`` — the path the cache replaces: read the
  JSONL file, sketch every record, score.
* ``test_bench_cache_warm_start`` — verified tile reads, plane
  reassembly from sketch state, score.
* ``test_bench_cache_build`` — the producer-side one-time cost of
  reducing the campaign to published tiles.

``TestWarmStartSpeedup`` is the acceptance gate: warm-start must beat
re-ingest by ≥ 5x on the same campaign.
"""

import dataclasses
import gc
import time

import pytest

from repro.cache import LocalCache, warm_plane, write_tiles
from repro.core.config import paper_config
from repro.core.kernel import score_values
from repro.measurements.io import read_jsonl, write_jsonl
from repro.netsim import CampaignConfig, region_preset, simulate_region

#: Same scale as the streaming benches: 16 regions × (3 clients ×
#: 2100 tests) = 100,800 records — past the 100k acceptance mark.
_REGIONS = 16
_CAMPAIGN = CampaignConfig(subscribers=3, tests_per_client=2100)
_SEED = 42


def _buffer():
    """The campaign: one simulated region cloned across 16."""
    base = list(
        simulate_region(
            region_preset("mixed-urban"), seed=_SEED, config=_CAMPAIGN
        )
    )
    records = []
    for i in range(_REGIONS):
        records.extend(
            dataclasses.replace(record, region=f"region-{i:02d}")
            for record in base
        )
    return records


@pytest.fixture(scope="module")
def cache_config():
    return paper_config()


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """(jsonl path, cache root) — dataset written and tiles built once.

    Both benched paths start from bytes on disk, so the comparison is
    cold-start vs warm-start of the same campaign, not parse vs
    no-parse of different data.
    """
    root = tmp_path_factory.mktemp("bench-cache")
    path = root / "campaign.jsonl"
    records = _buffer()
    write_jsonl(records, path)
    cache = LocalCache(root / "cache")
    write_tiles(cache, records)
    return path, cache.root, records


def _cold(path, config):
    from repro.measurements.sketchplane import sketch_records

    plane = sketch_records(read_jsonl(path))
    return score_values(plane, config)


def _warm(cache_root, config):
    plane = warm_plane(LocalCache(cache_root))
    return score_values(plane, config)


#: CPU time, not wall time — same rationale as the kernel benches.
_STEADY = pytest.mark.benchmark(
    timer=time.process_time, min_rounds=5, warmup=True
)


@_STEADY
def test_bench_cold_reingest(benchmark, campaign, cache_config):
    path, _, _ = campaign
    result = benchmark(lambda: _cold(path, cache_config))
    assert len(result) == _REGIONS


@_STEADY
def test_bench_cache_warm_start(benchmark, campaign, cache_config):
    _, cache_root, _ = campaign
    result = benchmark(lambda: _warm(cache_root, cache_config))
    assert len(result) == _REGIONS
    assert all(0.0 <= value <= 1.0 for value in result.values())


@_STEADY
def test_bench_cache_build(benchmark, campaign, tmp_path):
    _, _, records = campaign
    counter = iter(range(1_000_000))

    def build():
        cache = LocalCache(tmp_path / f"build-{next(counter)}")
        return write_tiles(cache, records)

    entries = benchmark(build)
    assert entries


class TestWarmStartSpeedup:
    """The acceptance bar: ≥ 5x at a ≥100k-record campaign."""

    ROUNDS = 7

    @staticmethod
    def _cpu_time(fn):
        gc.collect()
        start = time.process_time()
        fn()
        return time.process_time() - start

    def test_warm_start_speedup_100k(self, campaign, cache_config):
        path, cache_root, records = campaign
        assert len(records) >= 100_000

        def cold():
            return _cold(path, cache_config)

        def warm():
            return _warm(cache_root, cache_config)

        # Both paths produce the same composite scores (the parity the
        # CLI tests pin byte-for-byte) before we time anything.
        assert warm() == pytest.approx(cold(), abs=1e-12)

        # Same-process warmup, then interleaved rounds; min-of-rounds
        # CPU time so scheduler noise cannot fail the build (the same
        # harness the kernel and streaming speedup gates use).
        cold_times, warm_times = [], []
        for _ in range(self.ROUNDS):
            cold_times.append(self._cpu_time(cold))
            warm_times.append(self._cpu_time(warm))
        cold_best = min(cold_times)
        warm_best = min(warm_times)

        assert cold_best >= 5.0 * warm_best, (
            f"cache warm-start not >= 5x faster at {len(records)} "
            f"records: re-ingest {cold_best * 1e3:.1f}ms vs warm "
            f"{warm_best * 1e3:.1f}ms"
        )
