"""Bench ext-wifi — the home-WiFi confounder in crowdsourced data.

Paper artifact: the datasets tier consumes crowdsourced speed tests,
and the measurement community's standing caveat applies — most tests
run over home WiFi, which caps throughput and adds delay *between* the
subscriber's device and the access link being judged. The bench sweeps
the share of WiFi-degraded tests over the same ground-truth population
and reports how far the measured IQB falls below the clean-measurement
score.

Expected shape: the score declines monotonically-ish with WiFi share;
the fiber metro (whose gigabit plans the WiFi cap actually binds on)
loses far more than the DSL region (whose plans are slower than any
WiFi); nothing about the *networks* changed.
"""

from repro.analysis.tables import render_table
from repro.core import score_region
from repro.netsim import CampaignConfig, region_preset, simulate_region

SHARES = (0.0, 0.4, 0.8)
REGIONS = ("metro-fiber", "rural-dsl")


def test_bench_wifi_share_sweep(benchmark, config):
    def sweep():
        out = {}
        for region in REGIONS:
            profile = region_preset(region)
            for share in SHARES:
                campaign = CampaignConfig(
                    subscribers=50, tests_per_client=250, wifi_share=share
                )
                records = simulate_region(profile, seed=53, config=campaign)
                out[(region, share)] = score_region(
                    records.group_by_source(), config
                ).value
        return out

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (
            region,
            scores[(region, 0.0)],
            scores[(region, 0.4)],
            scores[(region, 0.8)],
            scores[(region, 0.8)] - scores[(region, 0.0)],
        )
        for region in REGIONS
    ]
    print("\n[ext-wifi] Measured IQB vs share of WiFi-degraded tests:")
    print(
        render_table(
            ["Region", "0% WiFi", "40% WiFi", "80% WiFi", "Delta@80%"], rows
        )
    )

    for region in REGIONS:
        # More WiFi never raises the measured score.
        assert (
            scores[(region, 0.8)] <= scores[(region, 0.0)] + 0.02
        ), region
    # The confounder bites the gigabit region hardest: WiFi caps bind
    # on fiber plans, not on 25 Mb/s DSL.
    fiber_drop = scores[("metro-fiber", 0.0)] - scores[("metro-fiber", 0.8)]
    dsl_drop = scores[("rural-dsl", 0.0)] - scores[("rural-dsl", 0.8)]
    assert fiber_drop > dsl_drop
    assert fiber_drop > 0.05
