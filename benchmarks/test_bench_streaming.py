"""Streaming-scoring benchmarks: incremental re-score vs batch recompute.

The streaming engine's contract is that once a window's measurements
are folded into the sketch plane, re-scoring after a burst of arrivals
costs O(burst + cells · delta) — independent of how many measurements
the window has buffered. The batch path pays the full O(n) recompute
(re-transpose + re-sort the exact plane) every time.

Three pytest-benchmark entries (tracked by ``compare_bench`` against
``BENCH_baseline.json``) at a ≥100k-record buffered window:

* ``test_bench_batch_rescore`` — the exact plane's cheapest route to
  fresh composite scores: rebuild the :class:`ColumnarStore` and run
  the scores-only kernel. This is deliberately the *fastest* batch
  path (no breakdown trees), so the streaming win below is measured
  against the strongest baseline.
* ``test_bench_incremental_rescore`` — fold a 100-measurement burst
  into the live plane, then re-read every region's scores from the
  digests.
* ``test_bench_sketch_plane_build`` — the one-time cost of sketching
  the whole buffer, amortized away by every later incremental round.

``TestStreamingSpeedup`` is the acceptance gate: incremental re-score
must beat the batch recompute by ≥ 10x on the same buffer.
"""

import dataclasses
import gc
import time

import pytest

from repro.core.config import paper_config
from repro.core.kernel import score_values
from repro.measurements.columnar import ColumnarStore
from repro.measurements.sketchplane import SketchPlane, sketch_records
from repro.netsim import CampaignConfig, region_preset, simulate_region

#: 16 regions × (3 clients × 2100 tests) = 100,800 buffered records —
#: past the 100k mark the ROADMAP's live-scoring item is gated on.
_REGIONS = 16
_CAMPAIGN = CampaignConfig(subscribers=3, tests_per_client=2100)
_SEED = 42
#: Arrivals folded per incremental round (one monitor tick's worth).
_BURST = 100


def _buffer():
    """The buffered window: one simulated region cloned across 16."""
    base = list(
        simulate_region(
            region_preset("mixed-urban"), seed=_SEED, config=_CAMPAIGN
        )
    )
    records = []
    for i in range(_REGIONS):
        records.extend(
            dataclasses.replace(record, region=f"region-{i:02d}")
            for record in base
        )
    return records


@pytest.fixture(scope="module")
def streaming_config():
    return paper_config()


@pytest.fixture(scope="module")
def buffered(streaming_config):
    """(records, live plane, prebuilt burst) shared across benches.

    The burst is prebuilt so the timed incremental path measures fold +
    re-score, not record construction. The plane keeps absorbing bursts
    across rounds — that is the engine's normal operating mode, and
    digest compaction keeps per-round cost flat regardless.
    """
    records = _buffer()
    plane = sketch_records(records)
    burst = [
        dataclasses.replace(record, region="region-00")
        for record in records[:_BURST]
    ]
    return records, plane, burst


#: CPU time, not wall time — same rationale as the kernel benches.
_STEADY = pytest.mark.benchmark(
    timer=time.process_time, min_rounds=7, warmup=True
)


@_STEADY
def test_bench_batch_rescore(benchmark, buffered, streaming_config):
    records, _, _ = buffered
    result = benchmark(
        lambda: score_values(ColumnarStore(list(records)), streaming_config)
    )
    assert len(result) == _REGIONS


@_STEADY
def test_bench_incremental_rescore(benchmark, buffered, streaming_config):
    _, plane, burst = buffered

    def tick():
        plane.extend(burst)
        return score_values(plane, streaming_config)

    result = benchmark(tick)
    assert len(result) == _REGIONS
    assert all(0.0 <= value <= 1.0 for value in result.values())


@_STEADY
def test_bench_sketch_plane_build(benchmark, buffered):
    records, _, _ = buffered
    plane = benchmark(lambda: sketch_records(records))
    assert isinstance(plane, SketchPlane)
    assert len(plane) == len(records)


class TestStreamingSpeedup:
    """The acceptance bar: ≥ 10x at a ≥100k-record buffered window."""

    ROUNDS = 9

    @staticmethod
    def _cpu_time(fn):
        gc.collect()
        start = time.process_time()
        fn()
        return time.process_time() - start

    def test_incremental_rescore_speedup_100k(self, streaming_config):
        records = _buffer()
        assert len(records) >= 100_000
        plane = sketch_records(records)
        burst = [
            dataclasses.replace(record, region="region-00")
            for record in records[:_BURST]
        ]

        def batch():
            return score_values(
                ColumnarStore(list(records)), streaming_config
            )

        def incremental():
            plane.extend(burst)
            return score_values(plane, streaming_config)

        # Same-process warmup, then interleaved rounds; min-of-rounds
        # CPU time so scheduler noise cannot fail the build (the same
        # harness the kernel speedup gate uses).
        batch()
        incremental()
        batch_times, incremental_times = [], []
        for _ in range(self.ROUNDS):
            batch_times.append(self._cpu_time(batch))
            incremental_times.append(self._cpu_time(incremental))
        batch_best = min(batch_times)
        incremental_best = min(incremental_times)

        assert batch_best >= 10.0 * incremental_best, (
            f"incremental re-score not >= 10x faster at "
            f"{len(records)} buffered measurements: batch "
            f"{batch_best * 1e3:.1f}ms vs incremental "
            f"{incremental_best * 1e3:.1f}ms"
        )
