"""Bench ext-boot — score uncertainty vs measurement volume.

Paper artifact: the datasets tier (§2) presumes enough measurements per
region for a stable 95th percentile; the poster does not say how many
is enough. This bench answers the deployment question: bootstrap the
IQB score at growing per-dataset sample sizes and report the 95 %
confidence-interval width.

Expected shape: the CI is bounded and useful at realistic volumes, and
the fiber-vs-satellite score gap survives uncertainty. Width is *not*
guaranteed monotone in sample size: because the binary requirement
scores threshold a tail percentile, a region whose p95 sits near a
threshold keeps flipping verdicts across bootstrap replicates — small
subsamples can land confidently (and possibly wrongly) on one side
while larger samples straddle the boundary. The bench reports this
near-threshold effect when it occurs.
"""

from repro.analysis.tables import render_table
from repro.core.uncertainty import bootstrap_score, sample_size_curve

REGION = "suburban-cable"


def test_bench_ci_width_vs_sample_size(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]
    curve = benchmark.pedantic(
        sample_size_curve,
        kwargs=dict(
            sources=sources,
            config=config,
            sizes=(25, 50, 100, 250),
            replicates=120,
            seed=11,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [
        (size, result.point_estimate, result.std, result.width95)
        for size, result in sorted(curve.items())
    ]
    print(f"\n[ext-boot] Bootstrap CI width vs per-dataset samples ({REGION!r}):")
    print(
        render_table(
            ["Samples/dataset", "Point IQB", "Std err", "95% CI width"], rows
        )
    )

    widths = {size: result.width95 for size, result in curve.items()}
    if widths[250] > widths[25]:
        print(
            "  note: width grew with sample size — the region's p95 sits "
            "near a threshold and larger samples straddle it (see module "
            "docstring)."
        )
    # A realistic campaign pins the score usefully tightly regardless.
    assert widths[250] < 0.25
    assert all(w < 0.3 for w in widths.values())


def test_bench_bootstrap_per_region(benchmark, sources_by_region, config):
    def run_all():
        return {
            region: bootstrap_score(sources, config, replicates=100, seed=13)
            for region, sources in sources_by_region.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for region, result in sorted(results.items()):
        lo, hi = result.interval(0.95)
        rows.append((region, result.point_estimate, lo, hi))
    print("\n[ext-boot] 95% bootstrap intervals per region:")
    print(render_table(["Region", "IQB", "CI low", "CI high"], rows))

    for result in results.values():
        lo, hi = result.interval(0.95)
        assert 0.0 <= lo <= hi <= 1.0
    # The fiber-vs-satellite gap survives measurement uncertainty.
    fiber_lo, _ = results["metro-fiber"].interval(0.95)
    _, satellite_hi = results["satellite-remote"].interval(0.95)
    assert fiber_lo > satellite_hi
