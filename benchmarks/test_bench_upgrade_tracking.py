"""Bench ext-trend — a barometer must see upgrades early.

Paper artifact: §4 positions IQB as a tool for decision-makers tracking
Internet quality. The decisive longitudinal property: when a region
upgrades (DSL → fiber buildout), the barometer should register the
improvement as it happens — and because early fiber adoption fixes
latency/loss before it moves the *typical* household's headline speed,
a multi-metric score should move earlier than a speed-only one.

The bench simulates a 6-period buildout and compares the normalized
trajectories of IQB and the speed-only baseline.
"""

import pytest

from repro.analysis.tables import render_table
from repro.analysis.temporal import score_time_series, trend
from repro.baselines import median_speed_score
from repro.core import paper_config
from repro.netsim import fiber_buildout, simulate_evolution, stage_boundaries

DAYS_PER_PERIOD = 15.0
PERIODS = 6


def test_bench_buildout_trajectories(benchmark, config):
    stages = fiber_buildout(
        region_name="buildout",
        periods=PERIODS,
        days_per_period=DAYS_PER_PERIOD,
    )

    def run():
        records = simulate_evolution(
            stages, seed=29, tests_per_client_per_stage=250, subscribers=80
        )
        iqb_points = score_time_series(
            records,
            "buildout",
            config,
            window_seconds=DAYS_PER_PERIOD * 86400.0,
        )
        speed = [
            median_speed_score(
                records.between(start, end).group_by_source()
            )
            for start, end in stage_boundaries(stages)
        ]
        return records, iqb_points, speed

    records, iqb_points, speed = benchmark.pedantic(run, rounds=1, iterations=1)
    iqb = [point.score for point in iqb_points[:PERIODS]]

    rows = [
        (
            f"period {i + 1}",
            f"{(i / (PERIODS - 1)):.0%}",
            iqb[i],
            speed[i],
        )
        for i in range(PERIODS)
    ]
    print("\n[ext-trend] DSL-to-fiber buildout trajectories:")
    print(render_table(["Period", "Fiber share", "IQB", "Speed-only"], rows))

    slope, _ = trend(iqb_points)
    print(f"IQB trend: {slope:+.5f} per day")

    # Both metrics end far above where they started.
    assert iqb[-1] > iqb[0] + 0.3
    assert speed[-1] > speed[0] + 0.3
    assert slope > 0
    # Early-warning shape: by the first partial-fiber period, IQB has
    # realized more of its eventual gain than speed-only has.
    iqb_progress = (iqb[1] - iqb[0]) / (iqb[-1] - iqb[0])
    speed_progress = (speed[1] - speed[0]) / (speed[-1] - speed[0])
    print(
        f"Gain realized by period 2: IQB {iqb_progress:.0%}, "
        f"speed-only {speed_progress:.0%}"
    )
    assert iqb_progress > speed_progress
    # Saturation shape: by completion speed-only is pinned at its
    # ceiling while IQB still reports headroom (the loss/latency tiers
    # it checks are harder to max out than a 100 Mb/s reference speed).
    assert speed[-1] == pytest.approx(1.0, abs=0.05)
    assert iqb[-1] < speed[-1] - 0.05
