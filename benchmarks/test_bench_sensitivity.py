"""Bench ext-sens — sensitivity of S_IQB to the paper's design choices.

Paper artifact: §4, "IQB is designed to be easily adapted (e.g., based
on the intended application, or through iterative refinements...)".
This bench quantifies how much each adaptable choice actually moves the
score on a mid-quality region:

* the aggregation percentile (50 → 99),
* LITERAL vs CONSERVATIVE percentile semantics (DESIGN.md ablation),
* the resolution policy for Fig. 2's "50-100 Mb/s" range cell,
* one-at-a-time ±1 requirement-weight perturbations (tornado top),
* Monte-Carlo joint weight jitter (expert-disagreement envelope).
"""

from repro.analysis.tables import render_table
from repro.core.sensitivity import (
    monte_carlo_weights,
    percentile_sweep,
    range_policy_comparison,
    requirement_weight_sensitivity,
    semantics_comparison,
)

REGION = "mixed-urban"


def test_bench_percentile_sweep(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]
    sweep = benchmark(
        percentile_sweep, sources, config, (50.0, 75.0, 90.0, 95.0, 99.0)
    )
    print(f"\n[ext-sens] S_IQB vs aggregation percentile ({REGION!r}):")
    print(
        render_table(
            ["Percentile", "S_IQB"],
            [(f"p{int(p)}", s) for p, s in sorted(sweep.items())],
        )
    )
    assert all(0.0 <= v <= 1.0 for v in sweep.values())
    # The choice matters: the sweep is not flat on a mid-quality region.
    assert max(sweep.values()) - min(sweep.values()) > 0.02


def test_bench_semantics_and_range_ablations(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]

    def ablate():
        return (
            semantics_comparison(sources, config),
            range_policy_comparison(sources, config),
        )

    semantics, range_policy = benchmark(ablate)
    print("\n[ext-sens] Percentile-semantics ablation:")
    print(render_table(["Semantics", "S_IQB"], sorted(semantics.items())))
    print("[ext-sens] Fig. 2 '50-100 Mb/s' range-policy ablation:")
    print(render_table(["Policy", "S_IQB"], sorted(range_policy.items())))

    # Conservative (worst-tail) semantics can only remove passes.
    assert semantics["conservative"] <= semantics["literal"] + 1e-12
    # Stricter range resolutions can only lower the score.
    assert range_policy["high"] <= range_policy["low"] + 1e-12


def test_bench_weight_tornado(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]
    impacts = benchmark(requirement_weight_sensitivity, sources, config)
    top = impacts[:8]
    print(f"\n[ext-sens] Top weight sensitivities (±1 OAT, {REGION!r}):")
    print(
        render_table(
            ["Use case", "Requirement", "w", "S(w-1)", "S(w+1)", "Swing"],
            [
                (
                    i.use_case.value,
                    i.metric.value,
                    i.base_weight,
                    i.score_minus,
                    i.score_plus,
                    i.swing,
                )
                for i in top
            ],
        )
    )
    assert len(impacts) == 24
    # Individual ±1 weight tweaks move the composite only modestly —
    # the three-tier normalization damps single-cell changes.
    assert impacts[0].swing < 0.15


def test_bench_monte_carlo_weight_jitter(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]
    result = benchmark.pedantic(
        monte_carlo_weights,
        kwargs=dict(sources=sources, config=config, samples=150, seed=7),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[ext-sens] Monte-Carlo ±1 joint weight jitter ({REGION!r}): "
        f"mean={result.mean:.3f} std={result.std:.3f} "
        f"p05={result.p05:.3f} p95={result.p95:.3f}"
    )
    from repro.core.scoring import score_region

    base = score_region(sources, config).value
    # The published weights sit inside the jittered envelope, and the
    # envelope is tight: the score is robust to expert disagreement.
    assert result.p05 - 0.05 <= base <= result.p95 + 0.05
    assert result.spread < 0.2
