"""Bench corrob — the paper's multi-dataset corroboration claim.

Paper artifact: §2, "The benefit of using multiple datasets is to
corroborate the insights of each other... if they all signal that a
connection meets the throughput requirements for gaming, then it is
more likely that that connection does meet the requirements."

The bench measures, across all region presets:

* how often the three datasets *disagree* on a requirement verdict
  (the situations where a single-dataset barometer silently picks a
  side), and
* the spread of single-dataset IQB scores vs the corroborated score —
  i.e. how much a decision-maker's number would depend on which
  dataset they happened to trust.
"""

from repro.analysis.tables import render_table
from repro.baselines import all_single_dataset_scores
from repro.core import score_region


def _disagreement_stats(breakdown):
    total = 0
    split = 0
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            if req.value is None or len(req.verdicts) < 2:
                continue
            total += 1
            if not req.unanimous:
                split += 1
    return split, total


def test_bench_dataset_disagreement_rates(benchmark, sources_by_region, config):
    def analyze():
        out = {}
        for region, sources in sources_by_region.items():
            breakdown = score_region(sources, config)
            split, total = _disagreement_stats(breakdown)
            out[region] = (split, total, breakdown.value)
        return out

    stats = benchmark(analyze)

    rows = [
        (region, f"{split}/{total}", f"{split / total:.0%}", score)
        for region, (split, total, score) in sorted(stats.items())
    ]
    print("\n[corrob] Requirements on which datasets disagree:")
    print(render_table(["Region", "Split verdicts", "Rate", "IQB"], rows))

    # Disagreements exist somewhere (methodologies really differ)...
    assert any(split > 0 for split, _, _ in stats.values())
    # ...but most verdicts are corroborated (the datasets measure the
    # same underlying links).
    total_split = sum(s for s, _, _ in stats.values())
    total_all = sum(t for _, t, _ in stats.values())
    assert total_split / total_all < 0.5


def test_bench_single_dataset_spread(benchmark, sources_by_region, config):
    def analyze():
        out = {}
        for region, sources in sources_by_region.items():
            singles = {
                name: b.value
                for name, b in all_single_dataset_scores(sources, config).items()
            }
            combined = score_region(sources, config).value
            out[region] = (singles, combined)
        return out

    results = benchmark(analyze)

    rows = []
    for region, (singles, combined) in sorted(results.items()):
        rows.append(
            (
                region,
                singles["ndt"],
                singles["cloudflare"],
                singles["ookla"],
                combined,
                max(singles.values()) - min(singles.values()),
            )
        )
    print("\n[corrob] Single-dataset IQB vs corroborated IQB:")
    print(
        render_table(
            ["Region", "NDT only", "CF only", "Ookla only", "Corroborated",
             "Spread"],
            rows,
        )
    )

    for region, (singles, combined) in results.items():
        values = list(singles.values())
        # The corroborated score is a within-envelope compromise.
        assert min(values) - 1e-9 <= combined <= max(values) + 1e-9
    # Somewhere the choice of dataset moves the score materially —
    # single-dataset barometers are fragile.
    assert any(
        max(singles.values()) - min(singles.values()) > 0.05
        for singles, _ in results.values()
    )
    # Ookla-only (peak methodology, no loss tier) is never below
    # NDT-only (single-stream, loss-biased) on these presets.
    for singles, _ in results.values():
        assert singles["ookla"] >= singles["ndt"] - 1e-9
