"""Serving-layer benchmarks: the cache, the coalescer, and the wire.

``iqb serve``'s perf contract is that the steady state costs a dict
lookup, not a kernel sweep: results are cached under
(query shape, config digest, plane generation) and only an ingest —
which bumps the generation — forces a recompute. Three
pytest-benchmark entries (tracked by ``compare_bench`` against
``BENCH_baseline.json``) at a 256-region plane:

* ``test_bench_serve_cold_sweep`` — the invalidated path: one ingested
  record retires the cache, so the read pays a full scores-only
  kernel sweep.
* ``test_bench_serve_warm_read`` — the steady state: the same query
  against an unchanged plane (cache hit, no plane lock).
* ``test_bench_serve_closed_loop`` — a closed-loop HTTP load
  generator: 4 client threads × 24 GETs against a live
  :class:`ServeServer` while an ingester bumps the generation
  mid-run, so the round mixes warm hits, conditional 304s, and
  invalidated sweeps over real sockets.

``TestServeGates`` holds the acceptance bars:

* warm-cache read ≥ 20x the cold recompute at 256 regions;
* single-flight collapses 8 concurrent identical misses into one
  kernel sweep;
* every closed-loop response parses, carries all 256 regions, and the
  p99 request latency stays within budget.
"""

import dataclasses
import gc
import json
import threading
import time
import urllib.request

import pytest

from repro.core.config import paper_config
from repro.measurements.columnar import ColumnarStore
from repro.netsim import CampaignConfig, region_preset, simulate_region
from repro.obs.registry import REGISTRY
from repro.serve import ScoringService, ServeServer

_REGIONS = 256
_CAMPAIGN = CampaignConfig(subscribers=3, tests_per_client=3)
_SEED = 42

#: Closed-loop load shape: every client waits for its response before
#: sending the next request (closed loop), so offered load adapts to
#: service speed instead of queueing unboundedly.
_CLIENTS = 4
_REQUESTS_PER_CLIENT = 24


def _plane():
    """A 256-region national plane (one region cloned across 256)."""
    base = list(
        simulate_region(
            region_preset("mixed-urban"), seed=_SEED, config=_CAMPAIGN
        )
    )
    records = []
    for i in range(_REGIONS):
        records.extend(
            dataclasses.replace(record, region=f"region-{i:03d}")
            for record in base
        )
    return records


@pytest.fixture(scope="module")
def serve_config():
    return paper_config()


@pytest.fixture(scope="module")
def plane_records():
    return _plane()


def _invalidator(records):
    """An endless stream of one-record ingest batches (new regions)."""
    index = 0
    while True:
        yield [
            dataclasses.replace(
                records[0], region=f"ingested-{index:05d}"
            )
        ]
        index += 1


#: CPU time, not wall time — same rationale as the kernel benches.
_STEADY = pytest.mark.benchmark(
    timer=time.process_time, min_rounds=7, warmup=True
)


@_STEADY
def test_bench_serve_cold_sweep(benchmark, plane_records, serve_config):
    service = ScoringService(
        ColumnarStore(list(plane_records)), serve_config
    )
    batches = _invalidator(plane_records)

    def invalidated_read():
        service.ingest(next(batches))
        return service.scores()

    result = benchmark(invalidated_read)
    assert len(result.values) >= _REGIONS


@_STEADY
def test_bench_serve_warm_read(benchmark, plane_records, serve_config):
    service = ScoringService(
        ColumnarStore(list(plane_records)), serve_config
    )
    service.scores()  # prime the cache once

    result = benchmark(service.scores)
    assert len(result.values) == _REGIONS
    assert result.generation == 0


@_STEADY
def test_bench_serve_closed_loop(
    benchmark, plane_records, serve_config
):
    service = ScoringService(
        ColumnarStore(list(plane_records)), serve_config
    )
    server = ServeServer(service, port=0)
    server.start()
    batches = _invalidator(plane_records)
    try:
        base = f"http://{server.address}"

        def client():
            for _ in range(_REQUESTS_PER_CLIENT):
                with urllib.request.urlopen(
                    f"{base}/v1/scores", timeout=30.0
                ) as response:
                    assert response.status == 200
                    response.read()

        def round_trip():
            threads = [
                threading.Thread(target=client)
                for _ in range(_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            # Two mid-round ingests: the round pays real invalidated
            # sweeps, not 96 cache hits.
            for _ in range(2):
                time.sleep(0.005)
                service.ingest(next(batches))
            for thread in threads:
                thread.join()

        benchmark(round_trip)
    finally:
        server.stop()


class TestServeGates:
    """The serving acceptance bars (run by compare_bench's cohort)."""

    ROUNDS = 9
    WARM_CALLS = 200  # amortize timer resolution over many hits
    P99_BUDGET_S = 0.25  # the serve SLO rules' default latency budget

    @staticmethod
    def _cpu_time(fn):
        gc.collect()
        start = time.process_time()
        fn()
        return time.process_time() - start

    def test_warm_read_speedup_over_cold_sweep(
        self, plane_records, serve_config
    ):
        service = ScoringService(
            ColumnarStore(list(plane_records)), serve_config
        )
        batches = _invalidator(plane_records)

        def cold():
            service.ingest(next(batches))
            service.scores()

        def warm():
            for _ in range(self.WARM_CALLS):
                service.scores()

        # Same-process warmup, then interleaved rounds; min-of-rounds
        # CPU time so scheduler noise cannot fail the build (the same
        # harness the kernel and streaming gates use).
        cold()
        warm()
        cold_times, warm_times = [], []
        for _ in range(self.ROUNDS):
            cold_times.append(self._cpu_time(cold))
            warm_times.append(self._cpu_time(warm) / self.WARM_CALLS)
        cold_best = min(cold_times)
        warm_best = min(warm_times)

        assert cold_best >= 20.0 * warm_best, (
            f"warm cached read not >= 20x faster than the invalidated "
            f"sweep at {_REGIONS} regions: cold {cold_best * 1e3:.2f}ms "
            f"vs warm {warm_best * 1e6:.1f}us"
        )

    def test_single_flight_collapses_concurrent_misses(
        self, plane_records, serve_config
    ):
        service = ScoringService(
            ColumnarStore(list(plane_records)),
            serve_config,
            batch_window_s=0.05,
        )
        sweeps = REGISTRY.counter("serve.compute.sweeps")
        before = sweeps.value
        barrier = threading.Barrier(8)
        results = []

        def read():
            barrier.wait(timeout=10.0)
            results.append(service.scores())

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(results) == 8
        assert sweeps.value == before + 1, (
            f"8 concurrent identical misses ran "
            f"{sweeps.value - before} kernel sweeps; single-flight "
            f"should collapse them into 1"
        )
        assert all(r is results[0] for r in results)

    def test_closed_loop_responses_parse_within_budget(
        self, plane_records, serve_config
    ):
        service = ScoringService(
            ColumnarStore(list(plane_records)), serve_config
        )
        server = ServeServer(service, port=0)
        server.start()
        batches = _invalidator(plane_records)
        latencies = []
        latency_lock = threading.Lock()
        documents = []
        try:
            base = f"http://{server.address}"
            service.scores()  # one warm sweep before load arrives

            def client():
                for _ in range(_REQUESTS_PER_CLIENT):
                    start = time.perf_counter()
                    with urllib.request.urlopen(
                        f"{base}/v1/scores", timeout=30.0
                    ) as response:
                        body = response.read().decode("utf-8")
                    elapsed = time.perf_counter() - start
                    document = json.loads(body)
                    with latency_lock:
                        latencies.append(elapsed)
                        documents.append(document)

            threads = [
                threading.Thread(target=client)
                for _ in range(_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for _ in range(2):
                time.sleep(0.01)
                service.ingest(next(batches))
            for thread in threads:
                thread.join(timeout=60.0)
        finally:
            server.stop()

        expected = _CLIENTS * _REQUESTS_PER_CLIENT
        assert len(documents) == expected  # every response parsed
        for document in documents:
            assert len(document["regions"]) >= _REGIONS
        # Stamps must match content: generation g carries g ingested
        # extra regions on top of the base 256.
        for document in documents:
            assert (
                len(document["regions"])
                == _REGIONS + document["generation"]
            )
        ordered = sorted(latencies)
        p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
        assert p99 <= self.P99_BUDGET_S, (
            f"closed-loop p99 latency {p99 * 1e3:.1f}ms exceeds the "
            f"{self.P99_BUDGET_S * 1e3:.0f}ms serve budget"
        )
