"""Bench fig1 — regenerate the paper's Fig. 1 framework tiers.

Paper artifact: Fig. 1, "The IQB framework consisting of three tiers:
use cases, network requirements, and datasets."

This bench rebuilds the tier structure from the canonical configuration
and prints it in the same use-cases → requirements → datasets shape.
Assertions pin the tier content: six use cases, four requirements each,
and the three corroborating datasets (with Ookla absent from the packet
-loss tier, since its open data publishes no loss).
"""

from repro.core import IQBFramework, Metric, UseCase


def test_bench_fig1_tier_map(benchmark, config):
    framework = IQBFramework(config)
    structure = benchmark(framework.tier_map)

    print("\n[fig1] IQB framework tiers (paper Fig. 1):")
    print(framework.render_tier_map())

    assert set(structure) == {u.value for u in UseCase}
    for use_case, requirements in structure.items():
        assert set(requirements) == {m.value for m in Metric}
        for metric, datasets in requirements.items():
            if metric == Metric.PACKET_LOSS.value:
                assert sorted(datasets) == ["cloudflare", "ndt"]
            else:
                assert sorted(datasets) == ["cloudflare", "ndt", "ookla"]


def test_bench_fig1_render(benchmark, config):
    framework = IQBFramework(config)
    text = benchmark(framework.render_tier_map)
    # 1 header + 6 use cases + 24 requirement lines.
    assert len(text.splitlines()) == 31
