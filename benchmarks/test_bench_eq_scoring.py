"""Bench eq15 — the IQB score formulas (paper Eqs. 1-5) end to end.

Paper artifact: §3, the tier-by-tier score definition. The bench scores
a realistic simulated region through the full Eq. 1 → Eq. 2 → Eq. 4
pipeline, prints every intermediate (the S_{u,r,d} verdicts, the
S_{u,r} agreement scores, the S_u use-case scores, and S_IQB), and
verifies the paper's algebra: the expanded Eq. 5 single-sum form equals
the nested computation exactly.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import score_region
from repro.core.scoring import flat_score

REGION = "suburban-cable"


def test_bench_eq_scoring_pipeline(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]
    breakdown = benchmark(score_region, sources, config)

    print(f"\n[eq15] Tier-by-tier IQB score for {REGION!r}:")
    rows = []
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            verdicts = " ".join(
                f"{v.dataset}={v.score}" for v in req.verdicts
            )
            rows.append(
                (
                    entry.use_case.value,
                    req.metric.value,
                    "skip" if req.value is None else f"{req.value:.2f}",
                    verdicts or "(none)",
                )
            )
    print(render_table(["Use case", "Requirement", "S_u,r (Eq.1)", "S_u,r,d"], rows))
    print(
        render_table(
            ["Use case", "S_u (Eq.2)", "w_u"],
            [
                (e.use_case.value, e.value, e.weight)
                for e in breakdown.use_cases
            ],
        )
    )
    print(f"S_IQB (Eq.4) = {breakdown.value:.4f}  grade={breakdown.grade}")

    assert 0.0 <= breakdown.value <= 1.0
    assert len(breakdown.use_cases) == 6


def test_bench_eq5_expansion_identity(benchmark, sources_by_region, config):
    """Eq. 5 (fully expanded) must equal Eqs. 1-4 composed — exactly."""
    breakdowns = {
        region: score_region(sources, config)
        for region, sources in sources_by_region.items()
    }

    def expand_all():
        return {region: flat_score(b) for region, b in breakdowns.items()}

    expanded = benchmark(expand_all)

    print("\n[eq15] Eq. 5 expansion vs nested Eqs. 1-4:")
    print(
        render_table(
            ["Region", "Nested (Eq.1-4)", "Expanded (Eq.5)", "abs diff"],
            [
                (
                    region,
                    breakdowns[region].value,
                    expanded[region],
                    abs(breakdowns[region].value - expanded[region]),
                )
                for region in sorted(breakdowns)
            ],
        )
    )
    for region, breakdown in breakdowns.items():
        assert expanded[region] == pytest.approx(breakdown.value, abs=1e-12)
