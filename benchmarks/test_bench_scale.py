"""Bench ext-scale — pipeline throughput at deployment scale.

Paper artifact: none directly; the framework is pitched as a continuously
updated public barometer, so the reproduction documents what the
scoring pipeline costs. Two benches:

* scoring cost for one region as the per-dataset measurement volume
  grows (the percentile aggregation dominates);
* full-pipeline cost (simulate + score) per region, the number that
  bounds how many regions a periodic barometer refresh can cover.
"""

import pytest

from repro.core import score_region, score_regions
from repro.measurements import ColumnarStore, MeasurementSet
from repro.netsim import CampaignConfig, region_preset, simulate_region


@pytest.mark.parametrize("tests_per_client", [100, 400, 1600])
def test_bench_scoring_vs_volume(benchmark, config, tests_per_client):
    campaign = CampaignConfig(subscribers=50, tests_per_client=tests_per_client)
    records = simulate_region(region_preset("mixed-urban"), 3, campaign)
    sources = records.group_by_source()

    breakdown = benchmark(score_region, sources, config)

    assert 0.0 <= breakdown.value <= 1.0
    assert sum(len(s) for s in sources.values()) == 3 * tests_per_client


def test_bench_full_pipeline_per_region(benchmark, config):
    campaign = CampaignConfig(subscribers=60, tests_per_client=250)

    def pipeline():
        records = simulate_region(region_preset("suburban-cable"), 5, campaign)
        return score_region(records.group_by_source(), config).value

    value = benchmark(pipeline)
    assert 0.0 <= value <= 1.0


def test_bench_grouping_cost(benchmark, config):
    campaign = CampaignConfig(subscribers=60, tests_per_client=400)
    combined = MeasurementSet()
    for name in ("metro-fiber", "rural-dsl", "mixed-urban"):
        combined = combined + simulate_region(region_preset(name), 7, campaign)

    def group_and_score():
        return {
            region: score_region(subset.group_by_source(), config).value
            for region, subset in combined.group_by_region().items()
        }

    scores = benchmark(group_and_score)
    assert len(scores) == 3


def test_bench_batch_score_regions(benchmark, config):
    """The columnar batch path over a cold store, including transpose."""
    campaign = CampaignConfig(subscribers=60, tests_per_client=400)
    combined = MeasurementSet()
    for name in ("metro-fiber", "rural-dsl", "mixed-urban"):
        combined = combined + simulate_region(region_preset(name), 7, campaign)
    records = list(combined)

    def batch_score():
        # Rebuild the store every round so the bench includes the
        # one-pass transpose + grouping, not just warm-cache hits.
        return score_regions(ColumnarStore(records), config)

    breakdowns = benchmark(batch_score)

    assert len(breakdowns) == 3
    # The fast path must agree with the reference loop bit-for-bit.
    for region, subset in combined.group_by_region().items():
        assert breakdowns[region] == score_region(
            subset.group_by_source(), config
        )
