"""Bench tab1 — regenerate the paper's Table 1 weight matrix.

Paper artifact: Table 1, "Network requirement weights across use
cases" — integer weights 1..5 per (use case, requirement), elicited
from the expert panel.

The bench rebuilds the matrix, prints it in the paper's layout, and
additionally prints the normalized ``w'`` values (paper §3) that enter
Eq. 2 — the quantities the poster defines but does not tabulate.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Metric, UseCase
from repro.core.weights import paper_requirement_weights

PAPER_ROWS = {
    UseCase.WEB_BROWSING: (3, 2, 4, 4),
    UseCase.VIDEO_STREAMING: (4, 2, 4, 4),
    UseCase.AUDIO_STREAMING: (4, 1, 3, 4),
    UseCase.VIDEO_CONFERENCING: (4, 4, 4, 4),
    UseCase.ONLINE_BACKUP: (4, 4, 2, 4),
    UseCase.GAMING: (4, 4, 5, 4),
}


def test_bench_table1_weight_matrix(benchmark):
    weights = benchmark(paper_requirement_weights)

    rows = [
        (
            use_case.display_name,
            weights.get(use_case, Metric.DOWNLOAD),
            weights.get(use_case, Metric.UPLOAD),
            weights.get(use_case, Metric.LATENCY),
            weights.get(use_case, Metric.PACKET_LOSS),
        )
        for use_case in UseCase.ordered()
    ]
    print("\n[tab1] Requirement weights (paper Table 1):")
    print(
        render_table(
            ["Use Case", "Download", "Upload", "Latency", "Packet loss"],
            rows,
        )
    )

    for use_case, expected in PAPER_ROWS.items():
        assert tuple(weights.row(use_case).values()) == expected


def test_bench_table1_normalized_weights(benchmark):
    weights = paper_requirement_weights()

    def normalize_all():
        return {u: weights.normalized_row(u) for u in UseCase.ordered()}

    normalized = benchmark(normalize_all)

    rows = [
        (
            use_case.display_name,
            normalized[use_case][Metric.DOWNLOAD],
            normalized[use_case][Metric.UPLOAD],
            normalized[use_case][Metric.LATENCY],
            normalized[use_case][Metric.PACKET_LOSS],
        )
        for use_case in UseCase.ordered()
    ]
    print("\n[tab1] Normalized w'_{u,r} entering Eq. 2:")
    print(
        render_table(
            ["Use Case", "w'_dl", "w'_ul", "w'_lat", "w'_loss"], rows
        )
    )

    for row in normalized.values():
        assert sum(row.values()) == pytest.approx(1.0)
    # Audio streaming's download/loss cells (4 of a 12-sum row) carry
    # the largest normalized weight in the whole matrix.
    largest = max(
        value for row in normalized.values() for value in row.values()
    )
    assert largest == pytest.approx(4 / 12)
    # Within gaming, latency (5/17) dominates its row, per the paper's
    # emphasis on latency for gaming.
    assert normalized[UseCase.GAMING][Metric.LATENCY] == pytest.approx(5 / 17)
    assert normalized[UseCase.GAMING][Metric.LATENCY] == max(
        normalized[UseCase.GAMING].values()
    )
