"""Bench ext-outage — the barometer as an incident detector.

Paper artifact: §4 pitches IQB as "actionable insights" for
decision-makers; the most actionable insight a continuously-computed
score can produce is "this region just got worse". The bench injects a
two-day congestion incident into a ten-day campaign and runs the
trailing-median drop detector over the daily IQB series.

Expected shape: the incident days are flagged, the recovery days are
not, and the quiet prefix produces no false alarms. The speed-only
baseline is run through the same detector for contrast — congestion
incidents hit latency/loss tails first, which headline speed can miss.
"""

from repro.analysis.tables import render_table
from repro.analysis.temporal import detect_drops, score_time_series
from repro.baselines import median_speed_score
from repro.measurements.windows import time_buckets
from repro.netsim import region_preset
from repro.netsim.evolution import (
    EvolutionStage,
    simulate_evolution,
    with_incident,
)

DAY = 86400.0
QUIET_DAYS = 4.0
INCIDENT_DAYS = 2.0
RECOVERY_DAYS = 4.0


def test_bench_incident_detection(benchmark, config):
    profile = region_preset("suburban-cable")
    stages = [
        EvolutionStage(profile, days=QUIET_DAYS),
        EvolutionStage(with_incident(profile, severity=1.2), days=INCIDENT_DAYS),
        EvolutionStage(profile, days=RECOVERY_DAYS),
    ]

    def run():
        records = simulate_evolution(
            stages, seed=37, tests_per_client_per_stage=220, subscribers=60
        )
        points = score_time_series(
            records, profile.name, config, window_seconds=DAY
        )
        anomalies = detect_drops(points, min_drop=0.08, trailing=3)
        speed_series = [
            (
                bucket.start,
                median_speed_score(bucket.records.group_by_source())
                if len(bucket.records) >= 20
                else None,
            )
            for bucket in time_buckets(records.for_region(profile.name), DAY)
        ]
        return points, anomalies, speed_series

    points, anomalies, speed_series = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    speed_by_start = dict(speed_series)
    rows = []
    flagged = {anomaly.start for anomaly in anomalies}
    for point in points:
        day = int(point.start / DAY)
        phase = (
            "incident"
            if QUIET_DAYS <= day < QUIET_DAYS + INCIDENT_DAYS
            else "normal"
        )
        speed = speed_by_start.get(point.start)
        rows.append(
            (
                f"day {day}",
                phase,
                "n/a" if point.score is None else f"{point.score:.3f}",
                "n/a" if speed is None else f"{speed:.3f}",
                "ALARM" if point.start in flagged else "",
            )
        )
    print("\n[ext-outage] Daily IQB through a 2-day congestion incident:")
    print(render_table(["Day", "Phase", "IQB", "Speed-only", "Detector"], rows))

    assert anomalies, "the incident must raise at least one alarm"
    for anomaly in anomalies:
        # Alarms only during (or on the blended boundary window of)
        # the incident.
        assert (QUIET_DAYS - 1) * DAY <= anomaly.start < (
            QUIET_DAYS + INCIDENT_DAYS
        ) * DAY
    # No alarms during the quiet prefix or after recovery.
    quiet_alarms = [a for a in anomalies if a.start < (QUIET_DAYS - 1) * DAY]
    recovery_alarms = [
        a for a in anomalies if a.start >= (QUIET_DAYS + INCIDENT_DAYS) * DAY
    ]
    assert not quiet_alarms
    assert not recovery_alarms
