"""Bench ext-parallel — sharded scoring and ingest vs the serial path.

Paper artifact: none directly; a deployed barometer refreshing many
regions wants wall-clock, and the IQB score is embarrassingly parallel
across regions (Eqs. 1-5 never mix regions). These benches measure the
``--workers`` fan-out at the largest scale-bench volume:

* serial vs sharded ``score_regions`` over a cold columnar store;
* serial vs sharded JSONL ingest of the same batch;
* a speedup assertion (parallel >= 2x at 4 workers) that only runs
  when the machine actually has >= 4 CPUs — on fewer cores a fork pool
  cannot beat the serial path and the assertion would measure the
  hardware, not the code. The parity assertions always run.
"""

import os
import time

import pytest

from repro.core import score_regions
from repro.measurements import ColumnarStore, MeasurementSet
from repro.measurements.io import write_jsonl
from repro.netsim import CampaignConfig, region_preset, simulate_region
from repro.netsim.population import REGION_PRESETS
from repro.parallel import fork_available, read_jsonl_parallel

#: Matches the largest volume in test_bench_scale.py's volume sweep.
TESTS_PER_CLIENT = 1600
WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def large_batch():
    """All six presets at the largest scale-bench volume."""
    campaign = CampaignConfig(
        subscribers=50, tests_per_client=TESTS_PER_CLIENT
    )
    combined = MeasurementSet()
    for name in sorted(REGION_PRESETS):
        combined = combined + simulate_region(
            region_preset(name), seed=42, config=campaign
        )
    return list(combined)


@pytest.fixture(scope="module")
def large_jsonl(large_batch, tmp_path_factory):
    path = tmp_path_factory.mktemp("bench_parallel") / "large.jsonl"
    write_jsonl(MeasurementSet(large_batch), path)
    return path


def test_bench_score_regions_serial(benchmark, config, large_batch):
    """Baseline: the columnar batch path, one process."""

    def serial():
        return score_regions(ColumnarStore(large_batch), config)

    breakdowns = benchmark(serial)
    assert len(breakdowns) == len(REGION_PRESETS)


def test_bench_score_regions_parallel(benchmark, config, large_batch):
    """The sharded path at 4 workers, including fork + merge overhead."""

    def parallel():
        return score_regions(
            ColumnarStore(large_batch), config, workers=WORKERS
        )

    breakdowns = benchmark(parallel)
    assert len(breakdowns) == len(REGION_PRESETS)
    # The fan-out must agree with the serial path bit-for-bit.
    assert breakdowns == score_regions(ColumnarStore(large_batch), config)


def test_bench_ingest_parallel(benchmark, large_jsonl, large_batch):
    """Sharded JSONL ingest of the full batch at 4 workers."""

    def parallel_read():
        return read_jsonl_parallel(large_jsonl, WORKERS)

    loaded = benchmark(parallel_read)
    assert len(loaded) == len(large_batch)


@pytest.mark.skipif(
    not fork_available(), reason="platform has no fork start method"
)
@pytest.mark.skipif(
    _usable_cpus() < WORKERS,
    reason=f"speedup needs >= {WORKERS} CPUs (have {_usable_cpus()}); "
    "parity is asserted regardless in test_bench_score_regions_parallel",
)
def test_parallel_speedup_at_four_workers(config, large_batch):
    """Median >= 2x speedup at 4 workers on a machine that has them."""

    def median_of(fn, reps=3):
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return sorted(times)[len(times) // 2]

    serial = median_of(
        lambda: score_regions(ColumnarStore(large_batch), config)
    )
    parallel = median_of(
        lambda: score_regions(
            ColumnarStore(large_batch), config, workers=WORKERS
        )
    )
    speedup = serial / parallel
    assert speedup >= 2.0, (
        f"expected >= 2x speedup at {WORKERS} workers on "
        f"{_usable_cpus()} CPUs; got {speedup:.2f}x "
        f"(serial {serial:.3f}s, parallel {parallel:.3f}s)"
    )
