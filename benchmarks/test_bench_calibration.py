"""Bench ext-calib — cross-dataset calibration of methodology bias.

Paper artifact: §2's corroboration argument ("NDT, Ookla and Cloudflare
each measure throughput in a fundamentally different way"). Corroborated
binary verdicts paper over a structured problem: the methodologies'
throughput biases are *systematic*, so two datasets can disagree about
a region forever. This bench estimates each dataset's multiplicative
bias against the cross-dataset consensus (median-of-ratios over all six
region presets), reports the recovered factors, and measures how much
calibration shrinks the single-dataset IQB spread.

Expected shape: recovered factors show NDT far below consensus and
Ookla above (the designed-in methodology biases); after calibration the
single-dataset scores converge on every region.
"""

from repro.analysis.tables import render_table
from repro.baselines import all_single_dataset_scores
from repro.core.metrics import Metric
from repro.measurements.calibration import estimate_biases


def _spread(scores):
    values = [b.value for b in scores.values()]
    return max(values) - min(values)


def test_bench_bias_factors(benchmark, campaigns):
    combined = None
    for records in campaigns.values():
        combined = records if combined is None else combined + records

    model = benchmark(estimate_biases, combined)

    rows = [
        (dataset, metric.value, model.factor(dataset, metric))
        for dataset in ("ndt", "cloudflare", "ookla")
        for metric in (Metric.DOWNLOAD, Metric.UPLOAD)
    ]
    print("\n[ext-calib] Estimated methodology bias vs consensus:")
    print(render_table(["Dataset", "Metric", "Factor"], rows))

    # The methodology ordering is recovered: single-stream NDT below
    # consensus, many-stream-peak Ookla above, Cloudflare near it.
    assert model.factor("ndt", Metric.DOWNLOAD) < 0.7
    assert model.factor("ookla", Metric.DOWNLOAD) > 1.2
    assert 0.7 < model.factor("cloudflare", Metric.DOWNLOAD) < 1.5


def test_bench_calibration_shrinks_disagreement(
    benchmark, campaigns, sources_by_region, config
):
    combined = None
    for records in campaigns.values():
        combined = records if combined is None else combined + records
    model = estimate_biases(combined)

    def compare():
        out = {}
        for region, sources in sources_by_region.items():
            raw = _spread(all_single_dataset_scores(sources, config))
            calibrated = _spread(
                all_single_dataset_scores(model.calibrate(sources), config)
            )
            out[region] = (raw, calibrated)
        return out

    spreads = benchmark.pedantic(compare, rounds=1, iterations=1)

    rows = [
        (region, raw, calibrated, calibrated - raw)
        for region, (raw, calibrated) in sorted(spreads.items())
    ]
    print("\n[ext-calib] Single-dataset IQB spread, raw vs calibrated:")
    print(
        render_table(
            ["Region", "Raw spread", "Calibrated spread", "Delta"], rows
        )
    )

    # Calibration shrinks (or holds) the spread on the regions where
    # throughput verdicts were the disagreement driver, and never makes
    # it dramatically worse anywhere.
    improved = sum(
        1 for raw, calibrated in spreads.values() if calibrated < raw - 1e-9
    )
    assert improved >= 3
    for region, (raw, calibrated) in spreads.items():
        assert calibrated <= raw + 0.1, region
