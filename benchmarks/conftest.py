"""Shared fixtures for the experiment benches.

Each bench regenerates one paper artifact (figure/table) or one
extension experiment from DESIGN.md's experiment index, printing the
rows it reproduces (run with ``-s`` to see them) and asserting the
qualitative shape the paper claims. Campaigns are simulated once per
session and shared across benches.
"""

import pytest

from repro.core import paper_config
from repro.netsim import CampaignConfig, REGION_PRESETS, region_preset, simulate_region

BENCH_SEED = 42
BENCH_CAMPAIGN = CampaignConfig(subscribers=60, tests_per_client=250)


@pytest.fixture(scope="session")
def config():
    """Canonical paper configuration."""
    return paper_config()


@pytest.fixture(scope="session")
def campaigns():
    """One simulated campaign per canonical region preset."""
    return {
        name: simulate_region(
            region_preset(name), seed=BENCH_SEED, config=BENCH_CAMPAIGN
        )
        for name in sorted(REGION_PRESETS)
    }


@pytest.fixture(scope="session")
def sources_by_region(campaigns):
    """Per-region per-dataset QuantileSources."""
    return {
        name: records.group_by_source() for name, records in campaigns.items()
    }
