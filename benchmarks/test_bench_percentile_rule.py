"""Bench agg95 — the paper's 95th-percentile aggregation rule.

Paper artifact: §2, "IQB uses the 95th percentile of a dataset to
evaluate a metric". The bench applies the rule to one region's three
datasets and prints the aggregate each dataset would compare against
the thresholds, making the methodology differences visible: Ookla's
p95 download far exceeds NDT's on the same simulated links, while its
idle-ping latency undercuts Cloudflare's loaded measurements.
"""

from repro.analysis.tables import render_table
from repro.core import Metric, aggregate_metric

REGION = "suburban-cable"


def test_bench_percentile_aggregates(benchmark, sources_by_region, config):
    sources = sources_by_region[REGION]

    def aggregate_all():
        return {
            (dataset, metric): aggregate_metric(source, metric, config.aggregation)
            for dataset, source in sources.items()
            for metric in Metric
        }

    aggregates = benchmark(aggregate_all)

    rows = []
    for dataset in sorted(sources):
        rows.append(
            (
                dataset,
                f"{aggregates[(dataset, Metric.DOWNLOAD)]:.1f}",
                f"{aggregates[(dataset, Metric.UPLOAD)]:.1f}",
                f"{aggregates[(dataset, Metric.LATENCY)]:.1f}",
                (
                    f"{aggregates[(dataset, Metric.PACKET_LOSS)]:.4f}"
                    if aggregates[(dataset, Metric.PACKET_LOSS)] is not None
                    else "n/a"
                ),
            )
        )
    print(f"\n[agg95] 95th-percentile aggregates for {REGION!r}:")
    print(
        render_table(
            ["Dataset", "p95 DL (Mb/s)", "p95 UL", "p95 RTT (ms)", "p95 loss"],
            rows,
        )
    )

    # Methodology shape: multi-stream peak (Ookla) > multi-connection
    # (Cloudflare) > single-stream (NDT) on the same links.
    ndt = aggregates[("ndt", Metric.DOWNLOAD)]
    cloudflare = aggregates[("cloudflare", Metric.DOWNLOAD)]
    ookla = aggregates[("ookla", Metric.DOWNLOAD)]
    assert ndt < cloudflare < ookla
    # Ookla publishes no loss; the others do.
    assert aggregates[("ookla", Metric.PACKET_LOSS)] is None
    assert aggregates[("ndt", Metric.PACKET_LOSS)] is not None
    # Idle ping (Ookla) sits below loaded latency (Cloudflare).
    assert (
        aggregates[("ookla", Metric.LATENCY)]
        < aggregates[("cloudflare", Metric.LATENCY)]
    )


def test_bench_percentile_vs_median_verdicts(benchmark, sources_by_region, config):
    """The tail statistic is the strict part of the rule: compare the
    requirement pass rate at p95 vs p50 across all regions."""
    from repro.core.aggregation import AggregationPolicy
    from repro.core.scoring import score_region

    def score_both():
        out = {}
        for region, sources in sources_by_region.items():
            p95 = score_region(sources, config).value
            p50 = score_region(
                sources,
                config.with_(aggregation=AggregationPolicy(percentile=50.0)),
            ).value
            out[region] = (p95, p50)
        return out

    scores = benchmark(score_both)
    print("\n[agg95] IQB at p95 (paper rule) vs p50 (median):")
    print(
        render_table(
            ["Region", "IQB@p95", "IQB@p50"],
            [(r, v[0], v[1]) for r, v in sorted(scores.items())],
        )
    )
    # Latency/loss are judged at their bad tail under the paper rule, so
    # the median variant can only look at least as good on those
    # requirements; overall the p50 score should be >= p95 on the
    # congested regions.
    assert scores["rural-dsl"][1] >= scores["rural-dsl"][0]
    assert scores["mobile-first"][1] >= scores["mobile-first"][0]
