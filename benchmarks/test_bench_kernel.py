"""Kernel benchmarks: exact vs vectorized batch scoring at 16/64/256 regions.

Two kinds of comparison live here:

* pytest-benchmark entries (tracked by ``compare_bench`` against
  ``BENCH_baseline.json``) covering both kernels at each batch size,
  plus the scores-only kernel path at 256 regions. Both kernels are
  timed end to end — fresh :class:`ColumnarStore` each round, so
  grouping, the store-wide metric sorts, and aggregation are all
  inside the measurement, exactly like a cold national refresh.
* a speedup assertion (``test_vectorized_kernel_speedup_256``) that
  interleaves CPU-time measurements of both kernels on the 256-region
  batch and enforces the kernel's headline win.

On the speedup contract: the two kernels return bit-identical
``ScoreBreakdown`` trees, and reconstructing those ~25k dataclass
objects is a fixed Python-side cost *shared* by any path that outputs
trees — tree-for-tree the vectorized kernel wins by the tensor math
alone. The barometer-refresh workload the ROADMAP targets ("composite
scores for every region, continuously") does not need the trees, and
the exact path has no cheaper way to produce a composite score than
scoring the full region. That asymmetric capability is the kernel's
real speedup, and it is what the >= 5x assertion measures:
``score_values`` (vectorized, scores only) against the exact path's
only route to the same scores.
"""

import gc
import time

import pytest

from repro.core.config import paper_config
from repro.core.kernel import score_values
from repro.core.scoring import score_regions
from repro.measurements.columnar import ColumnarStore
from repro.netsim import CampaignConfig, region_preset, simulate_region

#: Records per region are kept small so the benches isolate scoring
#: cost (which scales with regions) from sorting cost (which scales
#: with samples and is shared by both kernels anyway).
_CAMPAIGN = CampaignConfig(subscribers=3, tests_per_client=3)
_SEED = 42


def _batch(n_regions):
    """A national batch: one simulated region cloned across n regions."""
    import dataclasses

    base = list(
        simulate_region(
            region_preset("mixed-urban"), seed=_SEED, config=_CAMPAIGN
        )
    )
    records = []
    for i in range(n_regions):
        records.extend(
            dataclasses.replace(record, region=f"region-{i:03d}")
            for record in base
        )
    return records


@pytest.fixture(scope="module")
def kernel_config():
    return paper_config()


@pytest.fixture(scope="module", params=(16, 64, 256))
def batch(request):
    return request.param, _batch(request.param)


def _score(records, config, kernel):
    return score_regions(ColumnarStore(records), config, kernel=kernel)


#: CPU time, not wall time: these benches feed a ratio gate
#: (``compare_bench``) and a speedup assertion, and wall-clock medians
#: on shared CI boxes swing far more than the 20% regression threshold.
_STEADY = pytest.mark.benchmark(
    timer=time.process_time, min_rounds=7, warmup=True
)


@_STEADY
def test_bench_exact_kernel(benchmark, batch, kernel_config):
    n_regions, records = batch
    result = benchmark(_score, records, kernel_config, "exact")
    assert len(result) == n_regions


@_STEADY
def test_bench_vectorized_kernel(benchmark, batch, kernel_config):
    n_regions, records = batch
    result = benchmark(_score, records, kernel_config, "vectorized")
    assert len(result) == n_regions


@_STEADY
def test_bench_vectorized_scores_only(benchmark, kernel_config):
    records = _batch(256)
    result = benchmark(
        lambda: score_values(ColumnarStore(records), kernel_config)
    )
    assert len(result) == 256
    assert all(0.0 <= value <= 1.0 for value in result.values())


class TestKernelSpeedup:
    """The acceptance bar: >= 5x on the 256-region batch."""

    ROUNDS = 9

    @staticmethod
    def _cpu_time(fn):
        gc.collect()
        start = time.process_time()
        fn()
        return time.process_time() - start

    def test_vectorized_kernel_speedup_256(self, kernel_config):
        records = _batch(256)

        def exact():
            return _score(records, kernel_config, "exact")

        def vectorized_trees():
            return _score(records, kernel_config, "vectorized")

        def vectorized_scores():
            return score_values(ColumnarStore(records), kernel_config)

        # Same-process warmup, then interleaved rounds so clock drift
        # hits all three paths alike; min-of-rounds discards scheduler
        # noise. CPU time (not wall) so a noisy neighbour cannot fail
        # the build.
        exact(); vectorized_trees(); vectorized_scores()
        exact_times, tree_times, score_times = [], [], []
        for _ in range(self.ROUNDS):
            exact_times.append(self._cpu_time(exact))
            tree_times.append(self._cpu_time(vectorized_trees))
            score_times.append(self._cpu_time(vectorized_scores))
        exact_best = min(exact_times)
        trees_best = min(tree_times)
        scores_best = min(score_times)

        # The headline: refreshing every composite score, vectorized
        # kernel vs the exact path's only route to the same numbers.
        assert exact_best >= 5.0 * scores_best, (
            f"vectorized kernel not >= 5x faster: exact "
            f"{exact_best * 1e3:.1f}ms vs scores-only "
            f"{scores_best * 1e3:.1f}ms"
        )
        # Tree-for-tree (bit-identical breakdowns) the win is smaller —
        # reconstruction is a shared fixed cost — but must stay real.
        assert exact_best >= 1.5 * trees_best, (
            f"vectorized kernel slower than exact on full breakdowns: "
            f"exact {exact_best * 1e3:.1f}ms vs vectorized "
            f"{trees_best * 1e3:.1f}ms"
        )
