"""Bench ext-qoe — IQB vs a speed-only barometer against ground truth.

Paper artifact: the poster's central motivation (§1): "'speed' ...
overlooks the growing complexity of modern Internet use". The poster
defers quantitative evaluation to its full report; this bench supplies
the reproduction's version: across the six region presets, compare how
well (a) the IQB score and (b) a speed-only score rank regions relative
to the simulated population's ground-truth QoE.

Expected shape: IQB's rank agreement with QoE is at least as high as
the speed-only baseline's, and the speed baseline specifically misranks
throughput-rich but latency/loss-poor regions (GEO satellite).
"""

from repro.analysis.correlation import evaluate_methods
from repro.analysis.ranking import rank_regions
from repro.analysis.tables import render_table
from repro.netsim import REGION_PRESETS, random_region, region_preset
from repro.netsim.simulator import CampaignConfig

from conftest import BENCH_CAMPAIGN, BENCH_SEED


def test_bench_iqb_vs_speed_only(benchmark, config):
    profiles = {name: region_preset(name) for name in REGION_PRESETS}

    result = benchmark.pedantic(
        evaluate_methods,
        kwargs=dict(
            profiles=profiles,
            seed=BENCH_SEED,
            config=config,
            campaign=BENCH_CAMPAIGN,
            subscribers_for_qoe=60,
        ),
        rounds=1,
        iterations=1,
    )

    iqb = result.methods["iqb"]
    speed = result.methods["speed_only"]

    rows = [
        (
            region,
            iqb.scores[region],
            speed.scores[region],
            result.qoe[region],
        )
        for region, _ in rank_regions(result.qoe)
    ]
    print("\n[ext-qoe] Scores vs ground-truth QoE (QoE-ranked):")
    print(render_table(["Region", "IQB", "Speed-only", "True QoE"], rows))
    print(
        render_table(
            ["Method", "Spearman", "Kendall", "Pairwise flips vs QoE"],
            [
                (m.method, m.spearman, m.kendall, m.flips)
                for m in (iqb, speed)
            ],
        )
    )
    print(f"Winner: {result.winner()}")

    # The paper's claim, in rank-agreement form.
    assert iqb.spearman >= speed.spearman
    assert iqb.kendall >= speed.kendall
    assert iqb.flips <= speed.flips
    assert iqb.spearman >= 0.8  # IQB genuinely tracks experienced quality


def test_bench_rank_agreement_across_seeds(benchmark, config):
    """Robustness of the comparison across campaign realizations.

    A single campaign can hand speed-only a lucky perfect ranking; over
    several independently-seeded campaigns IQB must never lose and
    should win at least once (speed-only misranking some region pair,
    typically the asymmetric-cable vs mixed-urban boundary).
    """
    profiles = {name: region_preset(name) for name in REGION_PRESETS}
    seeds = (41, 42, 43, 44, 45)

    def evaluate_all_seeds():
        return {
            seed: evaluate_methods(
                profiles,
                seed=seed,
                config=config,
                campaign=BENCH_CAMPAIGN,
                subscribers_for_qoe=60,
            )
            for seed in seeds
        }

    results = benchmark.pedantic(evaluate_all_seeds, rounds=1, iterations=1)

    rows = [
        (
            seed,
            result.methods["iqb"].spearman,
            result.methods["speed_only"].spearman,
            result.winner(),
        )
        for seed, result in sorted(results.items())
    ]
    print("\n[ext-qoe] Spearman vs QoE across campaign seeds:")
    print(render_table(["Seed", "IQB", "Speed-only", "Winner"], rows))

    iqb_mean = sum(r.methods["iqb"].spearman for r in results.values()) / len(seeds)
    speed_mean = sum(
        r.methods["speed_only"].spearman for r in results.values()
    ) / len(seeds)
    print(f"Mean Spearman: IQB={iqb_mean:.3f} speed-only={speed_mean:.3f}")

    for result in results.values():
        assert (
            result.methods["iqb"].spearman
            >= result.methods["speed_only"].spearman
        )
    assert iqb_mean >= speed_mean


def test_bench_random_market_structures(benchmark, config):
    """The comparison over 20 *random* markets — and an honest negative.

    The six presets were authored with a quality ordering in mind; a
    skeptic should ask whether IQB's advantage survives arbitrary
    market structures. It does not, and the reproduction reports why:
    random markets differ mostly in raw capacity across orders of
    magnitude, and a *thresholded* composite discards all within-band
    variation — a region at 5 Mb/s and one at 0.5 Mb/s fail the same
    bars and tie, while their experienced quality differs hugely.
    A continuous speed score resolves them trivially.

    The GRADED extension (which uses Fig. 2's minimum tier as a second
    rung) recovers part of the lost resolution, exactly as its design
    predicts. The finding for the framework's next iteration (§4): add
    within-band resolution (more tiers, or a piecewise-continuous
    requirement score) if ordinal use across very heterogeneous regions
    matters.
    """
    from repro.core import ScoreMode
    from repro.core.scoring import score_region

    profiles = {
        f"market-{i:02d}": random_region(f"market-{i:02d}", seed=97)
        for i in range(20)
    }
    campaign = CampaignConfig(subscribers=40, tests_per_client=150)
    graded_config = config.with_(score_mode=ScoreMode.GRADED)

    continuous_config = config.with_(score_mode=ScoreMode.CONTINUOUS)

    def run():
        result = evaluate_methods(
            profiles,
            seed=97,
            config=config,
            campaign=campaign,
            subscribers_for_qoe=40,
        )
        from repro.analysis.ranking import spearman_rho
        from repro.netsim import simulate_region

        graded_scores = {}
        continuous_scores = {}
        for name, profile in profiles.items():
            records = simulate_region(profile, seed=97, config=campaign)
            sources = records.group_by_source()
            graded_scores[name] = score_region(sources, graded_config).value
            continuous_scores[name] = score_region(
                sources, continuous_config
            ).value
        graded_rho = spearman_rho(graded_scores, dict(result.qoe))
        continuous_rho = spearman_rho(continuous_scores, dict(result.qoe))
        return result, graded_rho, continuous_rho

    result, graded_rho, continuous_rho = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    iqb = result.methods["iqb"]
    speed = result.methods["speed_only"]
    print(
        f"\n[ext-qoe] 20 random markets, Spearman vs QoE: "
        f"IQB(binary) {iqb.spearman:.3f}, IQB(graded) {graded_rho:.3f}, "
        f"IQB(continuous) {continuous_rho:.3f}, "
        f"speed-only {speed.spearman:.3f}"
    )
    print(
        "  Thresholded scores lose ordinal resolution across order-of-"
        "magnitude capacity spreads; each added tier of resolution "
        "recovers part of it (see docstring)."
    )

    # All readings are strongly informative...
    assert iqb.spearman >= 0.6
    # ...each resolution refinement recovers rank agreement...
    assert graded_rho >= iqb.spearman
    assert continuous_rho >= iqb.spearman
    # ...and the continuous *speed* baseline still wins on capacity-
    # dominated random markets — pinned as the documented finding.
    # (Measured TCP speed is itself a composite: the Mathis law bakes
    # RTT and loss into every throughput sample.)
    assert speed.spearman > continuous_rho
