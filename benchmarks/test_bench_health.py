"""Health-subsystem overhead benchmarks: SLO tracking must ride free.

The health monitor hooks the hottest ingest path in the codebase —
``SketchPlane.add`` notifies it per accepted measurement — so the
subsystem's contract is that a live campaign with SLO tracking enabled
re-scores at (essentially) the same speed as one without. Two
pytest-benchmark entries (tracked by ``compare_bench`` against
``BENCH_baseline.json``) at the same ≥100k-record buffered window the
streaming benches use:

* ``test_bench_health_instrumented_rescore`` — the incremental
  streaming tick (fold a 100-measurement burst, re-read every region's
  scores) with a default-rules :class:`HealthMonitor` installed, so
  every fold also advances freshness watermarks.
* ``test_bench_health_report`` — one full ``evaluate()``: burn-rate
  statuses for every rule plus the per-cell quality section.

``TestHealthOverhead`` is the acceptance gate: the instrumented tick
must cost < 5% more CPU time than the bare tick on the same plane.
"""

import dataclasses
import gc
import time

import pytest

from repro.core.config import paper_config
from repro.core.kernel import score_values
from repro.measurements.sketchplane import sketch_records
from repro.netsim import CampaignConfig, region_preset, simulate_region
from repro.obs.health import (
    HealthMonitor,
    default_rules,
    install_health_monitor,
    uninstall_health_monitor,
)

#: Same window shape as test_bench_streaming.py, so the two cohorts
#: measure the identical workload with and without health tracking.
_REGIONS = 16
_CAMPAIGN = CampaignConfig(subscribers=3, tests_per_client=2100)
_SEED = 42
_BURST = 100
_WINDOW_S = 86400.0


def _buffer():
    base = list(
        simulate_region(
            region_preset("mixed-urban"), seed=_SEED, config=_CAMPAIGN
        )
    )
    records = []
    for i in range(_REGIONS):
        records.extend(
            dataclasses.replace(record, region=f"region-{i:02d}")
            for record in base
        )
    return records


def _monitor(records):
    datasets = sorted({record.source for record in records})
    return HealthMonitor(rules=default_rules(datasets, _WINDOW_S))


@pytest.fixture(scope="module")
def health_config():
    return paper_config()


@pytest.fixture(scope="module")
def buffered(health_config):
    """(records, live plane, prebuilt burst) — see the streaming bench."""
    records = _buffer()
    plane = sketch_records(records)
    burst = [
        dataclasses.replace(record, region="region-00")
        for record in records[:_BURST]
    ]
    return records, plane, burst


@pytest.fixture()
def installed(buffered):
    records, _, _ = buffered
    monitor = _monitor(records)
    install_health_monitor(monitor)
    yield monitor
    uninstall_health_monitor()


#: CPU time, not wall time — same rationale as the kernel benches.
_STEADY = pytest.mark.benchmark(
    timer=time.process_time, min_rounds=7, warmup=True
)


@_STEADY
def test_bench_health_instrumented_rescore(
    benchmark, buffered, installed, health_config
):
    _, plane, burst = buffered

    def tick():
        plane.extend(burst)
        return score_values(plane, health_config)

    result = benchmark(tick)
    assert len(result) == _REGIONS
    # The hook actually fired: the monitor saw the burst's cell.
    assert "region-00" in installed.evaluate().quality["freshness_s"]


@_STEADY
def test_bench_health_report(benchmark, buffered):
    records, _, _ = buffered
    monitor = _monitor(records)
    # A populated monitor: every record's arrival plus a scored window,
    # so evaluate() walks real burn series, cells, and drift state.
    for record in records:
        monitor.record_arrival(
            record.region, record.source, record.timestamp
        )
    stamps = [record.timestamp for record in records]
    monitor.window_closed(
        min(stamps),
        max(stamps),
        {f"region-{i:02d}": 0.6 for i in range(_REGIONS)},
    )
    report = benchmark(monitor.evaluate)
    assert report.status in ("ok", "warn", "page")
    assert len(report.rules) >= 4


class TestHealthOverhead:
    """The acceptance bar: < 5% CPU overhead on the streaming tick."""

    ROUNDS = 9

    @staticmethod
    def _cpu_time(fn):
        gc.collect()
        start = time.process_time()
        fn()
        return time.process_time() - start

    def test_instrumented_tick_within_5_percent(self, health_config):
        records = _buffer()
        assert len(records) >= 100_000
        plane = sketch_records(records)
        burst = [
            dataclasses.replace(record, region="region-00")
            for record in records[:_BURST]
        ]
        monitor = _monitor(records)

        def tick():
            plane.extend(burst)
            return score_values(plane, health_config)

        def bare():
            uninstall_health_monitor()
            return tick()

        def instrumented():
            install_health_monitor(monitor)
            try:
                return tick()
            finally:
                uninstall_health_monitor()

        # Same-process warmup, then interleaved min-of-rounds CPU time
        # (the harness every speedup gate in this repo uses), so
        # scheduler noise cannot fail the build.
        bare()
        instrumented()
        bare_times, instrumented_times = [], []
        for _ in range(self.ROUNDS):
            bare_times.append(self._cpu_time(bare))
            instrumented_times.append(self._cpu_time(instrumented))
        bare_best = min(bare_times)
        instrumented_best = min(instrumented_times)

        assert instrumented_best <= 1.05 * bare_best, (
            f"health tracking costs more than 5% on the streaming "
            f"tick: bare {bare_best * 1e3:.2f}ms vs instrumented "
            f"{instrumented_best * 1e3:.2f}ms"
        )
