"""Bench ext-adaptive — uncertainty-driven probe allocation.

Paper artifact: the datasets tier presumes measurements exist in every
region of interest; a real deployment must *allocate* limited probing
capacity. This bench closes the loop between the bootstrap-uncertainty
module and the probing framework: spend the same total probe budget
(a) uniformly across regions and (b) adaptively, re-allocating each
round toward regions whose score CI is still wide.

Expected shape: for the same budget, the adaptive campaign's *worst*
regional CI is no wider than uniform's (it reduces the max, possibly at
the cost of slightly wider CIs for already-settled regions), and the
adaptive allocation visibly skews toward the high-uncertainty regions.
"""

from repro.analysis.tables import render_table
from repro.netsim import region_preset
from repro.probing import AdaptiveAllocator, SimulatedBackend, uniform_campaign

REGIONS = ("metro-fiber", "suburban-cable", "mixed-urban", "rural-dsl")
BUDGET = 720


def _backend(seed):
    return SimulatedBackend(
        profiles=[region_preset(name) for name in REGIONS],
        seed=seed,
        subscribers=40,
    )


def test_bench_adaptive_vs_uniform(benchmark, config):
    def run_both():
        adaptive = AdaptiveAllocator(
            _backend(seed=61),
            config,
            seed=61,
            pilot_per_region=60,
            bootstrap_replicates=60,
        ).run(total_budget=BUDGET, rounds=3)
        uniform = uniform_campaign(
            _backend(seed=61),
            config,
            total_budget=BUDGET,
            seed=61,
            bootstrap_replicates=60,
        )
        return adaptive, uniform

    adaptive, uniform = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    adaptive_counts = adaptive.tests_per_region()
    uniform_counts = uniform.tests_per_region()
    for region in REGIONS:
        rows.append(
            (
                region,
                adaptive_counts[region],
                adaptive.final_ci_widths[region],
                uniform_counts[region],
                uniform.final_ci_widths[region],
            )
        )
    print(f"\n[ext-adaptive] Same budget ({BUDGET} probes), two allocations:")
    print(
        render_table(
            ["Region", "Adaptive tests", "Adaptive CI", "Uniform tests",
             "Uniform CI"],
            rows,
        )
    )
    print(
        f"Worst-case CI width: adaptive {adaptive.worst_ci_width:.3f} "
        f"vs uniform {uniform.worst_ci_width:.3f}"
    )

    # Budget parity.
    assert len(adaptive.records) == len(uniform.records) == BUDGET
    # The allocation actually adapted: not every region got the same.
    assert len(set(adaptive_counts.values())) > 1
    # The target criterion: adaptive never does meaningfully worse on
    # the worst-pinned-down region.
    assert adaptive.worst_ci_width <= uniform.worst_ci_width + 0.03
    # Probes flowed toward uncertainty: the region with the widest
    # pilot CI received more than a uniform share.
    pilot_widths = adaptive.rounds[0].ci_widths
    neediest = max(pilot_widths, key=pilot_widths.get)
    assert adaptive_counts[neediest] > BUDGET // len(REGIONS)
