"""Bench fig2 — regenerate the paper's Fig. 2 threshold matrix.

Paper artifact: Fig. 2, "Network requirements thresholds for minimum
and high quality for each use case."

The bench rebuilds the full 6x4 matrix of (minimum, high) thresholds
from the canonical config and prints it in the paper's row/column
order, rendering the two interpretation cases faithfully: the "Other"
cells (no published high-quality upload threshold for web browsing and
gaming) and the "50-100 Mb/s" range for video-streaming download.
"""

from repro.analysis.tables import render_table
from repro.core import Metric, QualityLevel, UseCase
from repro.core.thresholds import ThresholdRange, paper_thresholds


def _render_high(cell):
    if cell.high is None:
        return "Other"
    if isinstance(cell.high, ThresholdRange):
        return f"{cell.high.low:g}-{cell.high.high:g}"
    return f"{cell.high:g}"


def _loss_percent(value):
    return f"{value * 100:g}%"


def test_bench_fig2_threshold_matrix(benchmark, config):
    table = benchmark(paper_thresholds)

    rows = []
    for use_case in UseCase.ordered():
        dl = table.get(use_case, Metric.DOWNLOAD)
        ul = table.get(use_case, Metric.UPLOAD)
        lat = table.get(use_case, Metric.LATENCY)
        loss = table.get(use_case, Metric.PACKET_LOSS)
        rows.append(
            (
                use_case.display_name,
                f"{dl.minimum:g}",
                _render_high(dl),
                f"{ul.minimum:g}",
                _render_high(ul),
                f"{lat.minimum:g}ms",
                f"{lat.value(QualityLevel.HIGH):g}ms",
                _loss_percent(loss.minimum),
                _loss_percent(loss.value(QualityLevel.HIGH)),
            )
        )
    print("\n[fig2] Network-requirement thresholds (paper Fig. 2):")
    print(
        render_table(
            [
                "Use case",
                "DL min",
                "DL high",
                "UL min",
                "UL high",
                "Lat min",
                "Lat high",
                "Loss min",
                "Loss high",
            ],
            rows,
        )
    )

    # Spot-check the printed matrix against the paper's cells.
    by_name = {row[0]: row for row in rows}
    assert by_name["Web Browsing"][1:5] == ("10", "100", "10", "Other")
    assert by_name["Video Streaming"][2] == "50-100"
    assert by_name["Video Conferencing"][5:7] == ("50ms", "20ms")
    assert by_name["Online Backup"][4] == "200"
    assert by_name["Gaming"][7:9] == ("1%", "0.5%")
    assert len(rows) == 6


def test_bench_fig2_scoring_thresholds(benchmark, config):
    """The scalar thresholds the scorer actually uses at HIGH level."""

    def resolve_all():
        return {
            (u, m): config.threshold_value(u, m)
            for u in UseCase
            for m in Metric
        }

    resolved = benchmark(resolve_all)
    # "Other" cells fall back to the minimum threshold.
    assert resolved[(UseCase.WEB_BROWSING, Metric.UPLOAD)] == 10.0
    assert resolved[(UseCase.GAMING, Metric.UPLOAD)] == 10.0
    # The range resolves to its conservative lower bound by default.
    assert resolved[(UseCase.VIDEO_STREAMING, Metric.DOWNLOAD)] == 50.0
