"""Bench ext-elicit — stability of the paper's expert-elicitation step.

Paper artifact: footnote 1 — thresholds and weights came from
interviews/workshops with "more than 60 experts". We cannot re-run the
panel, so the bench simulates it (DESIGN.md substitution): experts vote
noisily around the published Table 1 values and the panel's median is
taken as consensus. The question the bench answers: at what panel size
does the consensus procedure reliably recover the published matrix?

Expected shape: recovery improves with panel size, and a 60-expert
panel recovers the great majority of cells under realistic (±1-weight
std-dev) disagreement — i.e. the paper's published constants are
stable outputs of its procedure, not artifacts of panel composition.
"""

from repro.analysis.tables import render_table
from repro.core.elicitation import recovery_curve, simulate_panel


def test_bench_recovery_vs_panel_size(benchmark):
    curve = benchmark.pedantic(
        recovery_curve,
        kwargs=dict(
            panel_sizes=(5, 10, 20, 40, 60, 100),
            noise_sigma=1.0,
            trials=15,
            seed=3,
        ),
        rounds=1,
        iterations=1,
    )

    print("\n[ext-elicit] Published-weight recovery vs panel size (sigma=1.0):")
    print(
        render_table(
            ["Experts", "Mean cell recovery"],
            sorted(curve.items()),
        )
    )

    assert curve[60] >= curve[5]
    assert curve[60] >= 0.75
    assert all(0.0 <= rate <= 1.0 for rate in curve.values())


def test_bench_panel_dispersion(benchmark):
    result = benchmark.pedantic(
        simulate_panel,
        kwargs=dict(experts=60, noise_sigma=1.0, seed=17),
        rounds=1,
        iterations=1,
    )

    worst = sorted(
        result.dispersion.items(), key=lambda item: -item[1]
    )[:5]
    print(
        f"\n[ext-elicit] 60-expert panel: recovery "
        f"{result.recovery_rate:.0%}; highest-dispersion cells:"
    )
    print(
        render_table(
            ["Use case", "Requirement", "Vote std-dev"],
            [(u.value, m.value, d) for (u, m), d in worst],
        )
    )

    assert result.experts == 60
    assert result.recovery_rate >= 0.7
