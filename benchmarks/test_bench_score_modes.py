"""Bench ext-graded — binary vs graded scoring (documented extension).

Paper artifact: Fig. 2 publishes *two* threshold tiers per requirement,
but Eqs. 1-5 consume only one binary verdict per dataset. The GRADED
extension uses both tiers (1 / 0.5 / 0 for high / minimum-only /
neither), recovering the resolution the published thresholds already
contain. The bench compares the three readings — BINARY@HIGH (the
paper), GRADED, BINARY@MINIMUM — across all region presets.

Expected shape: graded is sandwiched between the two binary readings
everywhere, and it separates regions the binary-high reading collapses
(regions that clear minimum tiers but few high tiers all look alike at
the bottom of the binary-high scale).
"""

from repro.analysis.tables import render_table
from repro.core import QualityLevel, ScoreMode, paper_config, score_region


def test_bench_score_mode_comparison(benchmark, sources_by_region):
    binary_high = paper_config()
    binary_min = paper_config(quality_level=QualityLevel.MINIMUM)
    graded = paper_config(score_mode=ScoreMode.GRADED)

    def score_all():
        out = {}
        for region, sources in sources_by_region.items():
            out[region] = (
                score_region(sources, binary_high).value,
                score_region(sources, graded).value,
                score_region(sources, binary_min).value,
            )
        return out

    scores = benchmark(score_all)

    print("\n[ext-graded] Binary(high) vs graded vs binary(minimum):")
    print(
        render_table(
            ["Region", "Binary@high (paper)", "Graded", "Binary@min"],
            [(r, v[0], v[1], v[2]) for r, v in sorted(scores.items())],
        )
    )

    for region, (high, graded_score, minimum) in scores.items():
        assert high - 1e-9 <= graded_score <= minimum + 1e-9, region

    # Resolution claim: graded spreads the bottom of the scale. The two
    # low-quality presets are nearly tied under binary-high; graded
    # separates at least as well.
    high_gap = abs(scores["rural-dsl"][0] - scores["mobile-first"][0])
    graded_gap = abs(scores["rural-dsl"][1] - scores["mobile-first"][1])
    assert graded_gap >= high_gap - 1e-9


def test_bench_graded_use_case_resolution(benchmark, sources_by_region):
    """Per-use-case view on the region where the modes differ most."""
    graded_config = paper_config(score_mode=ScoreMode.GRADED)
    binary_config = paper_config()
    sources = sources_by_region["rural-dsl"]

    def score_both():
        return (
            score_region(sources, binary_config),
            score_region(sources, graded_config),
        )

    binary, graded = benchmark(score_both)

    print("\n[ext-graded] rural-dsl per use case:")
    print(
        render_table(
            ["Use case", "Binary@high", "Graded"],
            [
                (b.use_case.value, b.value, g.value)
                for b, g in zip(binary.use_cases, graded.use_cases)
            ],
        )
    )
    assert graded.value >= binary.value - 1e-9
