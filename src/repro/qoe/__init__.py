"""Ground-truth QoE models, one per IQB use case."""

from .audio import AudioModel
from .backup import BackupModel
from .conditions import NetworkConditions, clamp01, from_link
from .conferencing import (
    ConferencingModel,
    delay_impairment,
    loss_impairment,
    r_factor,
    r_to_mos,
)
from .composite import (
    PRIME_TIME_HOUR,
    PopulationQoE,
    UseCaseModels,
    region_qoe,
    regions_qoe,
)
from .gaming import GamingModel
from .video import DEFAULT_LADDER, VideoModel
from .web import WebModel

__all__ = [
    "AudioModel",
    "BackupModel",
    "ConferencingModel",
    "DEFAULT_LADDER",
    "GamingModel",
    "NetworkConditions",
    "PRIME_TIME_HOUR",
    "PopulationQoE",
    "UseCaseModels",
    "VideoModel",
    "WebModel",
    "clamp01",
    "delay_impairment",
    "from_link",
    "loss_impairment",
    "r_factor",
    "r_to_mos",
    "region_qoe",
    "regions_qoe",
]
