"""Web-browsing QoE: a page-load-time model.

Loading a modern page costs several round trips before any payload
moves (DNS, TCP, TLS, then request/response waterfalls), followed by
transferring a few megabytes over loss-limited TCP. The model:

``PLT = setup_rtts · RTT + page_bytes / effective_throughput + render``

with effective throughput the Mathis-capped single-ish-connection rate
(browsers multiplex, so we model 3 effective streams), and satisfaction
an APDEX-style logistic: ~1.0 below one second, ~0.5 at the tolerance
point, →0 beyond frustration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netsim.tcp import multi_stream_throughput

from .conditions import NetworkConditions, clamp01

#: Median 2024-era page weight (bytes).
DEFAULT_PAGE_BYTES = 2.5e6
#: Round trips spent before the payload flows (DNS+TCP+TLS+HTML fetch).
SETUP_RTTS = 5.0
#: Client-side parse/render time (s), network-independent.
RENDER_SECONDS = 0.4
#: Browsers fetch over a handful of multiplexed connections.
EFFECTIVE_STREAMS = 3


@dataclass(frozen=True)
class WebModel:
    """Page-load-time → satisfaction model."""

    page_bytes: float = DEFAULT_PAGE_BYTES
    #: PLT (s) at which users rate the experience 0.5.
    tolerance_seconds: float = 4.0
    #: Logistic steepness (1/s).
    steepness: float = 1.2

    def page_load_time(self, conditions: NetworkConditions) -> float:
        """Estimated page load time in seconds."""
        rtt_s = conditions.rtt_ms / 1000.0
        throughput = multi_stream_throughput(
            conditions.download_mbps,
            conditions.rtt_ms,
            conditions.loss,
            streams=EFFECTIVE_STREAMS,
        )
        throughput = max(throughput, 0.05)  # keep transfer time finite
        transfer = self.page_bytes * 8.0 / (throughput * 1e6)
        return SETUP_RTTS * rtt_s + transfer + RENDER_SECONDS

    def satisfaction(self, conditions: NetworkConditions) -> float:
        """Satisfaction in [0, 1]; 0.5 at the tolerance PLT."""
        plt = self.page_load_time(conditions)
        return clamp01(
            1.0 / (1.0 + math.exp(self.steepness * (plt - self.tolerance_seconds)))
        )
