"""Audio-streaming QoE: stall-probability model.

Music streaming needs little bandwidth (0.32 Mbit/s for 320 kb/s
streams) but suffers when the effective throughput cannot keep the
playout buffer ahead, or when loss forces rebuffering of the small
audio segments. Latency matters only mildly (startup and seek times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netsim.tcp import multi_stream_throughput

from .conditions import NetworkConditions, clamp01

#: High-quality stream bitrate (Mbit/s).
DEFAULT_BITRATE_MBPS = 0.32
#: Buffer headroom audio players keep.
HEADROOM = 2.0


@dataclass(frozen=True)
class AudioModel:
    """Audio stall model → satisfaction."""

    bitrate_mbps: float = DEFAULT_BITRATE_MBPS

    def stall_risk(self, conditions: NetworkConditions) -> float:
        """Probability-like stall risk in [0, 1]."""
        throughput = multi_stream_throughput(
            conditions.download_mbps,
            conditions.rtt_ms,
            conditions.loss,
            streams=1,
        )
        required = self.bitrate_mbps * HEADROOM
        if throughput >= required:
            return clamp01(conditions.loss * 1.5)
        deficit = 1.0 - throughput / required
        return clamp01(deficit + conditions.loss * 1.5)

    def startup_delay(self, conditions: NetworkConditions) -> float:
        """Seconds to first audio (handshake + initial buffer)."""
        rtt_s = conditions.rtt_ms / 1000.0
        throughput = max(
            multi_stream_throughput(
                conditions.download_mbps,
                conditions.rtt_ms,
                conditions.loss,
                streams=1,
            ),
            0.05,
        )
        buffer_seconds = 5.0 * self.bitrate_mbps / throughput
        return 3.0 * rtt_s + buffer_seconds

    def satisfaction(self, conditions: NetworkConditions) -> float:
        """Satisfaction in [0, 1]: stall-dominated, mildly startup-aware."""
        stall = self.stall_risk(conditions)
        startup = self.startup_delay(conditions)
        startup_penalty = clamp01((startup - 1.0) / 9.0)
        quality = math.exp(-4.0 * stall) * (1.0 - 0.3 * startup_penalty)
        return clamp01(quality)
