"""Video-conferencing QoE: a simplified ITU-T G.107 E-model.

The E-model scores a conversational path with a transmission rating
``R`` starting from ~93 and subtracting impairments:

* ``Id`` — delay impairment, negligible below ~160 ms mouth-to-ear and
  steep beyond ~300 ms (we map one-way delay ≈ RTT/2 + jitter-buffer);
* ``Ie_eff`` — equipment/loss impairment for the codec, growing with
  packet loss against the codec's loss robustness (Bpl).

``R`` maps to MOS via the standard cubic, and MOS (1..4.5) normalizes
to satisfaction in [0, 1]. A throughput floor handicaps links that
cannot carry the video at all — the E-model alone is audio-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from .conditions import NetworkConditions, clamp01

#: Default transmission rating with modern wideband codecs.
R0 = 93.2
#: Jitter-buffer + capture/encode delay added to the network path (ms).
PROCESSING_DELAY_MS = 40.0
#: Codec baseline impairment and loss robustness (Opus-like).
IE_CODEC = 0.0
BPL_CODEC = 25.0
#: Bitrates (Mbit/s) below which video degrades / fails outright.
VIDEO_GOOD_MBPS = 2.5
VIDEO_MIN_MBPS = 0.6


def delay_impairment(one_way_ms: float) -> float:
    """``Id``: the classic G.107 delay-impairment approximation.

    ``Id = 0.024·d + 0.11·(d − 177.3)·H(d − 177.3)`` with d the one-way
    mouth-to-ear delay in ms (Cole & Rosenbluth's widely used fit).
    """
    impairment = 0.024 * one_way_ms
    if one_way_ms > 177.3:
        impairment += 0.11 * (one_way_ms - 177.3)
    return impairment


def loss_impairment(loss: float) -> float:
    """``Ie_eff``: codec + packet-loss impairment."""
    loss_percent = loss * 100.0
    return IE_CODEC + (95.0 - IE_CODEC) * loss_percent / (loss_percent + BPL_CODEC)


def r_factor(conditions: NetworkConditions) -> float:
    """Transmission rating R in [0, ~93]."""
    one_way = conditions.rtt_ms / 2.0 + PROCESSING_DELAY_MS
    r = R0 - delay_impairment(one_way) - loss_impairment(conditions.loss)
    return max(0.0, r)


def r_to_mos(r: float) -> float:
    """The standard G.107 R→MOS cubic, clamped to [1, 4.5]."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    return min(4.5, max(1.0, mos))


@dataclass(frozen=True)
class ConferencingModel:
    """E-model audio score with a video throughput gate."""

    video_good_mbps: float = VIDEO_GOOD_MBPS
    video_min_mbps: float = VIDEO_MIN_MBPS

    def mos(self, conditions: NetworkConditions) -> float:
        """Call MOS in [1, 4.5] (audio E-model, video-gated)."""
        audio_mos = r_to_mos(r_factor(conditions))
        return audio_mos * self._video_gate(conditions)

    def _video_gate(self, conditions: NetworkConditions) -> float:
        """Multiplier in [0.55, 1] for the sendable/receivable video.

        Conferencing is bidirectional: the *minimum* of up and down
        governs, since either direction starving kills the call.
        """
        usable = min(conditions.download_mbps, conditions.upload_mbps)
        if usable >= self.video_good_mbps:
            return 1.0
        if usable <= self.video_min_mbps:
            return 0.55
        span = self.video_good_mbps - self.video_min_mbps
        return 0.55 + 0.45 * (usable - self.video_min_mbps) / span

    def satisfaction(self, conditions: NetworkConditions) -> float:
        """MOS normalized onto [0, 1] (MOS 1 → 0, MOS 4.5 → 1)."""
        return clamp01((self.mos(conditions) - 1.0) / 3.5)
