"""Online-gaming QoE: responsiveness model.

Competitive online play is dominated by the motion-to-photon chain:
network RTT plus loss-induced retransmission/rollback. Published
player studies put the playability cliff between 100 and 150 ms RTT,
with loss above ~1 % causing visible rubber-banding regardless of
latency. Throughput matters only as a low floor (game state streams
are tens of kb/s; downloads are a separate use case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .conditions import NetworkConditions, clamp01

#: RTT (ms) below which play feels local.
RTT_EXCELLENT_MS = 30.0
#: RTT (ms) at which satisfaction crosses 0.5.
RTT_TOLERANCE_MS = 110.0
#: Throughput floor (Mbit/s) for state updates + voice + patch trickle.
THROUGHPUT_FLOOR_MBPS = 3.0


@dataclass(frozen=True)
class GamingModel:
    """Latency/loss playability model → satisfaction."""

    rtt_tolerance_ms: float = RTT_TOLERANCE_MS
    #: Logistic steepness (1/ms).
    steepness: float = 0.045

    def responsiveness(self, conditions: NetworkConditions) -> float:
        """Latency-only playability in [0, 1] (logistic in RTT)."""
        rtt = max(conditions.rtt_ms, 1.0)
        if rtt <= RTT_EXCELLENT_MS:
            return 1.0
        return clamp01(
            1.0
            / (1.0 + math.exp(self.steepness * (rtt - self.rtt_tolerance_ms)))
        )

    def loss_penalty(self, conditions: NetworkConditions) -> float:
        """Multiplier in [0, 1]: rubber-banding from packet loss."""
        return math.exp(-80.0 * conditions.loss)

    def throughput_gate(self, conditions: NetworkConditions) -> float:
        """Multiplier in [0.5, 1] for links below the state-update floor."""
        usable = min(conditions.download_mbps, conditions.upload_mbps * 4.0)
        if usable >= THROUGHPUT_FLOOR_MBPS:
            return 1.0
        return 0.5 + 0.5 * usable / THROUGHPUT_FLOOR_MBPS

    def satisfaction(self, conditions: NetworkConditions) -> float:
        """Playability in [0, 1]."""
        return clamp01(
            self.responsiveness(conditions)
            * self.loss_penalty(conditions)
            * self.throughput_gate(conditions)
        )
