"""Video-streaming QoE: adaptive-bitrate ladder + rebuffer penalty.

An ABR player picks the highest ladder rung that fits safely inside the
sustainable TCP throughput, then suffers rebuffering when conditions
leave too little headroom. Satisfaction combines:

* the *perceptual value* of the selected rung (diminishing returns with
  bitrate — 4K over 1080p matters less than 480p over 240p), and
* a rebuffer penalty that grows as the throughput safety margin shrinks
  and as loss spikes eat the buffer.

The ladder matches common streaming tiers (240p ... 4K).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.netsim.tcp import multi_stream_throughput

from .conditions import NetworkConditions, clamp01

#: (label, bitrate Mbit/s, perceptual value in [0, 1]).
DEFAULT_LADDER: Tuple[Tuple[str, float, float], ...] = (
    ("240p", 0.4, 0.15),
    ("480p", 1.5, 0.45),
    ("720p", 3.5, 0.70),
    ("1080p", 6.0, 0.85),
    ("1440p", 10.0, 0.93),
    ("2160p", 18.0, 1.00),
)

#: Players keep a safety margin: sustained throughput must exceed the
#: rung bitrate by this factor.
HEADROOM = 1.25
#: Streams a player typically uses for segment fetches.
PLAYER_STREAMS = 2


@dataclass(frozen=True)
class VideoModel:
    """ABR rung selection → satisfaction model."""

    ladder: Tuple[Tuple[str, float, float], ...] = DEFAULT_LADDER
    #: Weight of the rebuffer penalty in the final satisfaction.
    rebuffer_weight: float = 0.5

    def sustainable_mbps(self, conditions: NetworkConditions) -> float:
        """Sustained fetch throughput the player can count on."""
        return multi_stream_throughput(
            conditions.download_mbps,
            conditions.rtt_ms,
            conditions.loss,
            streams=PLAYER_STREAMS,
        )

    def select_rung(self, conditions: NetworkConditions) -> Tuple[str, float, float]:
        """The ladder rung the ABR controller would settle on.

        Returns the lowest rung when even 240p does not fit — playback
        then rebuffers chronically, which the penalty term captures.
        """
        throughput = self.sustainable_mbps(conditions)
        selected = self.ladder[0]
        for rung in self.ladder:
            _, bitrate, _ = rung
            if throughput >= bitrate * HEADROOM:
                selected = rung
        return selected

    def rebuffer_ratio(self, conditions: NetworkConditions) -> float:
        """Fraction of playback time lost to stalls, in [0, 1]."""
        throughput = self.sustainable_mbps(conditions)
        _, bitrate, _ = self.select_rung(conditions)
        margin = throughput / (bitrate * HEADROOM) if bitrate > 0 else 0.0
        if margin >= 1.0:
            # Headroom respected: stalls come only from loss bursts.
            return clamp01(conditions.loss * 2.0)
        # Under-provisioned: stall fraction grows with the deficit.
        deficit = 1.0 - margin
        return clamp01(deficit + conditions.loss * 2.0)

    def satisfaction(self, conditions: NetworkConditions) -> float:
        """Satisfaction in [0, 1] combining rung value and stalls."""
        _, _, value = self.select_rung(conditions)
        stall = self.rebuffer_ratio(conditions)
        # Rebuffering is perceptually catastrophic: exponential penalty.
        penalty = 1.0 - math.exp(-6.0 * stall)
        return clamp01(value * (1.0 - self.rebuffer_weight * penalty)
                       - 0.5 * penalty * self.rebuffer_weight)
