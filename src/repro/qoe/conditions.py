"""Shared input type for the QoE models.

Every per-use-case model maps one set of *ground-truth* network
conditions — what the subscriber's link actually delivers, not what a
speed test reported — onto a satisfaction value in [0, 1]. Conditions
typically come from :class:`~repro.netsim.link.SubscriberLink` at a
chosen utilization via :func:`from_link`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.link import SubscriberLink


@dataclass(frozen=True)
class NetworkConditions:
    """Effective link conditions a QoE model evaluates."""

    download_mbps: float
    upload_mbps: float
    rtt_ms: float
    loss: float

    def __post_init__(self) -> None:
        if self.download_mbps < 0 or self.upload_mbps < 0:
            raise ValueError(f"negative throughput in {self}")
        if self.rtt_ms <= 0:
            raise ValueError(f"non-positive rtt in {self}")
        if not 0.0 <= self.loss <= 1.0:
            raise ValueError(f"loss outside [0, 1] in {self}")


def from_link(link: SubscriberLink, utilization: float) -> NetworkConditions:
    """Ground-truth conditions of a simulated link at a utilization."""
    return NetworkConditions(
        download_mbps=link.down_available_mbps(utilization),
        upload_mbps=link.up_available_mbps(utilization),
        rtt_ms=link.rtt_under_load(utilization),
        loss=link.loss_under_load(utilization),
    )


def clamp01(value: float) -> float:
    """Clamp a satisfaction value into [0, 1]."""
    return min(1.0, max(0.0, value))
