"""Population-level QoE ground truth per region.

Evaluates every use-case model over a region's simulated subscriber
population at prime-time conditions, yielding the "true experienced
quality" that the evaluation benches compare scores against: if IQB is
a better barometer than a speed-only metric, its region ranking should
track this ground truth more closely (the poster's central claim).

The mapping between IQB use cases and QoE models is one-to-one, and the
composite aggregates with the same use-case weights as the IQB config
under study — so the comparison isolates the *scoring* methodology, not
the choice of use cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.usecases import UseCase
from repro.core.weights import UseCaseWeights, equal_use_case_weights
from repro.netsim.population import RegionProfile, build_links
from repro.netsim.rng import make_rng

from .audio import AudioModel
from .backup import BackupModel
from .conditions import NetworkConditions, from_link
from .conferencing import ConferencingModel
from .gaming import GamingModel
from .video import VideoModel
from .web import WebModel

#: Prime-time hour at which ground-truth QoE is evaluated.
PRIME_TIME_HOUR = 20.5


class UseCaseModels:
    """The six per-use-case QoE models, keyed by IQB use case."""

    def __init__(
        self,
        web: Optional[WebModel] = None,
        video: Optional[VideoModel] = None,
        conferencing: Optional[ConferencingModel] = None,
        audio: Optional[AudioModel] = None,
        backup: Optional[BackupModel] = None,
        gaming: Optional[GamingModel] = None,
    ) -> None:
        self._models = {
            UseCase.WEB_BROWSING: web or WebModel(),
            UseCase.VIDEO_STREAMING: video or VideoModel(),
            UseCase.VIDEO_CONFERENCING: conferencing or ConferencingModel(),
            UseCase.AUDIO_STREAMING: audio or AudioModel(),
            UseCase.ONLINE_BACKUP: backup or BackupModel(),
            UseCase.GAMING: gaming or GamingModel(),
        }

    def satisfaction(
        self, use_case: UseCase, conditions: NetworkConditions
    ) -> float:
        """One use case's satisfaction under the given conditions."""
        return self._models[use_case].satisfaction(conditions)


@dataclass(frozen=True)
class PopulationQoE:
    """Ground-truth QoE digest for one region."""

    region: str
    #: Mean satisfaction per use case across the population.
    per_use_case: Mapping[UseCase, float]
    #: Weighted composite (same ``w_u`` convention as the IQB score).
    overall: float
    subscribers: int


def region_qoe(
    profile: RegionProfile,
    seed: int,
    subscribers: int = 150,
    models: Optional[UseCaseModels] = None,
    weights: Optional[UseCaseWeights] = None,
    hour: float = PRIME_TIME_HOUR,
) -> PopulationQoE:
    """Evaluate ground-truth QoE over a region's population.

    Each subscriber is evaluated at the region's prime-time utilization
    (with the same per-draw noise the simulator applies), so the ground
    truth reflects the loaded network the 95th-percentile rule also
    tends to see.
    """
    models = models or UseCaseModels()
    weights = weights or equal_use_case_weights()
    links = build_links(profile, subscribers, seed)
    rng = make_rng(seed, "qoe", profile.name)
    sums: Dict[UseCase, float] = {u: 0.0 for u in UseCase}
    for link in links:
        utilization = profile.diurnal.utilization(hour, profile.load_factor)
        noisy = min(
            1.0,
            max(0.0, utilization + float(rng.normal(0.0, 0.05))),
        )
        conditions = from_link(link, noisy)
        for use_case in UseCase:
            sums[use_case] += models.satisfaction(use_case, conditions)
    per_use_case = {u: sums[u] / len(links) for u in UseCase}
    normalized = weights.normalized()
    overall = sum(normalized[u] * per_use_case[u] for u in UseCase)
    return PopulationQoE(
        region=profile.name,
        per_use_case=per_use_case,
        overall=overall,
        subscribers=len(links),
    )


def regions_qoe(
    profiles: Mapping[str, RegionProfile],
    seed: int,
    subscribers: int = 150,
    models: Optional[UseCaseModels] = None,
    weights: Optional[UseCaseWeights] = None,
) -> Dict[str, PopulationQoE]:
    """Ground-truth QoE for several regions."""
    return {
        name: region_qoe(
            profile,
            seed=seed,
            subscribers=subscribers,
            models=models,
            weights=weights,
        )
        for name, profile in profiles.items()
    }
