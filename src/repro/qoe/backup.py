"""Online-backup QoE: completion-time utility.

Bulk backup is throughput-bound and asymmetric: only the upload path
matters, latency barely does (long-lived flows amortize handshakes),
and loss matters only through its effect on sustained TCP rate. The
utility question users actually have is "does tonight's backup finish
overnight?" — so satisfaction is a logistic in completion hours against
an overnight window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.netsim.tcp import multi_stream_throughput

from .conditions import NetworkConditions, clamp01

#: A respectable nightly incremental backup (bytes).
DEFAULT_BACKUP_BYTES = 20e9
#: Backup clients open several parallel transfer streams.
BACKUP_STREAMS = 4
#: Completion time (h) at which satisfaction crosses 0.5.
TOLERANCE_HOURS = 8.0


@dataclass(frozen=True)
class BackupModel:
    """Upload completion time → satisfaction."""

    backup_bytes: float = DEFAULT_BACKUP_BYTES
    tolerance_hours: float = TOLERANCE_HOURS

    def completion_hours(self, conditions: NetworkConditions) -> float:
        """Hours to push the backup at sustained upload rate."""
        throughput = multi_stream_throughput(
            conditions.upload_mbps,
            conditions.rtt_ms,
            conditions.loss,
            streams=BACKUP_STREAMS,
        )
        throughput = max(throughput, 0.05)
        seconds = self.backup_bytes * 8.0 / (throughput * 1e6)
        return seconds / 3600.0

    def satisfaction(self, conditions: NetworkConditions) -> float:
        """Satisfaction in [0, 1]; 0.5 when the overnight window is hit."""
        hours = self.completion_hours(conditions)
        return clamp01(
            1.0 / (1.0 + math.exp(0.6 * (hours - self.tolerance_hours)))
        )
