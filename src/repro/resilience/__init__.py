"""Failure-handling layer: retries, breakers, journals, fault injection.

The IQB pipeline's robustness story lives here, in four pieces that
compose with (rather than entangle) the probing and scoring layers:

* :mod:`repro.resilience.retry` — per-probe attempt budgets with
  decorrelated-jitter backoff and per-campaign wall-clock deadlines;
* :mod:`repro.resilience.breaker` — per-``(backend, client)`` circuit
  breakers so a dead dataset stops consuming the schedule;
* :mod:`repro.resilience.journal` — the crash-safe campaign journal
  (JSONL WAL + atomic snapshots) behind ``iqb monitor --resume``;
* :mod:`repro.resilience.chaos` — seeded, deterministic fault injection
  used by the chaos test suite to prove all of the above actually works.

Layering: this package depends on ``repro.core``, ``repro.obs``,
``repro.fsutil``, and the probing protocol types — never on the CLI or
analysis layers, which consume it.
"""

from repro.fsutil import atomic_write
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    BreakerOpenError,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    ChaosBackend,
    ChaosConfig,
    ChaosRemote,
    ChaosRemoteConfig,
    ChaosSink,
    strip_metrics,
)
from repro.resilience.journal import (
    CampaignJournal,
    probe_key,
    window_key,
)
from repro.resilience.retry import Deadline, RetryPolicy

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "BreakerBoard",
    "BreakerOpenError",
    "CampaignJournal",
    "ChaosBackend",
    "ChaosConfig",
    "ChaosRemote",
    "ChaosRemoteConfig",
    "ChaosSink",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "atomic_write",
    "probe_key",
    "strip_metrics",
    "window_key",
]
