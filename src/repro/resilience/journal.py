"""Crash-safe campaign checkpoints: a JSONL WAL plus atomic snapshots.

A long measurement campaign must survive its process dying. The
:class:`CampaignJournal` is a classic write-ahead redo log:

* every completed unit of work (a probe key, a monitor window) is
  appended to the journal file as one flushed JSONL line — optionally
  carrying that unit's redo ``data`` (e.g. the window's score points),
  so replay reconstructs downstream state exactly;
* :meth:`checkpoint` compacts the log: the full completed-key set and
  an opaque ``state`` document are written to a sibling ``.snap`` file
  via :func:`repro.fsutil.atomic_write`, after which the WAL is
  truncated. A crash at any instant leaves either the old snapshot +
  full WAL or the new snapshot (+ possibly a few redundant WAL lines,
  which replay harmlessly into the completed set).

On open, the journal loads ``snapshot ∪ WAL``; a torn final WAL line
(the process died mid-write) is detected and ignored — that unit simply
re-runs, which is safe because completed keys are recorded *after*
their effects are durable.

Resume contract: work keyed identically across runs, with per-key
results that are deterministic functions of the key and the replayed
state, resumes to output bit-identical to an uninterrupted run with
zero duplicated work. The crash-resume parity tests assert exactly
this for the probe runner and the monitor CLI.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.fsutil import atomic_write
from repro.obs import counter, get_logger

_PathLike = Union[str, Path]

_logger = get_logger(__name__)

_RECORDED = counter("journal.records")
_CHECKPOINTS = counter("journal.checkpoints")
_RESUMED_KEYS = counter("journal.resumed_keys")
_TORN_LINES = counter("journal.torn_lines")

#: Sibling-file suffix for the compacted snapshot.
SNAPSHOT_SUFFIX = ".snap"

#: Snapshot document version (bump on incompatible shape changes).
SNAPSHOT_VERSION = 1


class CampaignJournal:
    """Append-only WAL of completed work keys, with atomic snapshots."""

    def __init__(
        self,
        path: _PathLike,
        snapshot_every: int = 256,
        fsync: bool = False,
    ) -> None:
        """Open (or create) the journal at ``path``.

        An existing journal resumes: its snapshot and WAL are loaded
        into :attr:`state` and the completed-key set before the WAL is
        reopened for append.

        Args:
            snapshot_every: auto-checkpoint after this many new records
                (the last provided state is reused); 0 disables
                auto-checkpointing.
            fsync: fsync the WAL after every record — maximal
                durability at real disk-flush cost.

        Raises:
            OSError: when the journal path is unreadable/unwritable.
        """
        if snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0: {snapshot_every}"
            )
        self.path = Path(path)
        self.snapshot_path = Path(str(path) + SNAPSHOT_SUFFIX)
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self._completed: Dict[str, None] = {}  # ordered set
        self._wal_entries: List[Tuple[str, Any]] = []
        self.state: Optional[Dict[str, Any]] = None
        self._since_checkpoint = 0
        self._pending_data = False
        self._load()
        if self._completed:
            _RESUMED_KEYS.inc(len(self._completed))
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- loading ------------------------------------------------------------

    def _load(self) -> None:
        if self.snapshot_path.exists():
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            for key in snapshot.get("keys", ()):
                self._completed[str(key)] = None
            self.state = snapshot.get("state")
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = str(entry["key"])
                except (json.JSONDecodeError, KeyError, TypeError):
                    # A torn final line from a mid-write crash: the unit
                    # was not durably completed, so it will re-run.
                    _TORN_LINES.inc()
                    _logger.warning(
                        "ignoring torn journal line",
                        extra={"ctx": {"path": str(self.path)}},
                    )
                    continue
                if key not in self._completed:
                    data = entry.get("data")
                    self._completed[key] = None
                    self._wal_entries.append((key, data))
                    self._pending_data = self._pending_data or data is not None

    # -- the completed set --------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def completed_keys(self) -> Tuple[str, ...]:
        """Every completed key, in completion order."""
        return tuple(self._completed)

    def replay(self) -> Iterator[Tuple[str, Any]]:
        """Yield ``(key, data)`` for WAL entries after the snapshot.

        Snapshot-covered keys carry their effects inside :attr:`state`;
        only post-snapshot entries need redo, in completion order.
        """
        return iter(list(self._wal_entries))

    # -- writing ------------------------------------------------------------

    def record(self, key: str, data: Any = None) -> None:
        """Durably mark one unit of work complete (idempotent).

        The line is flushed before :meth:`record` returns, so a crash
        afterwards never re-runs the unit. ``data`` is the unit's redo
        payload, handed back by :meth:`replay` on resume.
        """
        if key in self._completed:
            return
        entry: Dict[str, Any] = {"key": key}
        if data is not None:
            entry["data"] = data
        self._handle.write(json.dumps(entry, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._completed[key] = None
        self._wal_entries.append((key, data))
        self._since_checkpoint += 1
        self._pending_data = self._pending_data or data is not None
        _RECORDED.inc()
        # Auto-compaction is only safe for key-only entries: an entry's
        # redo data would be lost if compacted under a stale state, so
        # callers that record data own their checkpoint cadence.
        if (
            self.snapshot_every
            and self._since_checkpoint >= self.snapshot_every
            and not self._pending_data
        ):
            self.checkpoint(self.state)

    def checkpoint(self, state: Optional[Dict[str, Any]] = None) -> None:
        """Compact: atomic snapshot of keys + ``state``, then truncate WAL.

        ``state`` is an opaque JSON-compatible document (e.g. the
        monitor's full history); pass ``None`` to keep the previous
        checkpoint's state. After a checkpoint, :meth:`replay` yields
        nothing — everything is inside the snapshot.
        """
        if state is not None:
            self.state = state
        document = {
            "snapshot_version": SNAPSHOT_VERSION,
            "keys": list(self._completed),
            "state": self.state,
        }
        atomic_write(
            self.snapshot_path,
            json.dumps(document, sort_keys=True) + "\n",
            fsync=self.fsync,
        )
        # Truncate the WAL only after the snapshot is durably in place;
        # a crash in between leaves redundant WAL lines, which replay
        # idempotently into the completed set.
        self._handle.close()
        self._handle = open(self.path, "w", encoding="utf-8")
        self._wal_entries = []
        self._since_checkpoint = 0
        self._pending_data = False
        _CHECKPOINTS.inc()

    def close(self) -> None:
        """Flush and close the WAL handle (idempotent)."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def probe_key(client: str, region: str, timestamp: float) -> str:
    """The canonical journal key for one probe request.

    ``repr`` of the timestamp keeps full float precision, so a resumed
    schedule regenerates byte-identical keys.
    """
    return f"probe|{client}|{region}|{timestamp!r}"


def window_key(window_start: float, window_end: float) -> str:
    """The canonical journal key for one monitor window."""
    return f"window|{window_start!r}|{window_end!r}"
