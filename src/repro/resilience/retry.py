"""Retry policy: exponential backoff, decorrelated jitter, deadlines.

Real measurement infrastructure fails transiently all the time
(Feamster & Livingood), and the classic failure mode of naive retry
loops is the synchronized stampede: every prober retries a struggling
backend at the same instant. :class:`RetryPolicy` replaces the runner's
bare fixed-count loop with the AWS-style *decorrelated jitter*
schedule — each delay is drawn uniformly from ``[base, 3 × previous]``
and capped — which spreads retries out in time while keeping the
expected backoff exponential.

Two budgets bound every campaign:

* a per-probe **attempt budget** (``max_attempts``), after which the
  probe is abandoned; and
* a per-campaign **wall-clock deadline** (``deadline_s``), after which
  the runner stops starting new work entirely — a schedule must never
  outlive its reporting window just because a backend is slow-failing.

Determinism: the jitter stream comes from a seeded ``random.Random``,
so two runs with the same policy draw identical delays — chaos tests
and crash-resume parity depend on this.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional


class Deadline:
    """A wall-clock budget measured from construction time."""

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Args:
            seconds: budget; ``None`` means unbounded (never expires).
            clock: time source (injectable for deterministic tests).
        """
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline must be positive: {seconds}")
        self._clock = clock
        self._started = clock()
        self._seconds = seconds

    @property
    def seconds(self) -> Optional[float]:
        """The configured budget (``None`` = unbounded)."""
        return self._seconds

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left (``None`` = unbounded; never below 0)."""
        if self._seconds is None:
            return None
        return max(0.0, self._seconds - self.elapsed())

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self._seconds is not None and self.elapsed() >= self._seconds


class RetryPolicy:
    """Attempt budget + decorrelated-jitter backoff + campaign deadline.

    The default policy (``base_s=0``) never sleeps, matching the
    historical runner behavior exactly — backoff is opt-in via a
    positive ``base_s``.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_s: float = 0.0,
        cap_s: float = 30.0,
        deadline_s: Optional[float] = None,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Args:
            max_attempts: total tries per probe (1 = no retries).
            base_s: minimum backoff delay; 0 disables sleeping.
            cap_s: upper bound on any single delay.
            deadline_s: per-campaign wall-clock budget (None = none).
            seed: jitter RNG seed (delays are reproducible per policy).
            sleep: sleep function (injectable for tests).
            clock: time source for deadlines (injectable for tests).
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        if base_s < 0:
            raise ValueError(f"base_s must be >= 0: {base_s}")
        if cap_s < base_s:
            raise ValueError(f"cap_s {cap_s} below base_s {base_s}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive: {deadline_s}")
        self.max_attempts = max_attempts
        self.base_s = base_s
        self.cap_s = cap_s
        self.deadline_s = deadline_s
        self.seed = seed
        self.sleep = sleep
        self._clock = clock
        self._rng = random.Random(seed)

    def deadline(self) -> Deadline:
        """Start a fresh campaign deadline (unbounded when unset)."""
        return Deadline(self.deadline_s, clock=self._clock)

    def delays(self) -> Iterator[float]:
        """The backoff-delay stream for one probe's retry sequence.

        Yields ``max_attempts - 1`` delays (one before each retry).
        With ``base_s == 0`` every delay is 0 — retry immediately.
        """
        previous = self.base_s
        for _ in range(self.max_attempts - 1):
            if self.base_s <= 0:
                yield 0.0
                continue
            previous = min(
                self.cap_s, self._rng.uniform(self.base_s, previous * 3)
            )
            yield previous

    def backoff(self, delay: float) -> None:
        """Sleep for one backoff delay (no-op for zero delays)."""
        if delay > 0:
            self.sleep(delay)
