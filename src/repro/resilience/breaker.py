"""Circuit breakers: stop burning the schedule on a dead dataset.

The paper's corroboration story (NDT + Cloudflare + Ookla) only helps
if one dataset going dark doesn't take the campaign down with it. A
:class:`CircuitBreaker` guards one ``(backend, client)`` pair with the
classic three-state machine:

* **closed** — probes flow; failures are counted (consecutive run and
  sliding failure rate);
* **open** — tripped: every probe is short-circuited without touching
  the backend until ``recovery_s`` has elapsed;
* **half-open** — after the cooldown, a limited number of trial probes
  are let through; one success closes the breaker, one failure re-opens
  it (and restarts the cooldown).

A :class:`BreakerBoard` holds one breaker per key and feeds the
``probe.circuit.open`` gauge, so `iqb metrics`, `/healthz`, and the run
manifest all show which datasets are currently black-holed.

Determinism: state transitions depend only on the recorded outcomes and
the injectable ``clock``, so chaos tests drive breakers with a fake
clock and get reproducible trips.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Hashable, Optional, Tuple

from repro.core.exceptions import ProbeError

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(ProbeError):
    """A probe was short-circuited because its circuit is open.

    Carries the breaker key and the cooldown remaining, so the error is
    actionable ("ookla via SimulatedBackend is tripped, retry in 12s")
    rather than a silent skip.
    """

    def __init__(self, key: Hashable, retry_in_s: float) -> None:
        self.key = key
        self.retry_in_s = retry_in_s
        super().__init__(
            f"circuit open for {key!r}: short-circuited, "
            f"next trial probe in {max(0.0, retry_in_s):.1f}s"
        )


class CircuitBreaker:
    """Three-state breaker over one (backend, client) probe stream."""

    def __init__(
        self,
        failure_threshold: int = 5,
        failure_rate_threshold: Optional[float] = None,
        window: int = 20,
        min_calls: int = 10,
        recovery_s: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Args:
            failure_threshold: consecutive failures that trip the
                breaker.
            failure_rate_threshold: optional failure fraction over the
                sliding ``window`` that also trips it (needs at least
                ``min_calls`` outcomes recorded).
            window: sliding-window size for the rate check.
            min_calls: minimum outcomes before the rate check applies.
            recovery_s: cooldown before an open breaker admits trial
                probes (half-open).
            half_open_max: trial probes admitted while half-open.
            clock: time source (injectable for deterministic tests).
        """
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}"
            )
        if failure_rate_threshold is not None and not (
            0.0 < failure_rate_threshold <= 1.0
        ):
            raise ValueError(
                f"failure_rate_threshold outside (0, 1]: "
                f"{failure_rate_threshold}"
            )
        if recovery_s <= 0:
            raise ValueError(f"recovery_s must be positive: {recovery_s}")
        if half_open_max < 1:
            raise ValueError(f"half_open_max must be >= 1: {half_open_max}")
        self.failure_threshold = failure_threshold
        self.failure_rate_threshold = failure_rate_threshold
        self.min_calls = max(1, min_calls)
        self.recovery_s = recovery_s
        self.half_open_max = half_open_max
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._outcomes: Deque[bool] = deque(maxlen=max(window, min_calls))
        self._opened_at = 0.0
        self._half_open_inflight = 0
        #: Lifetime trip count (how many times this breaker opened).
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open after cooldown."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_s
        ):
            self._state = HALF_OPEN
            self._half_open_inflight = 0
        return self._state

    def retry_in_s(self) -> float:
        """Seconds until an open breaker admits its next trial probe."""
        if self.state != OPEN:
            return 0.0
        return self.recovery_s - (self._clock() - self._opened_at)

    def allow(self) -> bool:
        """Whether the next probe may proceed (admits half-open trials)."""
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._half_open_inflight < self.half_open_max:
                self._half_open_inflight += 1
                return True
            return False
        return False

    def record_success(self) -> None:
        """One probe succeeded: closes a half-open breaker."""
        self._consecutive_failures = 0
        self._outcomes.append(True)
        if self._state == HALF_OPEN:
            self._state = CLOSED
            self._half_open_inflight = 0

    def record_failure(self) -> None:
        """One probe failed: may trip (or re-open) the breaker."""
        self._consecutive_failures += 1
        self._outcomes.append(False)
        if self._state == HALF_OPEN:
            self._trip()
            return
        if self._state != CLOSED:
            return
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()
            return
        if (
            self.failure_rate_threshold is not None
            and len(self._outcomes) >= self.min_calls
        ):
            failures = sum(1 for ok in self._outcomes if not ok)
            if failures / len(self._outcomes) >= self.failure_rate_threshold:
                self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._half_open_inflight = 0
        self.trips += 1


class BreakerBoard:
    """One :class:`CircuitBreaker` per (backend, client) key.

    Breakers are created lazily with the board's shared settings; the
    board is the unit the runner consults, and :meth:`open_count` /
    :meth:`states` are what telemetry reads.
    """

    def __init__(self, **breaker_kwargs: object) -> None:
        """Args:
            **breaker_kwargs: forwarded to every lazily created
                :class:`CircuitBreaker` (thresholds, recovery, clock).
        """
        self._kwargs = breaker_kwargs
        self._breakers: Dict[Hashable, CircuitBreaker] = {}

    def breaker(self, key: Hashable) -> CircuitBreaker:
        """The breaker guarding ``key`` (created closed on first use)."""
        existing = self._breakers.get(key)
        if existing is None:
            existing = CircuitBreaker(**self._kwargs)  # type: ignore[arg-type]
            self._breakers[key] = existing
        return existing

    def check(self, key: Hashable) -> None:
        """Raise :class:`BreakerOpenError` unless ``key`` may probe."""
        guard = self.breaker(key)
        if not guard.allow():
            raise BreakerOpenError(key, guard.retry_in_s())

    def open_count(self) -> int:
        """How many breakers are currently open (excludes half-open)."""
        return sum(
            1 for guard in self._breakers.values() if guard.state == OPEN
        )

    def states(self) -> Dict[Tuple, str]:
        """Current state per key (for manifests and debugging)."""
        return {
            key if isinstance(key, tuple) else (key,): guard.state
            for key, guard in sorted(
                self._breakers.items(), key=lambda kv: str(kv[0])
            )
        }

    def __len__(self) -> int:
        return len(self._breakers)
