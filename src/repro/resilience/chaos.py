"""Seeded fault injection: chaos wrappers for backends and sinks.

The resilience layer is only trustworthy if its failure paths are
*exercised*, not just written. :class:`ChaosBackend` wraps any
:class:`~repro.probing.backends.MeasurementBackend` and injects the
failure modes real measurement infrastructure exhibits:

* **error bursts** — consecutive :class:`~repro.core.exceptions.\
  BackendError` runs (an unreachable test server fails every probe for
  a while, not one probe in isolation);
* **latency stalls** — a probe that eventually succeeds but only after
  a stall (drives retry-budget and deadline logic);
* **corrupt records** — a measurement that arrives with every metric
  stripped (a test that "completed" but carried no usable data; feeds
  degraded-mode scoring).

:class:`ChaosSink` wraps any sink and injects ``OSError`` write
failures (a full disk, a dropped pipe).

:class:`ChaosRemote` wraps any :class:`~repro.cache.remote.Remote` and
injects the transfer-level faults a cache pull meets in the wild —
truncated bodies, bit-flipped chunks, mid-transfer connection resets,
and 5xx error bursts — which is how the cache's convergence contract
("a verified artifact or a loud, quarantined failure; never a wrong
byte served") is property-tested across hundreds of fault schedules.

Everything is driven by one seeded ``random.Random`` per wrapper, so a
chaos schedule is a pure function of ``(seed, call sequence)`` — the
chaos suite asserts exact outcomes, not flaky probabilities. Stalls are
*simulated* by default (the injected delay is recorded, no wall-clock
sleep), keeping the suite fast; pass a real ``sleep`` to actually stall.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.exceptions import BackendError
from repro.measurements.record import Measurement
from repro.obs import counter

if TYPE_CHECKING:
    # Annotation-only: importing repro.probing at runtime would cycle
    # (probing.adaptive imports repro.resilience).
    from repro.probing.backends import MeasurementBackend, ProbeRequest
    from repro.probing.sinks import ResultSink

_BURST_FAILURES = counter("chaos.backend.failures")
_STALLS = counter("chaos.backend.stalls")
_CORRUPTED = counter("chaos.backend.corrupted")
_SINK_FAILURES = counter("chaos.sink.failures")


@dataclass(frozen=True)
class ChaosConfig:
    """Fault-injection rates for one chaos wrapper (all off by default)."""

    seed: int = 0
    #: Probability a probe starts a BackendError burst.
    failure_rate: float = 0.0
    #: Consecutive probes each burst fails (>= 1).
    burst_length: int = 1
    #: Probability a successful probe is stalled first.
    stall_rate: float = 0.0
    #: Injected stall duration (seconds).
    stall_s: float = 0.05
    #: Probability a successful probe returns a metric-stripped record.
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("failure_rate", "stall_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} outside [0, 1]: {value}")
        if self.burst_length < 1:
            raise ValueError(
                f"burst_length must be >= 1: {self.burst_length}"
            )
        if self.stall_s < 0:
            raise ValueError(f"stall_s must be >= 0: {self.stall_s}")


def strip_metrics(measurement: Measurement) -> Measurement:
    """The 'corrupt record' fault: same identity, every metric gone.

    Corruption violates invariants by definition, so the record is built
    around ``Measurement.__post_init__`` (which would reject an
    all-``None`` record): in memory it contributes to no quantile, so a
    fully corrupted dataset vanishes from every Eq. 1 verdict and
    surfaces via degraded-mode scoring; serialized and re-read, it fails
    schema validation — both realistic downstream symptoms.
    """
    corrupt = object.__new__(Measurement)
    for spec in dataclasses.fields(Measurement):
        object.__setattr__(corrupt, spec.name, getattr(measurement, spec.name))
    for name in ("download_mbps", "upload_mbps", "latency_ms", "packet_loss"):
        object.__setattr__(corrupt, name, None)
    return corrupt


class ChaosBackend:
    """A :class:`MeasurementBackend` wrapper injecting seeded faults."""

    def __init__(
        self,
        inner: MeasurementBackend,
        config: ChaosConfig,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Args:
            inner: the real backend probes are delegated to.
            config: fault rates (seeded; deterministic per call order).
            sleep: how stalls are realized; ``None`` records the stall
                in :attr:`stalled_s` without sleeping (fast tests).
        """
        self.inner = inner
        self.config = config
        self._sleep = sleep
        self._rng = random.Random(config.seed)
        self._burst_remaining = 0
        #: Total injected stall time (seconds), slept or simulated.
        self.stalled_s = 0.0
        #: Injected fault counts, by kind.
        self.injected_failures = 0
        self.injected_stalls = 0
        self.injected_corruptions = 0

    @property
    def name(self) -> str:
        """The inner backend's stable name.

        Breaker keys are derived from the backend name, so interposing
        chaos must not re-key (and thereby reset) the circuit state.
        """
        return str(
            getattr(self.inner, "name", type(self.inner).__name__)
        )

    def regions(self):
        return self.inner.regions()

    def clients(self):
        return self.inner.clients()

    def run(self, request: ProbeRequest) -> Measurement:
        """Delegate one probe, possibly injecting a fault first.

        Raises:
            BackendError: for injected burst failures (and whatever the
                inner backend raises on its own).
        """
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            self._fail(request)
        elif (
            self.config.failure_rate > 0
            and self._rng.random() < self.config.failure_rate
        ):
            self._burst_remaining = self.config.burst_length - 1
            self._fail(request)
        if (
            self.config.stall_rate > 0
            and self._rng.random() < self.config.stall_rate
        ):
            self.injected_stalls += 1
            self.stalled_s += self.config.stall_s
            _STALLS.inc()
            if self._sleep is not None:
                self._sleep(self.config.stall_s)
        measurement = self.inner.run(request)
        if (
            self.config.corrupt_rate > 0
            and self._rng.random() < self.config.corrupt_rate
        ):
            self.injected_corruptions += 1
            _CORRUPTED.inc()
            return strip_metrics(measurement)
        return measurement

    def _fail(self, request: ProbeRequest) -> None:
        self.injected_failures += 1
        _BURST_FAILURES.inc()
        raise BackendError(
            f"chaos: injected failure running {request.client} in "
            f"{request.region} at t={request.timestamp:.0f}"
        )


@dataclass(frozen=True)
class ChaosRemoteConfig:
    """Fault-injection rates for one chaos remote (all off by default).

    The four fault kinds are the cache-transfer vocabulary:

    * **truncation** — the body stops short (a dropped connection after
      partial delivery; exercises ranged resume);
    * **bit flips** — the body arrives complete but wrong (a mangling
      proxy or flaky disk; exercises digest gating + quarantine);
    * **resets** — the transfer dies delivering nothing (exercises
      plain retry);
    * **5xx bursts** — consecutive server-side errors (an origin
      falling over for a while; exercises backoff and the breaker).
    """

    seed: int = 0
    #: Probability a fetch's body is truncated (at least 1 byte lost).
    truncate_rate: float = 0.0
    #: Probability one byte of a fetch's body is bit-flipped.
    bitflip_rate: float = 0.0
    #: Probability a fetch raises a connection reset (no bytes).
    reset_rate: float = 0.0
    #: Probability a call starts a 5xx burst.
    error_rate: float = 0.0
    #: Consecutive calls each 5xx burst fails (>= 1).
    error_burst: int = 1
    #: Whether manifest fetches are also faulted (artifact fetches
    #: always are). Manifest corruption is detected by the manifest's
    #: own signature, so enabling this exercises that gate too.
    fault_manifest: bool = True

    def __post_init__(self) -> None:
        for name in (
            "truncate_rate",
            "bitflip_rate",
            "reset_rate",
            "error_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} outside [0, 1]: {value}")
        if self.error_burst < 1:
            raise ValueError(f"error_burst must be >= 1: {self.error_burst}")


_REMOTE_TRUNCATED = counter("chaos.remote.truncated")
_REMOTE_BITFLIPS = counter("chaos.remote.bitflips")
_REMOTE_RESETS = counter("chaos.remote.resets")
_REMOTE_ERRORS = counter("chaos.remote.errors")


class ChaosRemote:
    """A cache :class:`~repro.cache.remote.Remote` wrapper injecting
    seeded transfer faults.

    Wraps the *read path* (``fetch_manifest`` / ``fetch``) and the
    write path (``put``); ``exists`` passes through untouched. One
    seeded RNG drives every draw, so a fault schedule is a pure
    function of ``(seed, call sequence)`` — the chaos suite asserts
    exact convergence outcomes across seeds, not probabilities.
    """

    def __init__(self, inner: "object", config: ChaosRemoteConfig) -> None:
        """Args:
            inner: the real remote (any object with the Remote verbs).
            config: fault rates (seeded; deterministic per call order).
        """
        # Annotation is loose ("object") because importing repro.cache
        # here would invert the layering (cache builds on resilience).
        self.inner = inner
        self.config = config
        self._rng = random.Random(config.seed)
        self._burst_remaining = 0
        #: Injected fault counts, by kind.
        self.injected_truncations = 0
        self.injected_bitflips = 0
        self.injected_resets = 0
        self.injected_errors = 0

    @property
    def name(self) -> str:
        """The inner remote's stable name (breaker keys must not re-key)."""
        return str(getattr(self.inner, "name", type(self.inner).__name__))

    def _server_fault(self) -> None:
        """Raise an injected 5xx (possibly continuing a burst)."""
        from repro.core.exceptions import RemoteError

        if self._burst_remaining > 0:
            self._burst_remaining -= 1
        elif (
            self.config.error_rate > 0
            and self._rng.random() < self.config.error_rate
        ):
            self._burst_remaining = self.config.error_burst - 1
        else:
            return
        self.injected_errors += 1
        _REMOTE_ERRORS.inc()
        raise RemoteError("chaos: injected HTTP 503 from remote")

    def _reset_fault(self) -> None:
        from repro.core.exceptions import RemoteError

        if (
            self.config.reset_rate > 0
            and self._rng.random() < self.config.reset_rate
        ):
            self.injected_resets += 1
            _REMOTE_RESETS.inc()
            raise RemoteError("chaos: connection reset mid-transfer")

    def _mangle_body(self, body: bytes) -> bytes:
        """Apply truncation / bit-flip faults to a fetched body."""
        if (
            body
            and self.config.truncate_rate > 0
            and self._rng.random() < self.config.truncate_rate
        ):
            self.injected_truncations += 1
            _REMOTE_TRUNCATED.inc()
            body = body[: self._rng.randrange(0, len(body))]
        if (
            body
            and self.config.bitflip_rate > 0
            and self._rng.random() < self.config.bitflip_rate
        ):
            self.injected_bitflips += 1
            _REMOTE_BITFLIPS.inc()
            index = self._rng.randrange(0, len(body))
            flipped = body[index] ^ (1 << self._rng.randrange(0, 8))
            body = body[:index] + bytes((flipped,)) + body[index + 1 :]
        return body

    def fetch_manifest(self) -> bytes:
        if self.config.fault_manifest:
            self._server_fault()
            self._reset_fault()
            return self._mangle_body(self.inner.fetch_manifest())
        return self.inner.fetch_manifest()

    def fetch(self, rel_path: str, offset: int = 0) -> bytes:
        self._server_fault()
        self._reset_fault()
        return self._mangle_body(self.inner.fetch(rel_path, offset))

    def put(self, rel_path: str, payload: bytes) -> None:
        self._server_fault()
        self._reset_fault()
        self.inner.put(rel_path, payload)

    def exists(self, rel_path: str) -> bool:
        return self.inner.exists(rel_path)


class ChaosSink:
    """A :class:`ResultSink` wrapper injecting seeded write failures."""

    def __init__(self, inner: ResultSink, seed: int = 0,
                 failure_rate: float = 0.0) -> None:
        """Args:
            inner: the real sink accepted measurements go to.
            failure_rate: probability one ``accept`` raises ``OSError``.
        """
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate outside [0, 1]: {failure_rate}")
        self.inner = inner
        self.failure_rate = failure_rate
        self._rng = random.Random(seed)
        self.injected_failures = 0

    def accept(self, measurement: Measurement) -> None:
        """Forward one measurement, or raise an injected ``OSError``."""
        if self.failure_rate > 0 and self._rng.random() < self.failure_rate:
            self.injected_failures += 1
            _SINK_FAILURES.inc()
            raise OSError("chaos: injected sink write failure")
        self.inner.accept(measurement)
