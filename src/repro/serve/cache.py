"""Generation-keyed LRU score cache + single-flight request coalescing.

The two perf primitives under the serving layer:

* :class:`ScoreCache` — a thread-safe LRU over *immutable* scoring
  results keyed by ``(query shape, config digest, plane generation)``.
  There is no TTL and no explicit invalidation: ingest bumps the
  plane's generation stamp (see
  :attr:`~repro.measurements.columnar.ColumnarStore.generation`), so a
  stale entry simply stops being looked up and ages out of the LRU.
  Invalidation correctness costs one integer compare per request.

* :class:`SingleFlight` — collapses concurrent cache misses for the
  same key onto one in-flight compute. The first caller (the *leader*)
  runs the compute; every other caller for that key (a *follower*)
  blocks on the leader's event and shares the result — or the raised
  exception, so an error is reported to everyone who asked, once
  computed. N identical misses cost one kernel sweep, not N.

Metrics: ``serve.cache.hits`` / ``serve.cache.misses`` /
``serve.cache.evictions`` on the cache, ``serve.coalesced`` per
follower that piggybacked on a leader's compute.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.obs.registry import counter

_HITS = counter("serve.cache.hits")
_MISSES = counter("serve.cache.misses")
_EVICTIONS = counter("serve.cache.evictions")
_COALESCED = counter("serve.coalesced")

#: get() sentinel — cached values themselves are never None.
_ABSENT = object()


class ScoreCache:
    """Bounded thread-safe LRU for generation-stamped scoring results.

    Values must be treated as immutable by callers (they are handed
    out to concurrent readers). ``maxsize`` bounds the *count* of
    retained results — breakdown trees for a few hundred regions run
    to megabytes, so the bound is what keeps a long-lived server from
    accreting one result set per ingest batch forever.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1: {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value, refreshed to most-recently-used; else None."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is not _ABSENT:
                self._entries.move_to_end(key)
                _HITS.inc()
                return value
        _MISSES.inc()
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting LRU past ``maxsize``."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                _EVICTIONS.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class _InFlight:
    """One leader's pending compute: followers wait on ``done``."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Per-key duplicate-call suppression for concurrent computes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: Dict[Hashable, _InFlight] = {}

    def run(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, led)`` — run ``compute`` once per concurrent key.

        ``led`` is True for the caller whose ``compute`` actually ran.
        Followers re-raise the leader's exception, so one failing
        sweep fails the whole burst identically. Results are *not*
        retained past the in-flight window — pairing with
        :class:`ScoreCache` is what makes repeats cheap.
        """
        with self._lock:
            flight = self._pending.get(key)
            if flight is None:
                flight = _InFlight()
                self._pending[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            _COALESCED.inc()
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, False
        try:
            flight.result = compute()
            return flight.result, True
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._pending.pop(key, None)
            flight.done.set()
