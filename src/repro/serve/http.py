"""The ``/v1`` query endpoints: scoring-as-a-service over HTTP.

:class:`ServeServer` extends the telemetry endpoint
(:class:`~repro.obs.httpd.TelemetryServer` — which keeps serving
``/metrics``, ``/healthz``, ``/slo``, ``/quality``) with the read-only
query API backed by a :class:`~repro.serve.service.ScoringService`:

=========================  ==============================================
``GET /v1/scores``         every region's composite ``S_IQB``
``GET /v1/scores/<region>`` one region's full use-case breakdown
``GET /v1/national``       the population-weighted national rollup
``GET /v1/config``         the served scoring config + its digest
=========================  ==============================================

Score responses carry a strong ``ETag`` built from the config digest
and the plane generation (``"<digest12>-<generation>"``). A client
replaying it via ``If-None-Match`` gets ``304 Not Modified`` **iff**
the generation is unchanged — the conditional check is a string
compare against the current stamp, so polling dashboards cost nothing
between ingests.

Per-region paths are accounted under the ``/v1/scores/:region`` route
label (one metric series, not one per region), and every endpoint
inherits the handler's 500-JSON error boundary, per-endpoint
latency timers, and drain-aware shutdown.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple
from urllib.parse import unquote

from repro.core.exceptions import DataError
from repro.obs.health import HealthMonitor
from repro.obs.httpd import (
    JSON_CONTENT_TYPE,
    Response,
    TelemetryServer,
    json_response,
)
from repro.obs.registry import MetricsRegistry

from .service import ScoringService

#: Route label for every concrete /v1/scores/<region> path.
REGION_ROUTE = "/v1/scores/:region"

_SCORES_PREFIX = "/v1/scores/"


class ServeServer(TelemetryServer):
    """The ``iqb serve`` listener: telemetry + the /v1 query API."""

    V1_ROUTES: Tuple[str, ...] = (
        "/v1/scores",
        REGION_ROUTE,
        "/v1/national",
        "/v1/config",
    )

    def __init__(
        self,
        service: ScoringService,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stalled_after_s: Optional[float] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        super().__init__(
            registry=registry,
            host=host,
            port=port,
            stalled_after_s=stalled_after_s,
            health=health,
        )
        self.service = service

    # -- routing ------------------------------------------------------------

    def routes(self) -> Tuple[str, ...]:
        return self.V1_ROUTES + self.BASE_ROUTES

    def route_label(self, path: str) -> str:
        if path.startswith(_SCORES_PREFIX) and path != _SCORES_PREFIX:
            return REGION_ROUTE
        return super().route_label(path)

    def dispatch(self, path: str, headers: Mapping[str, str]) -> Response:
        if path == "/v1/scores":
            return self._scores(headers)
        if path.startswith(_SCORES_PREFIX) and path != _SCORES_PREFIX:
            region = unquote(path[len(_SCORES_PREFIX):])
            return self._region(region, headers)
        if path == "/v1/national":
            return self._national(headers)
        if path == "/v1/config":
            return self._config(headers)
        return super().dispatch(path, headers)

    # -- conditional-GET plumbing -------------------------------------------

    @staticmethod
    def _matches(headers: Mapping[str, str], etag: str) -> bool:
        """True when If-None-Match names ``etag`` (or ``*``)."""
        raw = headers.get("If-None-Match")
        if not raw:
            return False
        for candidate in raw.split(","):
            token = candidate.strip()
            if token.startswith("W/"):
                token = token[2:]
            if token == etag or token == "*":
                return True
        return False

    def _not_modified(self, etag: str, route: str) -> Response:
        return Response(
            304, JSON_CONTENT_TYPE, "", {"ETag": etag}, route
        )

    def _no_data(self, route: str) -> Response:
        return json_response(
            503,
            {
                "error": "no measurements ingested yet; retry later",
                "generation": self.service.generation,
            },
            route,
            {"Retry-After": "1"},
        )

    # -- /v1 endpoints -------------------------------------------------------

    def _scores(self, headers: Mapping[str, str]) -> Response:
        route = "/v1/scores"
        current = self.service.etag()
        if self._matches(headers, current):
            return self._not_modified(current, route)
        if self.service.empty:
            return self._no_data(route)
        result = self.service.scores()
        etag = self.service.etag(result.generation)
        document = {
            "generation": result.generation,
            "config_sha256": self.service.config_sha256,
            "quantiles": result.quantile_source,
            "regions": dict(sorted(result.values.items())),
        }
        return json_response(200, document, route, {"ETag": etag})

    def _region(
        self, region: str, headers: Mapping[str, str]
    ) -> Response:
        route = REGION_ROUTE
        current = self.service.etag()
        if self._matches(headers, current):
            return self._not_modified(current, route)
        if self.service.empty:
            return self._no_data(route)
        try:
            generation, breakdown = self.service.breakdown(region)
        except KeyError:
            return json_response(
                404,
                {
                    "error": f"unknown region: {region}",
                    "generation": self.service.generation,
                },
                route,
            )
        etag = self.service.etag(generation)
        document = {
            "generation": generation,
            "config_sha256": self.service.config_sha256,
            "region": region,
            "breakdown": breakdown.to_dict(),
        }
        return json_response(200, document, route, {"ETag": etag})

    def _national(self, headers: Mapping[str, str]) -> Response:
        route = "/v1/national"
        current = self.service.etag()
        if self._matches(headers, current):
            return self._not_modified(current, route)
        if self.service.empty:
            return self._no_data(route)
        try:
            result = self.service.national()
        except DataError as exc:
            # A population table that does not cover the scored
            # regions is a client-visible config problem, not a crash.
            return json_response(
                422,
                {
                    "error": str(exc),
                    "generation": self.service.generation,
                },
                route,
            )
        rollup = result.national
        etag = self.service.etag(result.generation)
        document = {
            "generation": result.generation,
            "config_sha256": self.service.config_sha256,
            "national": rollup.value,
            "shortfall": rollup.shortfall,
            "regions": [
                {
                    "region": share.region,
                    "score": share.score,
                    "population": share.population,
                    "weight": share.weight,
                    "shortfall_contribution": share.shortfall_contribution,
                }
                for share in rollup.ranked_by_shortfall()
            ],
        }
        return json_response(200, document, route, {"ETag": etag})

    def _config(self, headers: Mapping[str, str]) -> Response:
        route = "/v1/config"
        # The config never changes for a server's lifetime; its ETag
        # is the digest alone (generation-independent on purpose).
        etag = f'"{self.service.config_sha256}"'
        if self._matches(headers, etag):
            return self._not_modified(etag, route)
        return json_response(
            200, self.service.config_document(), route, {"ETag": etag}
        )
