"""The scoring service: cached, coalesced queries over a live plane.

:class:`ScoringService` is the engine behind ``iqb serve`` — it owns
one measurement plane (a
:class:`~repro.measurements.columnar.ColumnarStore` or a
:class:`~repro.measurements.sketchplane.SketchPlane`), one scoring
config, and answers the query shapes the HTTP layer exposes:

* :meth:`scores`     — every region's composite ``S_IQB`` (the
  ``score_values`` scores-only fast path);
* :meth:`breakdowns` / :meth:`breakdown` — full per-region
  :class:`~repro.core.scoring.ScoreBreakdown` trees, bit-identical to
  ``iqb score --json`` on the same plane state (both run
  :func:`~repro.core.scoring.score_regions`);
* :meth:`national`   — the population-weighted rollup;
* :meth:`ingest`     — append measurements, which is what invalidates.

Consistency model
-----------------

Every result is stamped with the plane generation it was computed
from. One plane lock serializes ingest against cache-miss computes:
``append`` bumps the generation only after the plane is fully
consistent, and a compute re-reads the generation *inside* the lock,
so a stamped result can never reflect a partially-appended batch.
Cache hits take no lock at all — the steady-state read path is a dict
lookup.

A burst of concurrent misses for the same (shape, digest, generation)
key single-flights onto one kernel sweep; per-region breakdown
requests share one ``score_regions`` sweep through the breakdown
cache, so N regions × M clients still cost one compute per
generation. An optional batch window makes the leader linger before
sweeping so stragglers of the same burst coalesce instead of missing
the flight.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.analysis.national import NationalScore, national_score
from repro.core.config import IQBConfig, QuantileMode
from repro.core.scoring import (
    KERNELS,
    QUANTILE_SOURCES,
    ScoreBreakdown,
    effective_modes,
    score_regions,
)
from repro.obs.manifest import config_digest
from repro.obs.registry import counter

from .cache import ScoreCache, SingleFlight

_SWEEPS = counter("serve.compute.sweeps")


@dataclass(frozen=True)
class ScoresResult:
    """One generation's composite scores (the /v1/scores payload)."""

    generation: int
    values: Mapping[str, float]
    quantile_source: str


@dataclass(frozen=True)
class BreakdownsResult:
    """One generation's full breakdown trees."""

    generation: int
    regions: Mapping[str, ScoreBreakdown]


@dataclass(frozen=True)
class NationalResult:
    """One generation's national rollup."""

    generation: int
    national: NationalScore


class ScoringService:
    """Query engine over one plane: generation-cached, single-flighted.

    Args:
        store: the measurement plane — a ``ColumnarStore`` (exact,
            optionally with an attached sketch plane) or a bare
            ``SketchPlane`` (streaming-only).
        config: the scoring configuration (fixed for the service's
            lifetime; its digest is half of the ETag).
        populations: region → population for :meth:`national`;
            ``None`` weighs every scored region equally.
        kernel: ``"vectorized"`` (default) or ``"exact"`` — same
            semantics as ``score_regions``.
        quantiles: global quantile-plane override (``"exact"`` /
            ``"sketch"`` / ``None`` = follow the config policy).
        workers: forwarded to ``score_regions`` for breakdown sweeps.
        cache_size: LRU bound on retained results (each entry is a
            whole sweep's output; breakdown trees dominate memory).
        batch_window_s: how long a cache-miss leader waits before
            sweeping, so a request burst lands on one compute. 0
            (default) sweeps immediately.
    """

    def __init__(
        self,
        store: "object",
        config: IQBConfig,
        populations: Optional[Mapping[str, float]] = None,
        kernel: str = "vectorized",
        quantiles: Optional[str] = None,
        workers: int = 1,
        cache_size: int = 64,
        batch_window_s: float = 0.0,
    ) -> None:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown scoring kernel: {kernel!r} (have {KERNELS})"
            )
        if quantiles is not None and quantiles not in QUANTILE_SOURCES:
            raise ValueError(
                f"unknown quantile source: {quantiles!r} "
                f"(have {QUANTILE_SOURCES})"
            )
        native = getattr(store, "QUANTILE_SOURCE", "exact")
        if native == "sketch" and quantiles == "exact":
            raise ValueError(
                "a sketch plane carries no exact quantile plane; serve "
                "the raw records to use quantiles='exact'"
            )
        self._store = store
        self._config = config
        self._populations = (
            dict(populations) if populations is not None else None
        )
        self._kernel = kernel
        self._quantiles = quantiles
        self._workers = workers
        self._batch_window_s = float(batch_window_s)
        self.config_sha256 = config_digest(config)
        if native == "sketch":
            # A bare sketch plane is its own (only) quantile source;
            # score_values resolves the native cube with modes=None.
            self._modes: Optional[Tuple[QuantileMode, ...]] = None
            self._source = "sketch"
        else:
            self._modes = effective_modes(config, quantiles)
            if all(m is QuantileMode.EXACT for m in self._modes):
                self._source = "exact"
            elif all(m is QuantileMode.SKETCH for m in self._modes):
                self._source = "sketch"
            else:
                self._source = "mixed"
        # One lock orders ingest against cache-miss computes: a sweep
        # holding it sees either none or all of any appended batch.
        self._plane_lock = threading.Lock()
        self._cache = ScoreCache(maxsize=cache_size)
        self._flight = SingleFlight()

    # -- plane state --------------------------------------------------------

    @property
    def generation(self) -> int:
        """The plane's current change stamp."""
        return int(self._store.generation)

    @property
    def empty(self) -> bool:
        """True while the plane holds no measurements."""
        return len(self._store) == 0

    def etag(self, generation: Optional[int] = None) -> str:
        """The (strong) entity tag for one generation's results.

        ``"<config digest prefix>-<generation>"`` — changes iff the
        config or the plane does, which is exactly when any cached
        representation goes stale.
        """
        stamp = self.generation if generation is None else generation
        return f'"{self.config_sha256[:12]}-{stamp}"'

    def ingest(self, records: Iterable["object"]) -> int:
        """Append measurements to the plane; returns records added.

        Runs under the plane lock, so no concurrent sweep observes a
        half-appended batch; the generation bump (inside ``append`` /
        per ``add``) is what retires every cached result.
        """
        batch = records if isinstance(records, list) else list(records)
        if not batch:
            return 0
        with self._plane_lock:
            append = getattr(self._store, "append", None)
            if append is not None:
                append(batch)
            else:
                self._store.extend(batch)
        return len(batch)

    # -- the cached sweep core ----------------------------------------------

    def _sweep(self, shape: str, compute_locked):
        """Serve one query shape: cache → single-flight → locked compute.

        ``compute_locked(generation)`` runs under the plane lock with
        the *re-read* generation and must return a result stamped with
        it. The result is cached under the generation it was computed
        from — not the (possibly stale) one the request observed — so
        a result can only ever be served for the plane state it
        actually reflects.
        """
        observed = self.generation
        key = (shape, self.config_sha256, observed)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        def leader():
            if self._batch_window_s > 0.0:
                # Let the rest of the burst pile onto this flight
                # before paying for the sweep once.
                time.sleep(self._batch_window_s)
            with self._plane_lock:
                fresh = self.generation
                result = compute_locked(fresh)
            self._cache.put((shape, self.config_sha256, fresh), result)
            return result

        result, _led = self._flight.run(key, leader)
        return result

    # -- query shapes --------------------------------------------------------

    def scores(self) -> ScoresResult:
        """Every region's composite score at the current generation."""

        def compute(generation: int) -> ScoresResult:
            _SWEEPS.inc()
            if self._kernel == "exact":
                # The scalar kernel has no scores-only path; reuse the
                # full sweep and project (still one compute per
                # generation thanks to the cache + single-flight).
                scored = score_regions(
                    self._store,
                    self._config,
                    workers=self._workers,
                    kernel=self._kernel,
                    quantiles=self._quantiles,
                )
                values = {
                    region: breakdown.value
                    for region, breakdown in scored.items()
                }
            else:
                from repro.core.kernel import score_values

                values = score_values(
                    self._store, self._config, modes=self._modes
                )
            return ScoresResult(
                generation=generation,
                values=values,
                quantile_source=self._source,
            )

        return self._sweep("values", compute)

    def breakdowns(self) -> BreakdownsResult:
        """Full breakdown trees, bit-identical to ``iqb score --json``."""

        def compute(generation: int) -> BreakdownsResult:
            _SWEEPS.inc()
            scored = score_regions(
                self._store,
                self._config,
                workers=self._workers,
                kernel=self._kernel,
                quantiles=self._quantiles,
            )
            return BreakdownsResult(generation=generation, regions=scored)

        return self._sweep("breakdowns", compute)

    def breakdown(self, region: str) -> Tuple[int, ScoreBreakdown]:
        """One region's breakdown off the shared per-generation sweep.

        A burst of per-region requests is answered by a single
        ``score_regions`` sweep — this is the batch-window payoff.

        Raises:
            KeyError: when the region is not in the plane.
        """
        result = self.breakdowns()
        return result.generation, result.regions[region]

    def national(self) -> NationalResult:
        """The population-weighted rollup at the current generation.

        Rides the :meth:`scores` sweep (scores-only values are all
        Eq. 5 needs); with no population table every region weighs the
        same, which is the honest default for fixture campaigns.
        """
        scores = self.scores()

        def compute(generation: int) -> NationalResult:
            populations = self._populations
            if populations is None:
                populations = {region: 1.0 for region in scores.values}
            rollup = national_score(scores.values, populations)
            return NationalResult(
                generation=scores.generation, national=rollup
            )

        # Cheap relative to a kernel sweep, but cached so repeated
        # polls are dict lookups; keyed by the scores result's own
        # stamp (not a re-read) to stay consistent with it.
        observed = scores.generation
        key = ("national", self.config_sha256, observed)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = compute(observed)
        self._cache.put(key, result)
        return result

    def config_document(self) -> Dict[str, object]:
        """The /v1/config payload: digest, knobs, and the config."""
        return {
            "config_sha256": self.config_sha256,
            "kernel": self._kernel,
            "quantiles": self._quantiles,
            "quantile_source": self._source,
            "workers": self._workers,
            "cache_size": self._cache.maxsize,
            "batch_window_s": self._batch_window_s,
            "config": json.loads(self._config.to_json()),
        }
