"""Scoring-as-a-service: the barometer's public query front door.

The ROADMAP's "serves heavy traffic from millions of users" layer —
``iqb serve`` promotes the read-only telemetry endpoint into a
long-lived scoring service over a live measurement plane:

* :mod:`.cache`   — the generation-keyed LRU score cache and the
  single-flight coalescer (N concurrent identical misses → 1 sweep);
* :mod:`.service` — :class:`ScoringService`: cached/coalesced
  ``scores`` / ``breakdowns`` / ``national`` query shapes over one
  ColumnarStore or SketchPlane, invalidated by ingest via the plane's
  generation stamp;
* :mod:`.http`    — :class:`ServeServer`: the ``/v1`` endpoints with
  ETag/If-None-Match conditional GETs, layered on the telemetry
  server's routing, error boundary, and per-endpoint metrics.

Layering: serve sits above core, measurements, analysis, and obs —
nothing below imports it.
"""

from __future__ import annotations

from .cache import ScoreCache, SingleFlight
from .http import REGION_ROUTE, ServeServer
from .service import (
    BreakdownsResult,
    NationalResult,
    ScoresResult,
    ScoringService,
)

__all__ = [
    "BreakdownsResult",
    "NationalResult",
    "REGION_ROUTE",
    "ScoreCache",
    "ScoresResult",
    "ScoringService",
    "ServeServer",
    "SingleFlight",
]
