"""repro: a full reproduction of the Internet Quality Barometer (IQB).

Reproduces "Poster: The Internet Quality Barometer Framework"
(Measurement Lab, IMC 2025): the three-tier framework (use cases →
network requirements → datasets), the published thresholds (Fig. 2) and
weights (Table 1), the 95th-percentile aggregation rule, and the IQB
score formulas (Eqs. 1-5) — plus the substrates a real deployment
needs: dataset simulators for NDT/Cloudflare/Ookla methodologies, a
probing framework, QoE ground-truth models, baselines, and analysis
tooling. See DESIGN.md for the system inventory and EXPERIMENTS.md for
the paper-vs-measured record.

Quickstart::

    from repro import IQBFramework
    from repro.netsim import region_preset, simulate_region

    framework = IQBFramework()                  # paper defaults
    records = simulate_region(region_preset("metro-fiber"), seed=42)
    breakdown = framework.score_measurements(records, "metro-fiber")
    print(breakdown.value, breakdown.grade)
"""

from .core import (
    IQBConfig,
    IQBFramework,
    Metric,
    QualityLevel,
    ScoreBreakdown,
    UseCase,
    paper_config,
    score_region,
    score_regions,
)
from .measurements import ColumnarStore, Measurement, MeasurementSet

__version__ = "1.0.0"

__all__ = [
    "ColumnarStore",
    "IQBConfig",
    "IQBFramework",
    "Measurement",
    "MeasurementSet",
    "Metric",
    "QualityLevel",
    "ScoreBreakdown",
    "UseCase",
    "__version__",
    "paper_config",
    "score_region",
    "score_regions",
]
