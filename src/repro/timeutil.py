"""Shared clock arithmetic.

POSIX-second timestamps are the one time representation used across the
project (records, schedules, simulation); these helpers are the single
source of truth for turning them into local clock positions.
"""

from __future__ import annotations

SECONDS_PER_DAY = 86400.0
SECONDS_PER_HOUR = 3600.0


def hour_of_day(timestamp: float) -> float:
    """Local fractional hour in [0, 24) of a POSIX timestamp."""
    return (timestamp % SECONDS_PER_DAY) / SECONDS_PER_HOUR


def day_of_week(timestamp: float) -> int:
    """Day index 0..6 of a POSIX timestamp (day 0 = the epoch's day).

    The simulator treats campaign timelines as starting on a Monday, so
    indices 5 and 6 are the weekend.
    """
    return int(timestamp // SECONDS_PER_DAY) % 7


def is_weekend(timestamp: float) -> bool:
    """True on the simulator's weekend days (indices 5 and 6)."""
    return day_of_week(timestamp) >= 5
