"""Network-requirement metrics (tier 2 of the IQB framework).

The poster's *network requirements* tier maps each use case onto four
measurable metrics: download throughput, upload throughput, latency, and
packet loss. This module defines those metrics together with the two
pieces of semantics the rest of the framework needs:

* **direction** — whether a larger value is better (throughput) or worse
  (latency, loss), which controls threshold comparisons and the
  "conservative" percentile semantics;
* **units** — the canonical unit every subsystem stores the metric in
  (Mbit/s, milliseconds, loss *fraction* in [0, 1]).

Packet loss is stored as a fraction, not a percent: the poster's "1%"
threshold is ``0.01`` here. :func:`loss_percent_to_fraction` exists so
config files may use the paper's percent notation.
"""

from __future__ import annotations

import enum
from typing import Tuple


class Direction(enum.Enum):
    """Whether larger metric values indicate better or worse quality."""

    HIGHER_IS_BETTER = "higher_is_better"
    LOWER_IS_BETTER = "lower_is_better"


class Metric(enum.Enum):
    """The four network requirements of the IQB framework (paper Fig. 1/2)."""

    DOWNLOAD = "download_mbps"
    UPLOAD = "upload_mbps"
    LATENCY = "latency_ms"
    PACKET_LOSS = "packet_loss"

    @property
    def direction(self) -> Direction:
        """Quality direction of this metric."""
        if self in (Metric.DOWNLOAD, Metric.UPLOAD):
            return Direction.HIGHER_IS_BETTER
        return Direction.LOWER_IS_BETTER

    @property
    def unit(self) -> str:
        """Canonical storage unit."""
        return _UNITS[self]

    @property
    def display_name(self) -> str:
        """Human-readable name as used in the paper's tables."""
        return _DISPLAY_NAMES[self]

    @property
    def field_name(self) -> str:
        """Attribute name on a :class:`~repro.measurements.record.Measurement`."""
        return self.value

    def meets(self, value: float, threshold: float) -> bool:
        """Return True when ``value`` satisfies ``threshold`` for this metric.

        For higher-is-better metrics the value must be at least the
        threshold; for lower-is-better metrics it must be at most the
        threshold. Thresholds are inclusive in both directions, matching
        the paper's "10 Mb/s for minimum quality" phrasing (10.0 passes).
        """
        if self.direction is Direction.HIGHER_IS_BETTER:
            return value >= threshold
        return value <= threshold

    def better(self, a: float, b: float) -> float:
        """Return whichever of ``a``/``b`` represents better quality."""
        if self.direction is Direction.HIGHER_IS_BETTER:
            return max(a, b)
        return min(a, b)

    def worse(self, a: float, b: float) -> float:
        """Return whichever of ``a``/``b`` represents worse quality."""
        if self.direction is Direction.HIGHER_IS_BETTER:
            return min(a, b)
        return max(a, b)

    @classmethod
    def ordered(cls) -> Tuple["Metric", ...]:
        """Metrics in the column order of the paper's Fig. 2 / Table 1."""
        return (cls.DOWNLOAD, cls.UPLOAD, cls.LATENCY, cls.PACKET_LOSS)


_UNITS = {
    Metric.DOWNLOAD: "Mbit/s",
    Metric.UPLOAD: "Mbit/s",
    Metric.LATENCY: "ms",
    Metric.PACKET_LOSS: "fraction",
}

_DISPLAY_NAMES = {
    Metric.DOWNLOAD: "Download Throughput",
    Metric.UPLOAD: "Upload Throughput",
    Metric.LATENCY: "Latency",
    Metric.PACKET_LOSS: "Packet Loss",
}


def loss_percent_to_fraction(percent: float) -> float:
    """Convert the paper's percent notation (``1%`` → ``0.01``).

    Raises:
        ValueError: if ``percent`` is outside [0, 100].
    """
    if not 0.0 <= percent <= 100.0:
        raise ValueError(f"packet-loss percent out of range: {percent!r}")
    return percent / 100.0


def loss_fraction_to_percent(fraction: float) -> float:
    """Convert a stored loss fraction back to percent for display."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"packet-loss fraction out of range: {fraction!r}")
    return fraction * 100.0
