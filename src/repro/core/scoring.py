"""The IQB score: Eqs. 1-5 of the paper, with a full audit trail.

Scoring proceeds bottom-up through the three tiers exactly as §3
describes:

1. For every (use case *u*, requirement *r*, dataset *d*): aggregate the
   dataset's measurements with the percentile rule and compare against
   the threshold → **binary requirement score** ``S_{u,r,d} ∈ {0, 1}``.
2. Eq. 1 — **requirement agreement score**
   ``S_{u,r} = Σ_d w'_{u,r,d} · S_{u,r,d}``.
3. Eq. 2 — **use-case score** ``S_u = Σ_r w'_{u,r} · S_{u,r}``.
4. Eq. 4 — **IQB score** ``S_IQB = Σ_u w'_u · S_u``.

Every intermediate value is retained in the returned
:class:`ScoreBreakdown`, because the framework's whole point is
explainability: a decision-maker must be able to ask *why* a region
scored 0.62.

Missing data: a dataset whose weight is positive but which carries no
observations for a metric silently drops out of Eq. 1's normalization
(corroboration over the datasets that *did* measure). When **no**
dataset observes a requirement, :class:`~repro.core.config.MissingDataPolicy`
decides: skip-and-renormalize Eq. 2 (default), count the requirement as
failed, or raise.

:func:`flat_score` implements the fully-expanded Eq. 5 as an independent
cross-check; tests assert it always equals the tier-by-tier result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs import counter, gauge, span, timer

from .aggregation import aggregate_metric
from .config import (
    IQBConfig,
    MissingDataPolicy,
    QuantileMode,
    QuantilePolicy,
    ScoreMode,
)
from .exceptions import DataError
from .metrics import Metric
from .quality import QualityLevel, credit_scale, grade
from .usecases import UseCase

_REGION_SCORES = counter("scoring.region_scores")
_BATCH_REGIONS = counter("scoring.batch.regions")

#: Batch-scoring kernels ``score_regions`` accepts: the batched numpy
#: kernel (:mod:`repro.core.kernel`) and the scalar oracle in this
#: module. The two are bit-parity twins (see tests/core/test_kernel_parity).
KERNELS = ("vectorized", "exact")

#: Quantile planes ``score_regions`` can source aggregates from: the
#: exact sorted columnar plane (the oracle) and the streaming t-digest
#: plane. The exact-vs-sketch parity suite bounds the sketch plane's
#: p95/p99 relative error at ≤ 1%.
QUANTILE_SOURCES = ("exact", "sketch")

# Degraded-mode visibility: regions scored without one or more of their
# configured datasets in the latest batch. Eq. 1 already renormalizes
# over the datasets that did report (corroboration over what exists);
# this gauge is what keeps that silent fallback from being *invisible*.
_DEGRADED_REGIONS = gauge("score.degraded.regions")

# End-to-end scoring latency (per region/batch call), the input of the
# health subsystem's latency SLO rules — p95 of this timer against a
# declared budget is what "serving scores on time" means.
_SCORE_LATENCY = timer("score.latency")

# QuantileSource is a Protocol; imported for typing clarity only.
from .aggregation import QuantileSource


@dataclass(frozen=True)
class DatasetVerdict:
    """One ``S_{u,r,d}``: a dataset's verdict on one requirement.

    ``score`` is the value Eq. 1 consumes: 0/1 under the paper's
    BINARY mode, 0/0.5/1 under the GRADED extension. ``passed`` means
    the configured bar is fully met (score == 1).
    """

    dataset: str
    aggregate: float
    threshold: float
    passed: bool
    weight: int
    sample_count: int
    score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"verdict score outside [0, 1]: {self.score}")
        if self.passed != (self.score == 1.0):
            raise ValueError(
                f"inconsistent verdict: passed={self.passed} score={self.score}"
            )


@dataclass(frozen=True)
class RequirementScore:
    """One ``S_{u,r}`` (Eq. 1) with its supporting dataset verdicts.

    ``value`` is ``None`` when no dataset observed the metric and the
    missing-data policy is SKIP; such requirements do not participate in
    Eq. 2.
    """

    metric: Metric
    threshold: float
    value: Optional[float]
    weight: int
    verdicts: Tuple[DatasetVerdict, ...]

    @property
    def observed(self) -> bool:
        """True when at least one dataset backed this requirement."""
        return len(self.verdicts) > 0

    @property
    def unanimous(self) -> bool:
        """True when every contributing dataset issued the same verdict."""
        if not self.verdicts:
            return True
        first = self.verdicts[0].score
        return all(v.score == first for v in self.verdicts)


@dataclass(frozen=True)
class UseCaseScore:
    """One ``S_u`` (Eq. 2) with its requirement scores."""

    use_case: UseCase
    value: float
    weight: int
    requirements: Tuple[RequirementScore, ...]

    def requirement(self, metric: Metric) -> RequirementScore:
        """The requirement score for ``metric``."""
        for req in self.requirements:
            if req.metric is metric:
                return req
        raise KeyError(metric)

    @property
    def skipped_metrics(self) -> Tuple[Metric, ...]:
        """Requirements dropped from Eq. 2 for lack of data."""
        return tuple(r.metric for r in self.requirements if r.value is None)


@dataclass(frozen=True)
class ScoreBreakdown:
    """The composite ``S_IQB`` (Eq. 4) and the entire tier-by-tier trail."""

    value: float
    use_cases: Tuple[UseCaseScore, ...]
    #: Configured datasets (positive weight somewhere in the tensor)
    #: that contributed no verdict anywhere in this breakdown: the
    #: score is legitimate under Eq. 1's renormalization, but it rests
    #: on less corroboration than the config intended.
    degraded_datasets: Tuple[str, ...] = ()
    #: Which quantile plane answered the percentile rule: ``"exact"``
    #: (sorted columns, the default and the historical behaviour),
    #: ``"sketch"`` (streaming t-digests), or ``"mixed"`` (per-dataset
    #: split). Provenance for comparing archived scores: sketch-sourced
    #: aggregates carry bounded estimation error.
    quantile_source: str = "exact"

    @property
    def degraded(self) -> bool:
        """True when at least one configured dataset went dark."""
        return bool(self.degraded_datasets)

    def use_case(self, use_case: UseCase) -> UseCaseScore:
        """The score object for one use case."""
        for entry in self.use_cases:
            if entry.use_case is use_case:
                return entry
        raise KeyError(use_case)

    @property
    def grade(self) -> str:
        """Nutri-Score-style letter for the composite score."""
        return grade(self.value)

    @property
    def credit(self) -> int:
        """Credit-score-style 300..850 presentation of the score."""
        return credit_scale(self.value)

    def use_case_values(self) -> Dict[UseCase, float]:
        """Mapping of use case → ``S_u`` for quick inspection."""
        return {entry.use_case: entry.value for entry in self.use_cases}

    # -- serialization (archiving / machine-readable CLI output) --------

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible representation of the full breakdown.

        ``quantile_source`` is emitted only for non-exact provenance,
        so exact-plane output stays byte-identical to pre-streaming
        archives.
        """
        document: Dict[str, object] = {
            "score": self.value,
            "grade": self.grade,
            "credit": self.credit,
            "degraded_datasets": list(self.degraded_datasets),
        }
        if self.quantile_source != "exact":
            document["quantile_source"] = self.quantile_source
        document["use_cases"] = [
                {
                    "use_case": entry.use_case.value,
                    "score": entry.value,
                    "weight": entry.weight,
                    "requirements": [
                        {
                            "metric": req.metric.value,
                            "threshold": req.threshold,
                            "score": req.value,
                            "weight": req.weight,
                            "verdicts": [
                                {
                                    "dataset": verdict.dataset,
                                    "aggregate": verdict.aggregate,
                                    "threshold": verdict.threshold,
                                    "passed": verdict.passed,
                                    "score": verdict.score,
                                    "weight": verdict.weight,
                                    "samples": verdict.sample_count,
                                }
                                for verdict in req.verdicts
                            ],
                        }
                        for req in entry.requirements
                    ],
                }
                for entry in self.use_cases
        ]
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "ScoreBreakdown":
        """Rebuild a breakdown archived by :meth:`to_dict`.

        Raises:
            DataError: on malformed documents.
        """
        try:
            use_cases = tuple(
                UseCaseScore(
                    use_case=UseCase(entry["use_case"]),
                    value=float(entry["score"]),
                    weight=int(entry["weight"]),
                    requirements=tuple(
                        RequirementScore(
                            metric=Metric(req["metric"]),
                            threshold=float(req["threshold"]),
                            value=(
                                None
                                if req["score"] is None
                                else float(req["score"])
                            ),
                            weight=int(req["weight"]),
                            verdicts=tuple(
                                DatasetVerdict(
                                    dataset=str(verdict["dataset"]),
                                    aggregate=float(verdict["aggregate"]),
                                    threshold=float(verdict["threshold"]),
                                    passed=bool(verdict["passed"]),
                                    weight=int(verdict["weight"]),
                                    sample_count=int(verdict["samples"]),
                                    score=float(verdict["score"]),
                                )
                                for verdict in req["verdicts"]
                            ),
                        )
                        for req in entry["requirements"]
                    ),
                )
                for entry in document["use_cases"]
            )
            return cls(
                value=float(document["score"]),
                use_cases=use_cases,
                # Absent in pre-degraded-mode archives: default clean.
                degraded_datasets=tuple(
                    str(d) for d in document.get("degraded_datasets", ())
                ),
                # Absent in pre-streaming archives: exact plane.
                quantile_source=str(
                    document.get("quantile_source", "exact")
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed breakdown document: {exc}") from exc


def score_requirement(
    use_case: UseCase,
    metric: Metric,
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> RequirementScore:
    """Compute ``S_{u,r}`` (Eq. 1) for one requirement of one use case.

    Datasets participate when their configured weight ``w_{u,r,d}`` is
    positive *and* they carry observations for the metric; Eq. 1's
    normalization runs over exactly those datasets.
    """
    threshold = config.threshold_value(use_case, metric)
    verdicts: List[DatasetVerdict] = []
    for dataset in sorted(sources):
        weight = config.dataset_weights.get(use_case, metric, dataset)
        if weight <= 0:
            continue
        source = sources[dataset]
        aggregate = aggregate_metric(source, metric, config.aggregation)
        if aggregate is None:
            continue
        value = _verdict_value(use_case, metric, aggregate, config)
        verdicts.append(
            DatasetVerdict(
                dataset=dataset,
                aggregate=aggregate,
                threshold=threshold,
                passed=value == 1.0,
                weight=weight,
                sample_count=source.sample_count(metric),
                score=value,
            )
        )
    weight = config.requirement_weights.get(use_case, metric)
    if not verdicts:
        return RequirementScore(
            metric=metric,
            threshold=threshold,
            value=_resolve_missing(use_case, metric, config),
            weight=weight,
            verdicts=(),
        )
    total = sum(v.weight for v in verdicts)
    value = sum(v.weight * v.score for v in verdicts) / total
    return RequirementScore(
        metric=metric,
        threshold=threshold,
        value=value,
        weight=weight,
        verdicts=tuple(verdicts),
    )


def _verdict_value(
    use_case: UseCase,
    metric: Metric,
    aggregate: float,
    config: IQBConfig,
) -> float:
    """``S_{u,r,d}`` for one aggregate under the configured score mode.

    BINARY (the paper): 1 when the configured quality level's threshold
    is met, else 0. GRADED (documented extension): 1 at the high bar,
    0.5 at the minimum bar, else 0 — strictly between the two binary
    readings.
    """
    if config.score_mode is ScoreMode.BINARY:
        return 1.0 if metric.meets(aggregate, config.threshold_value(use_case, metric)) else 0.0
    high = config.thresholds.value(
        use_case, metric, QualityLevel.HIGH, config.range_policy
    )
    minimum = config.thresholds.value(use_case, metric, QualityLevel.MINIMUM)
    if config.score_mode is ScoreMode.CONTINUOUS:
        return _continuous_value(metric, aggregate, minimum, high)
    if metric.meets(aggregate, high):
        return 1.0
    if metric.meets(aggregate, minimum):
        return 0.5
    return 0.0


def _continuous_value(
    metric: Metric, aggregate: float, minimum: float, high: float
) -> float:
    """Piecewise-linear/ratio requirement score anchored at both tiers.

    1.0 at (or beyond) the high tier; linear down to 0.5 at the minimum
    tier; below minimum a proportional ramp toward 0 so a 5 Mb/s and a
    0.5 Mb/s region no longer tie (the ext-qoe resolution finding).
    For lower-is-better metrics the sub-minimum ramp is the reciprocal
    ratio (score → 0 as the metric blows up). Degenerate cells where
    the tiers coincide ramp straight from 0 to 1 at the single bar.
    """
    from .metrics import Direction

    if metric.direction is Direction.HIGHER_IS_BETTER:
        if aggregate >= high:
            return 1.0
        if aggregate >= minimum:
            if high == minimum:
                return 1.0
            return 0.5 + 0.5 * (aggregate - minimum) / (high - minimum)
        if minimum <= 0:
            return 0.0
        return 0.5 * max(0.0, aggregate) / minimum
    # Lower is better (latency, loss).
    if aggregate <= high:
        return 1.0
    if aggregate <= minimum:
        if minimum == high:
            return 1.0
        return 0.5 + 0.5 * (minimum - aggregate) / (minimum - high)
    if aggregate <= 0:
        return 1.0  # unreachable for positive metrics; defensive
    return 0.5 * minimum / aggregate


def _resolve_missing(
    use_case: UseCase, metric: Metric, config: IQBConfig
) -> Optional[float]:
    """Value of an unobserved requirement per the missing-data policy."""
    policy = config.missing_data
    if policy is MissingDataPolicy.SKIP:
        return None
    if policy is MissingDataPolicy.FAIL:
        return 0.0
    raise DataError(
        f"no dataset observes {metric.value} for {use_case.value} "
        f"and missing-data policy is strict"
    )


def score_use_case(
    use_case: UseCase,
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> UseCaseScore:
    """Compute ``S_u`` (Eq. 2) for one use case.

    Requirements skipped for lack of data are excluded from the weighted
    average; the remaining ``w_{u,r}`` renormalize over what was
    observed.

    Raises:
        DataError: when *every* requirement of the use case is skipped.
    """
    requirements = tuple(
        score_requirement(use_case, metric, sources, config)
        for metric in Metric.ordered()
    )
    contributing = [r for r in requirements if r.value is not None]
    if not contributing:
        raise DataError(
            f"no requirement of {use_case.value} has any data; "
            f"cannot compute a use-case score"
        )
    total = sum(r.weight for r in contributing)
    if total <= 0:
        raise DataError(
            f"all observed requirements of {use_case.value} have zero weight"
        )
    value = sum(r.weight * r.value for r in contributing) / total
    return UseCaseScore(
        use_case=use_case,
        value=value,
        weight=config.use_case_weights.get(use_case),
        requirements=requirements,
    )


def score_region(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    quantile_source: str = "exact",
) -> ScoreBreakdown:
    """Compute ``S_IQB`` (Eq. 4) from per-dataset measurement sources.

    ``sources`` maps dataset name (matching the config's dataset weights)
    to anything implementing the QuantileSource protocol — raw
    measurement collections, pre-computed aggregate tables, plain
    sequences via :class:`~repro.core.aggregation.SequenceSource`, or
    streaming sketch views. ``quantile_source`` is a provenance stamp
    recorded on the breakdown (the math is whatever the sources
    answer); callers feeding sketch-backed sources pass ``"sketch"``.
    """
    if not sources:
        raise DataError("score_region needs at least one dataset source")
    _REGION_SCORES.inc()
    with _SCORE_LATENCY.time():
        use_cases = tuple(
            score_use_case(use_case, sources, config)
            for use_case in UseCase.ordered()
        )
    total = sum(entry.weight for entry in use_cases)
    value = sum(entry.weight * entry.value for entry in use_cases) / total
    observed = {
        verdict.dataset
        for entry in use_cases
        for req in entry.requirements
        for verdict in req.verdicts
    }
    degraded = tuple(
        dataset
        for dataset in config.dataset_weights.positively_weighted()
        if dataset not in observed
    )
    return ScoreBreakdown(
        value=value,
        use_cases=use_cases,
        degraded_datasets=degraded,
        quantile_source=quantile_source,
    )


def effective_modes(
    config: IQBConfig, quantiles: Optional[str] = None
) -> Tuple[QuantileMode, ...]:
    """Resolved quantile mode per configured dataset.

    ``quantiles`` (the CLI-style global override) wins over the
    config's per-dataset :class:`~repro.core.config.QuantilePolicy`.
    Public so callers that pre-resolve modes once and reuse them per
    request (the serving layer's cached ``score_values`` sweeps) stay
    in lockstep with what :func:`score_regions` would pick.
    """
    cc = config.compiled()
    if quantiles is None:
        return config.quantiles.modes(cc.datasets)
    mode = QuantileMode(quantiles)
    return (mode,) * len(cc.datasets)


#: Backwards-compatible private alias (pre-serving-layer name).
_effective_modes = effective_modes


def _grouped_sources(
    store: "object",
    config: IQBConfig,
    modes: Tuple[QuantileMode, ...],
) -> Tuple[Mapping[str, Mapping[str, QuantileSource]], str]:
    """(region → dataset → source, provenance label) honoring ``modes``.

    The scalar kernel's plane selection: exact modes read the store's
    columnar views, sketch modes read the attached sketch plane's
    views, and a mixed policy stitches the two per dataset. Batch
    datasets outside the configured axis keep their exact views (they
    carry no weight, so only ``sample_count`` cosmetics could differ).
    """
    cc = config.compiled()
    if all(mode is QuantileMode.EXACT for mode in modes):
        return store.sources_by_region(), "exact"
    native_sketch = getattr(store, "QUANTILE_SOURCE", "exact") == "sketch"
    sketch = store if native_sketch else store.sketch_plane()
    if all(mode is QuantileMode.SKETCH for mode in modes):
        return sketch.sources_by_region(), "sketch"
    exact_grouped = store.sources_by_region()
    sketch_grouped = sketch.sources_by_region()
    mode_of = dict(zip(cc.datasets, modes))
    combined: Dict[str, Dict[str, QuantileSource]] = {}
    for region, sources in exact_grouped.items():
        row: Dict[str, QuantileSource] = {}
        for dataset, view in sources.items():
            if mode_of.get(dataset) is QuantileMode.SKETCH:
                row[dataset] = sketch_grouped.get(region, {}).get(
                    dataset, view
                )
            else:
                row[dataset] = view
        combined[region] = row
    return combined, "mixed"


def score_regions(
    records: "object",
    config: IQBConfig,
    workers: int = 1,
    kernel: str = "vectorized",
    quantiles: Optional[str] = None,
) -> Dict[str, ScoreBreakdown]:
    """Batch-score every region of a combined measurement batch (Eq. 4 each).

    This is the columnar fast path for national refreshes: instead of
    re-filtering and re-grouping the record stream once per region (the
    ``for_region(...).group_by_source()`` loop), the batch is transposed
    once into a :class:`~repro.measurements.columnar.ColumnarStore` and
    every region is scored off shared per-metric planes — by default in
    one batched numpy pass (:mod:`repro.core.kernel`).

    Args:
        records: a :class:`~repro.measurements.collection.MeasurementSet`,
            any iterable of Measurement records, an already-built
            ``ColumnarStore``, or a pre-grouped mapping
            ``region → {dataset → QuantileSource}``.
        config: the scoring configuration applied to every region.
        workers: when ``> 1``, regions are scored by a forked worker
            pool (:mod:`repro.parallel`); the merged result is
            bit-identical to the serial path, and worker telemetry
            merges back into this process's registry.
        kernel: ``"vectorized"`` (default) scores all regions in one
            batched numpy pass over the store's aggregate cube;
            ``"exact"`` runs the scalar reference loop. Pre-grouped
            mappings carry opaque QuantileSources (not columnar
            arrays), so they always fall back to the exact path; both
            kernels produce identical breakdowns (tests assert
            bit-equality for BINARY, ≤1e-12 for the graded modes).
        quantiles: global override of the config's
            :class:`~repro.core.config.QuantilePolicy` — ``"exact"``
            forces the sorted columnar plane for every dataset
            (bit-identical to pre-streaming output), ``"sketch"``
            forces the streaming t-digest plane, ``None`` (default)
            follows the config's per-dataset policy. A
            :class:`~repro.measurements.sketchplane.SketchPlane` passed
            as ``records`` always scores from its sketches (it has no
            exact plane; requesting ``"exact"`` on one raises).

    Returns:
        region → :class:`ScoreBreakdown`, numerically identical to
        calling :func:`score_region` per region on per-region groupings
        (tests assert bit-equality).

    Raises:
        ValueError: on an unknown ``kernel`` name.
        DataError: when the batch is empty — via :func:`score_region`.
        repro.parallel.ShardError: when a worker shard fails
            (``workers > 1`` only), naming the shard's regions.
    """
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown scoring kernel: {kernel!r} (have {KERNELS})"
        )
    if quantiles is not None and quantiles not in QUANTILE_SOURCES:
        raise ValueError(
            f"unknown quantile source: {quantiles!r} "
            f"(have {QUANTILE_SOURCES})"
        )
    with span("score_regions") as stage:
        if workers > 1:
            # Imported lazily: repro.parallel sits above both core and
            # measurements in the layering.
            from repro.parallel.scoring import score_regions_parallel

            merged = score_regions_parallel(
                records,
                config,
                workers,
                stage=stage,
                kernel=kernel,
                quantiles=quantiles,
            )
            _BATCH_REGIONS.inc(len(merged))
            _DEGRADED_REGIONS.set(
                float(sum(1 for b in merged.values() if b.degraded))
            )
            return merged
        source_label = "exact"
        if isinstance(records, Mapping):
            # Pre-grouped sources are opaque QuantileSources; only the
            # scalar path can drive them (automatic exact fallback).
            grouped: Mapping[str, Mapping[str, QuantileSource]] = records
        else:
            # Imported lazily: repro.measurements depends on repro.core, so a
            # module-level import here would be circular.
            from repro.measurements.columnar import ColumnarStore
            from repro.measurements.sketchplane import SketchPlane

            with span("columnar_group"):
                if isinstance(records, SketchPlane):
                    if quantiles == "exact":
                        raise ValueError(
                            "a sketch plane carries no exact quantile "
                            "plane; score the raw records to use "
                            "quantiles='exact'"
                        )
                    store: "object" = records
                    modes: Tuple[QuantileMode, ...] = (
                        QuantileMode.SKETCH,
                    ) * len(config.compiled().datasets)
                else:
                    store = (
                        records
                        if isinstance(records, ColumnarStore)
                        else ColumnarStore.from_measurements(records)  # type: ignore[arg-type]
                    )
                    modes = _effective_modes(config, quantiles)
                if kernel == "vectorized":
                    from .kernel import score_store

                    grouped = None
                else:
                    grouped, source_label = _grouped_sources(
                        store, config, modes
                    )
            if grouped is None:
                with _SCORE_LATENCY.time():
                    scored = score_store(
                        store, config, stage=stage, modes=modes
                    )
                _BATCH_REGIONS.inc(len(scored))
                _DEGRADED_REGIONS.set(
                    float(sum(1 for b in scored.values() if b.degraded))
                )
                return scored
        if not grouped:
            raise DataError("score_regions needs at least one region of data")
        stage.annotate(regions=len(grouped))
        _BATCH_REGIONS.inc(len(grouped))
        with span("region_loop"):
            scored = {
                region: score_region(
                    grouped[region], config, quantile_source=source_label
                )
                for region in sorted(grouped)
            }
        _DEGRADED_REGIONS.set(
            float(sum(1 for b in scored.values() if b.degraded))
        )
        return scored


def flat_score(breakdown: ScoreBreakdown) -> float:
    """Recompute ``S_IQB`` via the fully-expanded Eq. 5.

    ``S_IQB = Σ_u Σ_r Σ_d w'_u · w'_{u,r} · w'_{u,r,d} · S_{u,r,d}``

    The expansion uses the *effective* normalizations (over observed
    datasets and non-skipped requirements), mirroring how Eqs. 1-4
    actually combined. Tests assert this equals ``breakdown.value`` to
    floating-point tolerance — a direct check of the paper's algebra.
    """
    use_case_total = sum(entry.weight for entry in breakdown.use_cases)
    score = 0.0
    for entry in breakdown.use_cases:
        w_u = entry.weight / use_case_total
        contributing = [r for r in entry.requirements if r.value is not None]
        requirement_total = sum(r.weight for r in contributing)
        for req in contributing:
            w_ur = req.weight / requirement_total
            if req.verdicts:
                dataset_total = sum(v.weight for v in req.verdicts)
                for verdict in req.verdicts:
                    w_urd = verdict.weight / dataset_total
                    score += w_u * w_ur * w_urd * verdict.score
            else:
                # Requirement resolved by the FAIL policy: S_{u,r} is 0,
                # contributing nothing to the sum (kept for clarity).
                score += 0.0
    return score
