"""Distance-to-threshold planning: *how much* must improve, not just what.

Attribution (:mod:`repro.core.compare`) says which cells cost the most
score; an infrastructure planner's next question is quantitative: "our
p95 latency is 61 ms against a 50 ms bar — so we need an 11 ms
improvement at the tail". This module computes that gap for every
failing (use case, requirement, dataset) verdict, expressed both
absolutely and relatively, and aggregates the per-metric headline:
the largest improvement any use case demands of that metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .metrics import Direction, Metric
from .scoring import ScoreBreakdown
from .usecases import UseCase


@dataclass(frozen=True)
class ThresholdGap:
    """One failing verdict's distance to its threshold."""

    use_case: UseCase
    metric: Metric
    dataset: str
    aggregate: float
    threshold: float

    @property
    def absolute_gap(self) -> float:
        """How far the aggregate must move to pass (non-negative)."""
        if self.metric.direction is Direction.HIGHER_IS_BETTER:
            return max(0.0, self.threshold - self.aggregate)
        return max(0.0, self.aggregate - self.threshold)

    @property
    def relative_gap(self) -> float:
        """Gap as a fraction of the threshold (comparable across metrics)."""
        if self.threshold == 0:
            return float("inf") if self.absolute_gap > 0 else 0.0
        return self.absolute_gap / self.threshold

    def describe(self) -> str:
        """One-line human description of the needed improvement."""
        direction = (
            "raise"
            if self.metric.direction is Direction.HIGHER_IS_BETTER
            else "cut"
        )
        return (
            f"{self.use_case.value}/{self.metric.value} [{self.dataset}]: "
            f"{direction} {self.aggregate:.3g} "
            f"to {self.threshold:.3g} "
            f"({self.absolute_gap:.3g} {self.metric.unit})"
        )


def threshold_gaps(breakdown: ScoreBreakdown) -> List[ThresholdGap]:
    """Every failing verdict's gap, largest relative gap first."""
    gaps: List[ThresholdGap] = []
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            for verdict in req.verdicts:
                if verdict.passed:
                    continue
                gaps.append(
                    ThresholdGap(
                        use_case=entry.use_case,
                        metric=req.metric,
                        dataset=verdict.dataset,
                        aggregate=verdict.aggregate,
                        threshold=verdict.threshold,
                    )
                )
    gaps.sort(
        key=lambda gap: (
            -gap.relative_gap,
            gap.use_case.value,
            gap.metric.value,
            gap.dataset,
        )
    )
    return gaps


@dataclass(frozen=True)
class VerdictMargin:
    """How much slack a *passing* verdict has before it flips."""

    use_case: UseCase
    metric: Metric
    dataset: str
    aggregate: float
    threshold: float

    @property
    def absolute_margin(self) -> float:
        """Degradation the aggregate can absorb and still pass."""
        if self.metric.direction is Direction.HIGHER_IS_BETTER:
            return max(0.0, self.aggregate - self.threshold)
        return max(0.0, self.threshold - self.aggregate)

    @property
    def relative_margin(self) -> float:
        """Margin as a fraction of the threshold."""
        if self.threshold == 0:
            return float("inf") if self.absolute_margin > 0 else 0.0
        return self.absolute_margin / self.threshold


def verdict_margins(breakdown: ScoreBreakdown) -> List[VerdictMargin]:
    """Slack of every passing verdict, tightest first.

    The mirror image of :func:`threshold_gaps`: the tightest margins
    are the verdicts a small seasonal shift (or a near-threshold
    bootstrap replicate) will flip — the fragile part of a region's
    score.
    """
    margins: List[VerdictMargin] = []
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            for verdict in req.verdicts:
                if not verdict.passed:
                    continue
                margins.append(
                    VerdictMargin(
                        use_case=entry.use_case,
                        metric=req.metric,
                        dataset=verdict.dataset,
                        aggregate=verdict.aggregate,
                        threshold=verdict.threshold,
                    )
                )
    margins.sort(
        key=lambda margin: (
            margin.relative_margin,
            margin.use_case.value,
            margin.metric.value,
            margin.dataset,
        )
    )
    return margins


def metric_targets(breakdown: ScoreBreakdown) -> Dict[Metric, float]:
    """Per metric: the worst absolute improvement any failing cell needs.

    This is the engineering headline ("the region needs 38 more Mbit/s
    of p95 download and 14 ms less p95 latency to clear every currently
    -failing bar"). Metrics with no failing verdicts are absent.
    """
    targets: Dict[Metric, float] = {}
    for gap in threshold_gaps(breakdown):
        current = targets.get(gap.metric, 0.0)
        targets[gap.metric] = max(current, gap.absolute_gap)
    return targets


def render_targets(breakdown: ScoreBreakdown, top: int = 8) -> str:
    """Plain-text improvement plan for a region."""
    gaps = threshold_gaps(breakdown)
    if not gaps:
        return "All thresholds met: no improvement targets."
    lines = ["Improvement targets (largest relative gaps first):"]
    for gap in gaps[:top]:
        lines.append(f"  {gap.describe()}")
    headline = metric_targets(breakdown)
    lines.append("Per-metric worst-case gaps:")
    for metric, value in sorted(headline.items(), key=lambda kv: kv[0].value):
        lines.append(f"  {metric.value}: {value:.3g} {metric.unit}")
    return "\n".join(lines)
