"""The IQBFramework facade: datasets in, scores out.

This is the top-level entry point a downstream user touches first:

>>> from repro import IQBFramework
>>> from repro.netsim import region_preset, simulate_region
>>> framework = IQBFramework()                      # paper defaults
>>> records = simulate_region(region_preset("metro-fiber"), seed=1)
>>> breakdown = framework.score_measurements(records, "metro-fiber")
>>> 0.0 <= breakdown.value <= 1.0
True

The facade also renders the paper's Fig. 1 tier structure
(:meth:`IQBFramework.tier_map`), which the ``fig1`` bench regenerates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.measurements.collection import MeasurementSet

from .aggregation import QuantileSource
from .config import IQBConfig, paper_config
from .exceptions import DataError
from .metrics import Metric
from .scoring import ScoreBreakdown, score_region
from .usecases import UseCase


class IQBFramework:
    """User-facing facade over configuration + scoring."""

    def __init__(self, config: Optional[IQBConfig] = None) -> None:
        self.config = config if config is not None else paper_config()

    # -- scoring ------------------------------------------------------------

    def score_sources(
        self, sources: Mapping[str, QuantileSource]
    ) -> ScoreBreakdown:
        """Score pre-grouped per-dataset sources (raw or aggregate)."""
        return score_region(sources, self.config)

    def score_measurements(
        self, records: MeasurementSet, region: str
    ) -> ScoreBreakdown:
        """Score one region of a mixed measurement set.

        Records are filtered to ``region`` and grouped by their source
        dataset; each group becomes one corroborating QuantileSource.

        Raises:
            DataError: when the region has no records.
        """
        subset = records.for_region(region)
        if len(subset) == 0:
            raise DataError(f"no measurements for region {region!r}")
        return self.score_sources(subset.group_by_source())

    def score_all_regions(
        self, records: MeasurementSet
    ) -> Dict[str, ScoreBreakdown]:
        """Score every region present in a measurement set."""
        return {
            region: self.score_measurements(records, region)
            for region in records.regions()
        }

    # -- framework structure (Fig. 1) ----------------------------------------

    def tier_map(self) -> Dict[str, Dict[str, List[str]]]:
        """The three-tier structure of Fig. 1 as plain data.

        Maps each use case to the requirements that matter for it
        (weight > 0), and each requirement to the datasets trusted for
        it (weight > 0), using this framework's configuration.
        """
        structure: Dict[str, Dict[str, List[str]]] = {}
        for use_case in UseCase.ordered():
            requirements: Dict[str, List[str]] = {}
            for metric in Metric.ordered():
                if self.config.requirement_weights.get(use_case, metric) <= 0:
                    continue
                datasets = [
                    name
                    for name, weight in sorted(
                        self.config.dataset_weights.row(use_case, metric).items()
                    )
                    if weight > 0
                ]
                requirements[metric.value] = datasets
            structure[use_case.value] = requirements
        return structure

    def render_tier_map(self) -> str:
        """Fig. 1 as indented text (use cases → requirements → datasets)."""
        lines: List[str] = ["IQB framework tiers"]
        for use_case, requirements in self.tier_map().items():
            lines.append(f"  {use_case}")
            for metric, datasets in requirements.items():
                joined = ", ".join(datasets) if datasets else "(no dataset)"
                lines.append(f"    {metric} <- {joined}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"IQBFramework(percentile={self.config.aggregation.percentile}, "
            f"level={self.config.quality_level.value})"
        )


def region_scores_table(
    scores: Mapping[str, ScoreBreakdown],
) -> List[Tuple[str, float, str]]:
    """(region, score, grade) rows sorted by descending score."""
    rows = [
        (region, breakdown.value, breakdown.grade)
        for region, breakdown in scores.items()
    ]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows
