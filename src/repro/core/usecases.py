"""Use cases (tier 1 of the IQB framework).

The poster follows Cranor et al.'s consumer broadband-label study and
considers six use cases. Each carries a short description plus the
metadata the rest of the system uses: an interactivity flag (drives the
QoE models' sensitivity to latency) and a default popularity share used
by the optional popularity-weighted preset for ``w_u``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Tuple


class UseCase(enum.Enum):
    """The six IQB use cases (paper §2, Fig. 1)."""

    WEB_BROWSING = "web_browsing"
    VIDEO_STREAMING = "video_streaming"
    VIDEO_CONFERENCING = "video_conferencing"
    AUDIO_STREAMING = "audio_streaming"
    ONLINE_BACKUP = "online_backup"
    GAMING = "gaming"

    @property
    def display_name(self) -> str:
        """Name as printed in the paper's tables."""
        return _PROFILES[self].display_name

    @property
    def description(self) -> str:
        """One-line description of the activity."""
        return _PROFILES[self].description

    @property
    def interactive(self) -> bool:
        """True for real-time interactive use cases (latency-critical)."""
        return _PROFILES[self].interactive

    @property
    def default_popularity(self) -> float:
        """Share of users engaging in this use case (popularity preset).

        These are plausibility constants for the *optional* popularity
        preset only; the paper's score uses equal ``w_u`` by default.
        """
        return _PROFILES[self].popularity

    @classmethod
    def ordered(cls) -> Tuple["UseCase", ...]:
        """Use cases in the row order of the paper's Fig. 2."""
        return (
            cls.WEB_BROWSING,
            cls.VIDEO_STREAMING,
            cls.VIDEO_CONFERENCING,
            cls.AUDIO_STREAMING,
            cls.ONLINE_BACKUP,
            cls.GAMING,
        )


@dataclass(frozen=True)
class _UseCaseProfile:
    display_name: str
    description: str
    interactive: bool
    popularity: float


_PROFILES: Mapping[UseCase, _UseCaseProfile] = {
    UseCase.WEB_BROWSING: _UseCaseProfile(
        display_name="Web Browsing",
        description="Loading and interacting with Web pages.",
        interactive=True,
        popularity=0.95,
    ),
    UseCase.VIDEO_STREAMING: _UseCaseProfile(
        display_name="Video Streaming",
        description="On-demand adaptive-bitrate video playback.",
        interactive=False,
        popularity=0.85,
    ),
    UseCase.VIDEO_CONFERENCING: _UseCaseProfile(
        display_name="Video Conferencing",
        description="Real-time two-way audio/video calls.",
        interactive=True,
        popularity=0.65,
    ),
    UseCase.AUDIO_STREAMING: _UseCaseProfile(
        display_name="Audio Streaming",
        description="Music and podcast streaming.",
        interactive=False,
        popularity=0.70,
    ),
    UseCase.ONLINE_BACKUP: _UseCaseProfile(
        display_name="Online Backup",
        description="Bulk upload of files to cloud storage.",
        interactive=False,
        popularity=0.40,
    ),
    UseCase.GAMING: _UseCaseProfile(
        display_name="Gaming",
        description="Real-time online multiplayer gaming.",
        interactive=True,
        popularity=0.45,
    ),
}
