"""Explainability: why did a region score what it scored?

The poster pitches IQB at decision-makers; a composite score they cannot
interrogate is a number, not a barometer. This module turns a
:class:`~repro.core.scoring.ScoreBreakdown` into:

* the list of failing / partially-met requirements,
* dataset disagreements (where corroboration is weak),
* ranked improvement opportunities — which single requirement, if
  fixed, would raise ``S_IQB`` the most,
* a full plain-text explanation for reports and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .metrics import Metric
from .scoring import RequirementScore, ScoreBreakdown, UseCaseScore
from .usecases import UseCase


@dataclass(frozen=True)
class Finding:
    """One requirement-level observation about a breakdown."""

    use_case: UseCase
    metric: Metric
    agreement: float
    detail: str


@dataclass(frozen=True)
class Opportunity:
    """Estimated IQB gain from fully meeting one requirement."""

    use_case: UseCase
    metric: Metric
    current_agreement: float
    iqb_gain: float


def failing_requirements(
    breakdown: ScoreBreakdown, threshold: float = 1.0
) -> List[Finding]:
    """Requirements whose agreement score falls below ``threshold``.

    With the default threshold of 1.0 this lists every requirement not
    unanimously met; pass 0.5 to list only majority-failed ones.
    """
    findings: List[Finding] = []
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            if req.value is None or req.value >= threshold:
                continue
            verdicts = ", ".join(
                f"{v.dataset}={'pass' if v.passed else 'fail'}"
                f"({v.aggregate:.3g} vs {v.threshold:.3g})"
                for v in req.verdicts
            )
            findings.append(
                Finding(
                    use_case=entry.use_case,
                    metric=req.metric,
                    agreement=req.value,
                    detail=verdicts,
                )
            )
    findings.sort(key=lambda f: (f.agreement, f.use_case.value, f.metric.value))
    return findings


def disagreements(breakdown: ScoreBreakdown) -> List[Finding]:
    """Requirements on which the corroborating datasets disagree.

    These are exactly the places where the poster's multi-dataset
    argument earns its keep: a single dataset would have given a
    confident (and possibly wrong) verdict.
    """
    findings: List[Finding] = []
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            if req.value is None or req.unanimous:
                continue
            verdicts = ", ".join(
                f"{v.dataset}:{'pass' if v.passed else 'fail'}"
                for v in req.verdicts
            )
            findings.append(
                Finding(
                    use_case=entry.use_case,
                    metric=req.metric,
                    agreement=req.value,
                    detail=verdicts,
                )
            )
    return findings


def improvement_opportunities(breakdown: ScoreBreakdown) -> List[Opportunity]:
    """Rank requirements by how much fixing each would raise ``S_IQB``.

    The gain of requirement (u, r) is its headroom ``1 - S_{u,r}`` times
    its effective weight in the composite: ``w'_u · w'_{u,r}`` computed
    over the same effective normalizations the score used.
    """
    total_u = sum(entry.weight for entry in breakdown.use_cases)
    opportunities: List[Opportunity] = []
    for entry in breakdown.use_cases:
        w_u = entry.weight / total_u
        contributing = [r for r in entry.requirements if r.value is not None]
        total_r = sum(r.weight for r in contributing)
        if total_r <= 0:
            continue
        for req in contributing:
            headroom = 1.0 - req.value
            if headroom <= 0:
                continue
            gain = w_u * (req.weight / total_r) * headroom
            opportunities.append(
                Opportunity(
                    use_case=entry.use_case,
                    metric=req.metric,
                    current_agreement=req.value,
                    iqb_gain=gain,
                )
            )
    opportunities.sort(
        key=lambda o: (-o.iqb_gain, o.use_case.value, o.metric.value)
    )
    return opportunities


def _render_requirement(req: RequirementScore) -> str:
    if req.value is None:
        return f"      {req.metric.value}: no data (skipped)"
    verdicts = " ".join(
        f"[{v.dataset} {'PASS' if v.passed else 'FAIL'} "
        f"{v.aggregate:.3g}/{v.threshold:.3g} n={v.sample_count}]"
        for v in req.verdicts
    )
    return (
        f"      {req.metric.value}: S={req.value:.2f} w={req.weight} {verdicts}"
    )


def _render_use_case(entry: UseCaseScore) -> List[str]:
    lines = [f"  {entry.use_case.display_name}: S_u={entry.value:.3f} "
             f"(w={entry.weight})"]
    lines.extend(_render_requirement(req) for req in entry.requirements)
    return lines


def explain(breakdown: ScoreBreakdown) -> str:
    """Full plain-text explanation of a breakdown, tier by tier."""
    lines: List[str] = [
        f"IQB score: {breakdown.value:.3f} "
        f"(grade {breakdown.grade}, credit-style {breakdown.credit})"
    ]
    for entry in breakdown.use_cases:
        lines.extend(_render_use_case(entry))
    gaps = improvement_opportunities(breakdown)
    if gaps:
        lines.append("  Top improvement opportunities:")
        for opportunity in gaps[:5]:
            lines.append(
                f"    +{opportunity.iqb_gain:.3f} IQB if "
                f"{opportunity.use_case.value}/{opportunity.metric.value} "
                f"were fully met (currently {opportunity.current_agreement:.2f})"
            )
    return "\n".join(lines)
