"""Quality levels and composite-score presentation scales.

The poster defines two threshold tiers per requirement — *minimum* and
*high* quality (Fig. 2) — and motivates the IQB score by analogy with the
Nutri-Score (letter bands) and credit scores (a familiar numeric range).
This module provides those three presentation layers:

* :class:`QualityLevel` — which threshold tier a score is computed against;
* :func:`grade` — Nutri-Score-style A..E letter bands over the [0, 1] score;
* :func:`credit_scale` — an affine map of the score onto the familiar
  300..850 credit-score range.
"""

from __future__ import annotations

import enum
from typing import Tuple


class QualityLevel(enum.Enum):
    """Which threshold tier of Fig. 2 a binary requirement score targets."""

    MINIMUM = "minimum"
    HIGH = "high"


#: Letter-band boundaries, Nutri-Score style. A band applies when the
#: score is >= its lower bound; bounds are half-open [lo, hi).
GRADE_BANDS: Tuple[Tuple[str, float], ...] = (
    ("A", 0.80),
    ("B", 0.60),
    ("C", 0.40),
    ("D", 0.20),
    ("E", 0.00),
)

CREDIT_MIN = 300
CREDIT_MAX = 850


def _check_unit_interval(score: float) -> None:
    if not 0.0 <= score <= 1.0:
        raise ValueError(f"score out of [0, 1]: {score!r}")


def grade(score: float) -> str:
    """Map a [0, 1] IQB score onto a Nutri-Score-style letter A..E.

    >>> grade(1.0), grade(0.8), grade(0.79), grade(0.0)
    ('A', 'A', 'B', 'E')
    """
    _check_unit_interval(score)
    for letter, lower in GRADE_BANDS:
        if score >= lower:
            return letter
    return GRADE_BANDS[-1][0]  # unreachable; keeps mypy/readers honest


def credit_scale(score: float) -> int:
    """Map a [0, 1] IQB score onto the familiar 300..850 credit range.

    >>> credit_scale(0.0), credit_scale(1.0)
    (300, 850)
    """
    _check_unit_interval(score)
    return round(CREDIT_MIN + score * (CREDIT_MAX - CREDIT_MIN))


def describe(score: float) -> str:
    """One-line human description combining both presentation scales.

    >>> describe(0.75)  # 712: banker's rounding of 712.5
    'IQB 0.750 (grade B, 712/850)'
    """
    return f"IQB {score:.3f} (grade {grade(score)}, {credit_scale(score)}/{CREDIT_MAX})"
