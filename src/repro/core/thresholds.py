"""Quality thresholds per use case and metric (paper Fig. 2).

The poster publishes, for every (use case, metric) pair, the value a
connection must reach for a *minimum*-quality and a *high*-quality
experience. Two cells need interpretation (documented in DESIGN.md):

* the high-quality download threshold for video streaming is a range,
  "50-100 Mb/s" — represented by :class:`ThresholdRange` and resolved to
  a single value by a :class:`RangePolicy`;
* the high-quality upload cells for web browsing and gaming read
  "Other" — no high threshold is published. We store ``None`` and the
  lookup falls back to the minimum-quality threshold, which is the most
  conservative reading that keeps every (u, r) pair scoreable.

All thresholds are stored in canonical units (Mbit/s, ms, loss fraction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

from .exceptions import ThresholdError
from .metrics import Metric, loss_percent_to_fraction
from .quality import QualityLevel
from .usecases import UseCase


class RangePolicy(enum.Enum):
    """How a :class:`ThresholdRange` collapses to one number for scoring."""

    LOW = "low"
    MID = "mid"
    HIGH = "high"


@dataclass(frozen=True)
class ThresholdRange:
    """A published threshold given as an interval (e.g. "50-100 Mb/s")."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high <= 0:
            raise ThresholdError(f"range bounds must be positive: {self}")
        if self.low > self.high:
            raise ThresholdError(f"inverted range: {self}")

    def resolve(self, policy: RangePolicy) -> float:
        """Collapse the range to a scalar according to ``policy``."""
        if policy is RangePolicy.LOW:
            return self.low
        if policy is RangePolicy.HIGH:
            return self.high
        return (self.low + self.high) / 2.0


ThresholdValue = Union[float, ThresholdRange, None]


@dataclass(frozen=True)
class Threshold:
    """Minimum- and high-quality thresholds for one (use case, metric) cell.

    ``high`` may be ``None`` (the paper's "Other" cells); lookups then fall
    back to ``minimum``.
    """

    minimum: float
    high: ThresholdValue

    def __post_init__(self) -> None:
        if self.minimum <= 0:
            raise ThresholdError(f"minimum threshold must be positive: {self}")
        if isinstance(self.high, float) and self.high <= 0:
            raise ThresholdError(f"high threshold must be positive: {self}")

    def value(
        self,
        level: QualityLevel,
        range_policy: RangePolicy = RangePolicy.LOW,
    ) -> float:
        """The scalar threshold to compare a measurement against.

        High-quality lookups on an "Other" cell fall back to the
        minimum-quality threshold.
        """
        if level is QualityLevel.MINIMUM or self.high is None:
            return self.minimum
        if isinstance(self.high, ThresholdRange):
            return self.high.resolve(range_policy)
        return self.high

    @property
    def high_published(self) -> bool:
        """Whether the paper publishes a distinct high-quality value."""
        return self.high is not None


class ThresholdTable:
    """The full 6x4 matrix of Fig. 2, with typed lookups.

    The table is immutable after construction; use :meth:`replace` to build
    a variant with some cells overridden (sensitivity analysis needs this).
    """

    def __init__(self, cells: Mapping[Tuple[UseCase, Metric], Threshold]) -> None:
        missing = [
            (u, m)
            for u in UseCase
            for m in Metric
            if (u, m) not in cells
        ]
        if missing:
            raise ThresholdError(f"threshold table incomplete; missing {missing}")
        for (use_case, metric), cell in cells.items():
            _check_ordering(use_case, metric, cell)
        self._cells: Dict[Tuple[UseCase, Metric], Threshold] = dict(cells)

    def get(self, use_case: UseCase, metric: Metric) -> Threshold:
        """The threshold cell for ``(use_case, metric)``."""
        return self._cells[(use_case, metric)]

    def value(
        self,
        use_case: UseCase,
        metric: Metric,
        level: QualityLevel,
        range_policy: RangePolicy = RangePolicy.LOW,
    ) -> float:
        """Scalar threshold for a cell at a quality level."""
        return self.get(use_case, metric).value(level, range_policy)

    def replace(
        self, overrides: Mapping[Tuple[UseCase, Metric], Threshold]
    ) -> "ThresholdTable":
        """A copy of this table with some cells replaced."""
        cells = dict(self._cells)
        cells.update(overrides)
        return ThresholdTable(cells)

    def __iter__(self) -> Iterator[Tuple[Tuple[UseCase, Metric], Threshold]]:
        for use_case in UseCase.ordered():
            for metric in Metric.ordered():
                yield (use_case, metric), self._cells[(use_case, metric)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThresholdTable):
            return NotImplemented
        return self._cells == other._cells

    def __repr__(self) -> str:
        return f"ThresholdTable({len(self._cells)} cells)"


def _check_ordering(use_case: UseCase, metric: Metric, cell: Threshold) -> None:
    """High-quality thresholds must be at least as demanding as minimum.

    For higher-is-better metrics the high threshold may not be below the
    minimum one; for lower-is-better metrics it may not exceed it.
    """
    if cell.high is None:
        return
    for policy in RangePolicy:
        high = cell.value(QualityLevel.HIGH, policy)
        if metric.better(high, cell.minimum) != high and high != cell.minimum:
            raise ThresholdError(
                f"high threshold less demanding than minimum for "
                f"({use_case.value}, {metric.value}): "
                f"min={cell.minimum}, high={high}"
            )


def _loss(percent_min: float, percent_high: float) -> Threshold:
    """Fig. 2 publishes loss in percent; store fractions (lower better,
    so the *high*-quality threshold is the smaller number)."""
    return Threshold(
        minimum=loss_percent_to_fraction(percent_min),
        high=loss_percent_to_fraction(percent_high),
    )


def paper_thresholds() -> ThresholdTable:
    """The canonical Fig. 2 threshold table.

    Values transcribed cell by cell from the poster; the two "Other" cells
    are ``high=None`` and the "50-100 Mb/s" cell is a
    :class:`ThresholdRange`.
    """
    u, m = UseCase, Metric
    cells: Dict[Tuple[UseCase, Metric], Threshold] = {
        # Web Browsing
        (u.WEB_BROWSING, m.DOWNLOAD): Threshold(10.0, 100.0),
        (u.WEB_BROWSING, m.UPLOAD): Threshold(10.0, None),  # "Other"
        (u.WEB_BROWSING, m.LATENCY): Threshold(100.0, 50.0),
        (u.WEB_BROWSING, m.PACKET_LOSS): _loss(1.0, 0.5),
        # Video Streaming
        (u.VIDEO_STREAMING, m.DOWNLOAD): Threshold(25.0, ThresholdRange(50.0, 100.0)),
        (u.VIDEO_STREAMING, m.UPLOAD): Threshold(10.0, 10.0),
        (u.VIDEO_STREAMING, m.LATENCY): Threshold(100.0, 50.0),
        (u.VIDEO_STREAMING, m.PACKET_LOSS): _loss(1.0, 0.1),
        # Video Conferencing
        (u.VIDEO_CONFERENCING, m.DOWNLOAD): Threshold(10.0, 100.0),
        (u.VIDEO_CONFERENCING, m.UPLOAD): Threshold(25.0, 100.0),
        (u.VIDEO_CONFERENCING, m.LATENCY): Threshold(50.0, 20.0),
        (u.VIDEO_CONFERENCING, m.PACKET_LOSS): _loss(0.5, 0.1),
        # Audio Streaming
        (u.AUDIO_STREAMING, m.DOWNLOAD): Threshold(10.0, 50.0),
        (u.AUDIO_STREAMING, m.UPLOAD): Threshold(10.0, 50.0),
        (u.AUDIO_STREAMING, m.LATENCY): Threshold(100.0, 50.0),
        (u.AUDIO_STREAMING, m.PACKET_LOSS): _loss(1.0, 0.1),
        # Online Backup
        (u.ONLINE_BACKUP, m.DOWNLOAD): Threshold(10.0, 10.0),
        (u.ONLINE_BACKUP, m.UPLOAD): Threshold(25.0, 200.0),
        (u.ONLINE_BACKUP, m.LATENCY): Threshold(100.0, 100.0),
        (u.ONLINE_BACKUP, m.PACKET_LOSS): _loss(1.0, 0.1),
        # Gaming
        (u.GAMING, m.DOWNLOAD): Threshold(10.0, 100.0),
        (u.GAMING, m.UPLOAD): Threshold(10.0, None),  # "Other"
        (u.GAMING, m.LATENCY): Threshold(100.0, 50.0),
        (u.GAMING, m.PACKET_LOSS): _loss(1.0, 0.5),
    }
    return ThresholdTable(cells)
