"""Weight tables for the three tiers of the IQB score.

The paper defines three families of integer weights in 0..5:

* ``w_{u,r}`` — how much metric *r* matters for use case *u* (Table 1);
* ``w_{u,r,d}`` — how much dataset *d* is trusted for metric *r* under
  use case *u* (not published in the poster; defaults to equal weight for
  every dataset that can observe the metric);
* ``w_u`` — how much use case *u* contributes to the composite score
  (not published; defaults to equal, with a popularity preset).

Each family normalizes within its tier: ``w' = w / Σw`` (paper §3). A tier
whose weights sum to zero cannot be normalized and raises
:class:`~repro.core.exceptions.WeightError` — except dataset weights,
where a zero-sum (no dataset observes the metric) is a *data* condition
handled by the scorer, not a configuration error.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from .exceptions import WeightError
from .metrics import Metric
from .usecases import UseCase

WEIGHT_MIN = 0
WEIGHT_MAX = 5


def validate_weight(value: int, context: str = "weight") -> int:
    """Check a raw weight is an integer in 0..5 and return it.

    Booleans are rejected: ``True`` is technically an ``int`` in Python
    but almost certainly a caller bug here.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise WeightError(f"{context} must be an int, got {value!r}")
    if not WEIGHT_MIN <= value <= WEIGHT_MAX:
        raise WeightError(
            f"{context} must be in {WEIGHT_MIN}..{WEIGHT_MAX}, got {value}"
        )
    return value


def normalize(weights: Mapping, context: str = "weights") -> Dict:
    """Normalize a weight mapping so values sum to 1 (paper's ``w'``).

    Raises:
        WeightError: if the weights sum to zero.
    """
    total = sum(weights.values())
    if total <= 0:
        raise WeightError(f"cannot normalize {context}: weights sum to {total}")
    return {key: value / total for key, value in weights.items()}


class RequirementWeights:
    """The ``w_{u,r}`` matrix (paper Table 1)."""

    def __init__(self, matrix: Mapping[Tuple[UseCase, Metric], int]) -> None:
        missing = [
            (u, m) for u in UseCase for m in Metric if (u, m) not in matrix
        ]
        if missing:
            raise WeightError(f"requirement weights incomplete; missing {missing}")
        self._matrix: Dict[Tuple[UseCase, Metric], int] = {}
        for key, value in matrix.items():
            use_case, metric = key
            self._matrix[key] = validate_weight(
                value, f"w[{use_case.value},{metric.value}]"
            )
        for use_case in UseCase:
            if sum(self._matrix[(use_case, m)] for m in Metric) == 0:
                raise WeightError(
                    f"all requirement weights are zero for {use_case.value}"
                )

    def get(self, use_case: UseCase, metric: Metric) -> int:
        """Raw integer weight ``w_{u,r}``."""
        return self._matrix[(use_case, metric)]

    def row(self, use_case: UseCase) -> Dict[Metric, int]:
        """All metric weights for one use case."""
        return {m: self._matrix[(use_case, m)] for m in Metric.ordered()}

    def normalized_row(self, use_case: UseCase) -> Dict[Metric, float]:
        """``w'_{u,r}`` for one use case (sums to 1)."""
        return normalize(self.row(use_case), f"w[{use_case.value},*]")

    def replace(
        self, overrides: Mapping[Tuple[UseCase, Metric], int]
    ) -> "RequirementWeights":
        """A copy with some cells overridden (sensitivity analysis)."""
        matrix = dict(self._matrix)
        matrix.update(overrides)
        return RequirementWeights(matrix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequirementWeights):
            return NotImplemented
        return self._matrix == other._matrix

    def __repr__(self) -> str:
        return f"RequirementWeights({len(self._matrix)} cells)"


class UseCaseWeights:
    """The ``w_u`` vector weighting use cases into the composite score."""

    def __init__(self, weights: Mapping[UseCase, int]) -> None:
        missing = [u for u in UseCase if u not in weights]
        if missing:
            raise WeightError(f"use-case weights incomplete; missing {missing}")
        self._weights = {
            u: validate_weight(w, f"w[{u.value}]") for u, w in weights.items()
        }
        if sum(self._weights.values()) == 0:
            raise WeightError("all use-case weights are zero")

    def get(self, use_case: UseCase) -> int:
        """Raw integer weight ``w_u``."""
        return self._weights[use_case]

    def as_dict(self) -> Dict[UseCase, int]:
        """Copy of the raw weight vector."""
        return dict(self._weights)

    def normalized(self) -> Dict[UseCase, float]:
        """``w'_u`` (sums to 1)."""
        return normalize(self._weights, "use-case weights")

    def replace(self, overrides: Mapping[UseCase, int]) -> "UseCaseWeights":
        """A copy with some entries overridden."""
        weights = dict(self._weights)
        weights.update(overrides)
        return UseCaseWeights(weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UseCaseWeights):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:
        return f"UseCaseWeights({self._weights!r})"


class DatasetWeights:
    """The ``w_{u,r,d}`` tensor trusting datasets per (use case, metric).

    Unlike the other two tiers, a zero row here is *legal*: it means no
    dataset observes that metric, and the scorer decides how to handle
    the gap (see ``MissingDataPolicy``). Dataset names are free-form
    strings so user-supplied datasets plug in without registry changes.
    """

    def __init__(
        self, tensor: Mapping[Tuple[UseCase, Metric, str], int]
    ) -> None:
        self._tensor: Dict[Tuple[UseCase, Metric, str], int] = {}
        datasets = set()
        for key, value in tensor.items():
            use_case, metric, dataset = key
            self._tensor[key] = validate_weight(
                value, f"w[{use_case.value},{metric.value},{dataset}]"
            )
            datasets.add(dataset)
        self._datasets: Tuple[str, ...] = tuple(sorted(datasets))
        self._positive: Optional[Tuple[str, ...]] = None

    @property
    def datasets(self) -> Tuple[str, ...]:
        """All dataset names mentioned anywhere in the tensor."""
        return self._datasets

    def positively_weighted(self) -> Tuple[str, ...]:
        """Datasets carrying positive weight anywhere in the tensor.

        This is the set degraded-mode detection checks a region's
        verdicts against (a zero-everywhere dataset can never
        contribute, so its absence is not degradation). Computed once
        and cached: the scorer asks per region, the kernel per batch.
        """
        if self._positive is None:
            positive = {
                dataset
                for (_, _, dataset), weight in self._tensor.items()
                if weight > 0
            }
            self._positive = tuple(
                d for d in self._datasets if d in positive
            )
        return self._positive

    def get(self, use_case: UseCase, metric: Metric, dataset: str) -> int:
        """Raw weight; datasets absent from the tensor weigh 0."""
        return self._tensor.get((use_case, metric, dataset), 0)

    def row(self, use_case: UseCase, metric: Metric) -> Dict[str, int]:
        """Weights of every known dataset for one (use case, metric)."""
        return {
            d: self.get(use_case, metric, d) for d in self._datasets
        }

    def normalized_row(
        self, use_case: UseCase, metric: Metric
    ) -> Dict[str, float]:
        """``w'_{u,r,d}``; raises WeightError when the row sums to zero."""
        return normalize(
            self.row(use_case, metric),
            f"w[{use_case.value},{metric.value},*]",
        )

    def row_total(self, use_case: UseCase, metric: Metric) -> int:
        """Sum of the raw weights in one row (0 means "no data source")."""
        return sum(self.row(use_case, metric).values())

    def replace(
        self, overrides: Mapping[Tuple[UseCase, Metric, str], int]
    ) -> "DatasetWeights":
        """A copy with some entries overridden."""
        tensor = dict(self._tensor)
        tensor.update(overrides)
        return DatasetWeights(tensor)

    @classmethod
    def equal(
        cls,
        capabilities: Mapping[str, Iterable[Metric]],
        weight: int = 1,
    ) -> "DatasetWeights":
        """Equal trust for every dataset that can observe a metric.

        ``capabilities`` maps dataset name → metrics it reports. This is
        the poster's implicit default: all corroborating datasets count
        the same.
        """
        tensor: Dict[Tuple[UseCase, Metric, str], int] = {}
        for dataset, metrics in capabilities.items():
            for metric in metrics:
                for use_case in UseCase:
                    tensor[(use_case, metric, dataset)] = weight
        return cls(tensor)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatasetWeights):
            return NotImplemented
        return self._tensor == other._tensor

    def __repr__(self) -> str:
        return (
            f"DatasetWeights({len(self._tensor)} entries, "
            f"datasets={list(self._datasets)!r})"
        )


def paper_requirement_weights() -> RequirementWeights:
    """The canonical Table 1 weight matrix."""
    u, m = UseCase, Metric
    rows = {
        u.WEB_BROWSING: (3, 2, 4, 4),
        u.VIDEO_STREAMING: (4, 2, 4, 4),
        u.AUDIO_STREAMING: (4, 1, 3, 4),
        u.VIDEO_CONFERENCING: (4, 4, 4, 4),
        u.ONLINE_BACKUP: (4, 4, 2, 4),
        u.GAMING: (4, 4, 5, 4),
    }
    matrix: Dict[Tuple[UseCase, Metric], int] = {}
    for use_case, (dl, ul, lat, loss) in rows.items():
        matrix[(use_case, m.DOWNLOAD)] = dl
        matrix[(use_case, m.UPLOAD)] = ul
        matrix[(use_case, m.LATENCY)] = lat
        matrix[(use_case, m.PACKET_LOSS)] = loss
    return RequirementWeights(matrix)


def equal_use_case_weights(weight: int = 1) -> UseCaseWeights:
    """The default ``w_u``: every use case counts the same."""
    return UseCaseWeights({u: weight for u in UseCase})


def popularity_use_case_weights() -> UseCaseWeights:
    """Optional preset: ``w_u`` proportional to use-case popularity.

    Popularity shares are scaled onto the 1..5 integer grid the paper's
    weights live on.
    """
    weights: Dict[UseCase, int] = {}
    for use_case in UseCase:
        scaled = round(use_case.default_popularity * WEIGHT_MAX)
        weights[use_case] = max(1, min(WEIGHT_MAX, scaled))
    return UseCaseWeights(weights)
