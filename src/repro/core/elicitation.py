"""Simulated expert elicitation.

The paper's thresholds and weights came from interviews and workshops
with more than 60 experts (footnote 1). We cannot re-run that panel, so
this module models it (DESIGN.md §2): each simulated expert holds a
noisy integer opinion around a latent consensus, and the published
value is an aggregate (median by default) of the panel's votes.

Two uses:

* the ``ext-elicit`` bench checks that a 60-expert panel centred on the
  published Table 1 values reliably *recovers* those values under
  realistic disagreement — i.e. the paper's consensus procedure is
  stable at its panel size;
* :func:`panel_agreement` reports per-cell dispersion, the quantity a
  real elicitation would publish as inter-expert agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from .metrics import Metric
from .usecases import UseCase
from .weights import (
    WEIGHT_MAX,
    WEIGHT_MIN,
    RequirementWeights,
    paper_requirement_weights,
)


@dataclass(frozen=True)
class PanelResult:
    """Outcome of one simulated elicitation panel."""

    consensus: RequirementWeights
    #: Per-cell vote standard deviation.
    dispersion: Mapping[Tuple[UseCase, Metric], float]
    #: Fraction of cells whose consensus equals the latent truth.
    recovery_rate: float
    experts: int


def _vote(
    rng: np.random.Generator, latent: int, noise_sigma: float
) -> int:
    """One expert's integer vote around the latent value."""
    vote = int(round(latent + rng.normal(0.0, noise_sigma)))
    return min(WEIGHT_MAX, max(WEIGHT_MIN, vote))


def simulate_panel(
    experts: int = 60,
    noise_sigma: float = 0.8,
    seed: int = 0,
    latent: RequirementWeights = None,  # type: ignore[assignment]
    consensus: str = "median",
) -> PanelResult:
    """Simulate an expert panel voting on every Table 1 cell.

    Args:
        experts: panel size (the paper engaged "more than 60").
        noise_sigma: std-dev of each expert's deviation from the latent
            consensus, in weight units.
        latent: the ground-truth weight matrix experts are noisy around
            (defaults to the published Table 1).
        consensus: ``"median"`` (robust, default) or ``"mean"``
            (rounded) aggregation of the votes.

    Raises:
        ValueError: on a non-positive panel size or unknown consensus.
    """
    if experts < 1:
        raise ValueError(f"experts must be >= 1: {experts}")
    if consensus not in ("median", "mean"):
        raise ValueError(f"consensus must be 'median' or 'mean': {consensus!r}")
    if latent is None:
        latent = paper_requirement_weights()
    rng = np.random.default_rng(seed)
    matrix: Dict[Tuple[UseCase, Metric], int] = {}
    dispersion: Dict[Tuple[UseCase, Metric], float] = {}
    recovered = 0
    cells = 0
    for use_case in UseCase.ordered():
        for metric in Metric.ordered():
            truth = latent.get(use_case, metric)
            votes = [_vote(rng, truth, noise_sigma) for _ in range(experts)]
            if consensus == "median":
                agreed = int(round(float(np.median(votes))))
            else:
                agreed = int(round(float(np.mean(votes))))
            agreed = min(WEIGHT_MAX, max(WEIGHT_MIN, agreed))
            matrix[(use_case, metric)] = agreed
            dispersion[(use_case, metric)] = float(np.std(votes))
            cells += 1
            if agreed == truth:
                recovered += 1
    # Guard against the (extremely unlikely) all-zero row after noise.
    for use_case in UseCase:
        if all(matrix[(use_case, metric)] == 0 for metric in Metric):
            matrix[(use_case, Metric.DOWNLOAD)] = 1
    return PanelResult(
        consensus=RequirementWeights(matrix),
        dispersion=dispersion,
        recovery_rate=recovered / cells,
        experts=experts,
    )


def recovery_curve(
    panel_sizes: Tuple[int, ...] = (5, 10, 20, 40, 60, 100),
    noise_sigma: float = 0.8,
    trials: int = 20,
    seed: int = 0,
) -> Dict[int, float]:
    """Mean recovery rate of the published weights vs panel size.

    Demonstrates why the paper needed a panel of dozens: small panels'
    medians wander off the latent consensus under the same per-expert
    noise.
    """
    out: Dict[int, float] = {}
    for size in panel_sizes:
        rates: List[float] = []
        for trial in range(trials):
            result = simulate_panel(
                experts=size,
                noise_sigma=noise_sigma,
                seed=seed * 10007 + size * 101 + trial,
            )
            rates.append(result.recovery_rate)
        out[size] = float(np.mean(rates))
    return out
