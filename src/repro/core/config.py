"""The complete, serializable IQB configuration.

The poster stresses that IQB "is designed to be easily adapted" (§4):
weights, thresholds and the aggregation rule are all inputs, with the
published values as defaults. :class:`IQBConfig` is the single object
bundling every knob; the canonical paper parameterization is built by
:func:`paper_config`.

Configs round-trip through plain JSON documents (:meth:`IQBConfig.to_dict`
/ :meth:`IQBConfig.from_dict`, plus file helpers) so studies can be
described declaratively. All values serialize in canonical units (Mbit/s,
ms, loss fraction).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from .aggregation import AggregationPolicy, PercentileSemantics
from .exceptions import ConfigurationError
from .metrics import Metric
from .quality import QualityLevel
from .thresholds import (
    RangePolicy,
    Threshold,
    ThresholdRange,
    ThresholdTable,
    paper_thresholds,
)
from .usecases import UseCase
from .weights import (
    DatasetWeights,
    RequirementWeights,
    UseCaseWeights,
    equal_use_case_weights,
    paper_requirement_weights,
)

CONFIG_VERSION = 1

#: Metrics each canonical dataset can observe (drives the default
#: ``w_{u,r,d}``). Ookla's open aggregates publish no packet loss; NDT
#: reports TCP retransmission, which we accept as a loss proxy.
DEFAULT_DATASET_CAPABILITIES: Dict[str, Tuple[Metric, ...]] = {
    "ndt": (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY, Metric.PACKET_LOSS),
    "cloudflare": (
        Metric.DOWNLOAD,
        Metric.UPLOAD,
        Metric.LATENCY,
        Metric.PACKET_LOSS,
    ),
    "ookla": (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY),
}


class ScoreMode(enum.Enum):
    """How a dataset's aggregate maps onto a requirement score.

    * ``BINARY`` — the paper's rule: ``S_{u,r,d} ∈ {0, 1}`` against the
      configured quality level's threshold;
    * ``GRADED`` — a documented extension using both Fig. 2 tiers:
      1.0 when the high-quality threshold is met, 0.5 when only the
      minimum-quality threshold is met, 0 otherwise. Strictly between
      the two binary readings (property-tested);
    * ``CONTINUOUS`` — the refinement the random-markets evaluation
      (ext-qoe bench) motivates: a piecewise-linear ramp anchored at
      the same two published tiers (0.5 at minimum, 1.0 at high), with
      a proportional ramp below minimum so order-of-magnitude
      differences between failing regions stay visible. Monotone in
      every metric (property-tested) and agrees with GRADED exactly at
      the tier anchors.
    """

    BINARY = "binary"
    GRADED = "graded"
    CONTINUOUS = "continuous"


class QuantileMode(enum.Enum):
    """Which quantile plane answers the aggregation rule's queries.

    * ``EXACT`` — the columnar sorted plane: every percentile is the
      exact linear-interpolation answer over the dataset's observations
      (the default, and the parity oracle);
    * ``SKETCH`` — the streaming t-digest plane
      (:class:`repro.measurements.sketchplane.SketchPlane`): O(1)
      amortized per measurement, answers without re-sorting, with
      relative error concentrated away from the tails (the parity suite
      bounds p95/p99 relative error at ≤ 1%). The paper's Ookla path —
      scoring from aggregate summaries rather than raw samples — is the
      precedent for this mode.
    """

    EXACT = "exact"
    SKETCH = "sketch"


@dataclass(frozen=True)
class QuantilePolicy:
    """Per-dataset choice of quantile plane (exact vs sketch).

    ``default`` applies to every dataset without an explicit override;
    ``overrides`` is a sorted tuple of ``(dataset, mode)`` pairs. The
    paper's heterogeneous sources motivate per-dataset choice: a
    high-volume streaming feed (Cloudflare-scale) can run on sketches
    while a small curated dataset stays exact.
    """

    default: QuantileMode = QuantileMode.EXACT
    overrides: Tuple[Tuple[str, QuantileMode], ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.overrides))
        if ordered != self.overrides:
            object.__setattr__(self, "overrides", ordered)

    def mode_for(self, dataset: str) -> QuantileMode:
        """The mode scoring uses for ``dataset``."""
        for name, mode in self.overrides:
            if name == dataset:
                return mode
        return self.default

    def modes(self, datasets: Tuple[str, ...]) -> Tuple[QuantileMode, ...]:
        """Resolved mode per dataset, aligned with ``datasets``."""
        return tuple(self.mode_for(d) for d in datasets)

    def uses_sketch(self, datasets: Tuple[str, ...]) -> bool:
        """True when any of ``datasets`` resolves to the sketch plane."""
        return any(m is QuantileMode.SKETCH for m in self.modes(datasets))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "default": self.default.value,
            "overrides": {name: mode.value for name, mode in self.overrides},
        }

    @classmethod
    def from_dict(cls, document: Optional[Mapping[str, Any]]) -> "QuantilePolicy":
        if document is None:
            return cls()
        return cls(
            default=QuantileMode(document.get("default", "exact")),
            overrides=tuple(
                sorted(
                    (str(name), QuantileMode(mode))
                    for name, mode in dict(
                        document.get("overrides", {})
                    ).items()
                )
            ),
        )


class MissingDataPolicy(enum.Enum):
    """What the scorer does when no dataset observes a requirement.

    * ``SKIP`` — drop the requirement from the use case and renormalize
      the remaining ``w_{u,r}`` (the default: absence of evidence is not
      evidence of failure);
    * ``FAIL`` — treat the requirement as unmet (score 0);
    * ``STRICT`` — raise :class:`~repro.core.exceptions.DataError`.
    """

    SKIP = "skip"
    FAIL = "fail"
    STRICT = "strict"


@dataclass(frozen=True)
class IQBConfig:
    """Everything needed to turn measurements into an IQB score."""

    thresholds: ThresholdTable
    requirement_weights: RequirementWeights
    use_case_weights: UseCaseWeights
    dataset_weights: DatasetWeights
    aggregation: AggregationPolicy = field(default_factory=AggregationPolicy)
    quality_level: QualityLevel = QualityLevel.HIGH
    range_policy: RangePolicy = RangePolicy.LOW
    missing_data: MissingDataPolicy = MissingDataPolicy.SKIP
    score_mode: ScoreMode = ScoreMode.BINARY
    quantiles: QuantilePolicy = field(default_factory=QuantilePolicy)

    def threshold_value(self, use_case: UseCase, metric: Metric) -> float:
        """The scalar threshold this config scores (u, r) against."""
        return self.thresholds.value(
            use_case, metric, self.quality_level, self.range_policy
        )

    def with_(self, **changes: Any) -> "IQBConfig":
        """A modified copy (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **changes)

    def compiled(self) -> "Any":
        """This config flattened into the vectorized kernel's tensors.

        Compiled once and memoized on the instance (safe: the config is
        frozen, and ``with_`` copies start with a fresh cache). The
        kernel import is lazy so loading a config never pays for numpy
        tensor assembly.
        """
        cached = self.__dict__.get("_compiled")
        if cached is None:
            from .kernel import compile_config

            cached = compile_config(self)
            object.__setattr__(self, "_compiled", cached)
        return cached

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON-compatible representation of the full config."""
        thresholds: Dict[str, Dict[str, Any]] = {}
        for (use_case, metric), cell in self.thresholds:
            row = thresholds.setdefault(use_case.value, {})
            row[metric.value] = {
                "minimum": cell.minimum,
                "high": _high_to_json(cell.high),
            }
        requirement_weights = {
            u.value: {
                m.value: self.requirement_weights.get(u, m) for m in Metric
            }
            for u in UseCase
        }
        dataset_weights: Dict[str, Dict[str, Dict[str, int]]] = {}
        for use_case in UseCase:
            for metric in Metric:
                row = self.dataset_weights.row(use_case, metric)
                nonzero = {d: w for d, w in row.items() if w > 0}
                if nonzero:
                    dataset_weights.setdefault(use_case.value, {})[
                        metric.value
                    ] = nonzero
        return {
            "version": CONFIG_VERSION,
            "aggregation": {
                "percentile": self.aggregation.percentile,
                "semantics": self.aggregation.semantics.value,
            },
            "quality_level": self.quality_level.value,
            "range_policy": self.range_policy.value,
            "missing_data": self.missing_data.value,
            "score_mode": self.score_mode.value,
            "quantiles": self.quantiles.to_dict(),
            "thresholds": thresholds,
            "requirement_weights": requirement_weights,
            "use_case_weights": {
                u.value: self.use_case_weights.get(u) for u in UseCase
            },
            "dataset_weights": dataset_weights,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "IQBConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on unknown versions or malformed content.
        """
        version = document.get("version")
        if version != CONFIG_VERSION:
            raise ConfigurationError(
                f"unsupported config version {version!r} "
                f"(expected {CONFIG_VERSION})"
            )
        try:
            thresholds = _thresholds_from_json(document["thresholds"])
            requirement_weights = RequirementWeights(
                {
                    (UseCase(u), Metric(m)): w
                    for u, row in document["requirement_weights"].items()
                    for m, w in row.items()
                }
            )
            use_case_weights = UseCaseWeights(
                {
                    UseCase(u): w
                    for u, w in document["use_case_weights"].items()
                }
            )
            dataset_weights = DatasetWeights(
                {
                    (UseCase(u), Metric(m), d): w
                    for u, metrics in document["dataset_weights"].items()
                    for m, datasets in metrics.items()
                    for d, w in datasets.items()
                }
            )
            aggregation = AggregationPolicy(
                percentile=float(document["aggregation"]["percentile"]),
                semantics=PercentileSemantics(
                    document["aggregation"]["semantics"]
                ),
            )
            quality_level = QualityLevel(document["quality_level"])
            range_policy = RangePolicy(document["range_policy"])
            missing_data = MissingDataPolicy(document["missing_data"])
            score_mode = ScoreMode(document.get("score_mode", "binary"))
            # Absent in pre-streaming configs: default to exact planes.
            quantiles = QuantilePolicy.from_dict(document.get("quantiles"))
        except ConfigurationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed config document: {exc}") from exc
        return cls(
            thresholds=thresholds,
            requirement_weights=requirement_weights,
            use_case_weights=use_case_weights,
            dataset_weights=dataset_weights,
            aggregation=aggregation,
            quality_level=quality_level,
            range_policy=range_policy,
            missing_data=missing_data,
            score_mode=score_mode,
            quantiles=quantiles,
        )

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "IQBConfig":
        """Parse a config from a JSON string."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"config is not valid JSON: {exc}") from exc
        return cls.from_dict(document)

    def save(self, path: Union[str, Path]) -> None:
        """Write the config to a JSON file."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "IQBConfig":
        """Read a config from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def _high_to_json(high: Union[float, ThresholdRange, None]) -> Any:
    if high is None:
        return None
    if isinstance(high, ThresholdRange):
        return {"low": high.low, "high": high.high}
    return high


def _high_from_json(value: Any) -> Union[float, ThresholdRange, None]:
    if value is None:
        return None
    if isinstance(value, Mapping):
        return ThresholdRange(float(value["low"]), float(value["high"]))
    return float(value)


def _thresholds_from_json(document: Mapping[str, Any]) -> ThresholdTable:
    cells: Dict[Tuple[UseCase, Metric], Threshold] = {}
    for use_case_name, row in document.items():
        for metric_name, cell in row.items():
            cells[(UseCase(use_case_name), Metric(metric_name))] = Threshold(
                minimum=float(cell["minimum"]),
                high=_high_from_json(cell["high"]),
            )
    return ThresholdTable(cells)


def paper_config(
    datasets: Optional[Mapping[str, Tuple[Metric, ...]]] = None,
    **overrides: Any,
) -> IQBConfig:
    """The canonical paper parameterization.

    Fig. 2 thresholds, Table 1 requirement weights, equal use-case
    weights, equal dataset weights over the default NDT/Cloudflare/Ookla
    capabilities, and the literal 95th-percentile rule. Keyword overrides
    are applied on top (e.g. ``paper_config(quality_level=QualityLevel.MINIMUM)``).
    """
    capabilities = (
        dict(datasets) if datasets is not None else DEFAULT_DATASET_CAPABILITIES
    )
    config = IQBConfig(
        thresholds=paper_thresholds(),
        requirement_weights=paper_requirement_weights(),
        use_case_weights=equal_use_case_weights(),
        dataset_weights=DatasetWeights.equal(capabilities),
    )
    if overrides:
        config = config.with_(**overrides)
    return config
