"""The IQB core: the paper's contribution.

Public surface of the framework — use cases, metrics, thresholds
(Fig. 2), weights (Table 1), the aggregation rule, the score formulas
(Eqs. 1-5), and the analysis extensions (explain / sensitivity /
uncertainty / elicitation).
"""

from .aggregation import (
    AggregationPolicy,
    PercentileSemantics,
    QuantileSource,
    SequenceSource,
    aggregate_metric,
    percentile_of,
)
from .compare import (
    Attribution,
    AttributionEntry,
    Contribution,
    attribute_difference,
    render_attribution,
    requirement_contributions,
)
from .config import (
    DEFAULT_DATASET_CAPABILITIES,
    IQBConfig,
    MissingDataPolicy,
    QuantileMode,
    QuantilePolicy,
    ScoreMode,
    paper_config,
)
from .exceptions import (
    AggregationError,
    BackendError,
    ConfigurationError,
    DataError,
    IQBError,
    ProbeError,
    SchemaError,
    ThresholdError,
    WeightError,
)
from .framework import IQBFramework, region_scores_table
from .lint import LintFinding, Severity, lint_config
from .targets import (
    ThresholdGap,
    VerdictMargin,
    metric_targets,
    render_targets,
    threshold_gaps,
    verdict_margins,
)
from .metrics import (
    Direction,
    Metric,
    loss_fraction_to_percent,
    loss_percent_to_fraction,
)
from .quality import QualityLevel, credit_scale, describe, grade
from .scoring import (
    DatasetVerdict,
    RequirementScore,
    ScoreBreakdown,
    UseCaseScore,
    flat_score,
    score_region,
    score_regions,
    score_requirement,
    score_use_case,
)
from .thresholds import (
    RangePolicy,
    Threshold,
    ThresholdRange,
    ThresholdTable,
    paper_thresholds,
)
from .usecases import UseCase
from .weights import (
    DatasetWeights,
    RequirementWeights,
    UseCaseWeights,
    equal_use_case_weights,
    paper_requirement_weights,
    popularity_use_case_weights,
)

__all__ = [
    "AggregationError",
    "AggregationPolicy",
    "Attribution",
    "AttributionEntry",
    "BackendError",
    "ConfigurationError",
    "Contribution",
    "DEFAULT_DATASET_CAPABILITIES",
    "DataError",
    "DatasetVerdict",
    "DatasetWeights",
    "Direction",
    "IQBConfig",
    "IQBError",
    "IQBFramework",
    "LintFinding",
    "Metric",
    "MissingDataPolicy",
    "QuantileMode",
    "QuantilePolicy",
    "PercentileSemantics",
    "ProbeError",
    "QualityLevel",
    "QuantileSource",
    "RangePolicy",
    "RequirementScore",
    "RequirementWeights",
    "SchemaError",
    "ScoreBreakdown",
    "ScoreMode",
    "SequenceSource",
    "Severity",
    "Threshold",
    "ThresholdError",
    "ThresholdGap",
    "ThresholdRange",
    "ThresholdTable",
    "UseCase",
    "UseCaseScore",
    "UseCaseWeights",
    "VerdictMargin",
    "WeightError",
    "aggregate_metric",
    "attribute_difference",
    "credit_scale",
    "describe",
    "equal_use_case_weights",
    "flat_score",
    "grade",
    "lint_config",
    "loss_fraction_to_percent",
    "metric_targets",
    "loss_percent_to_fraction",
    "paper_config",
    "paper_requirement_weights",
    "paper_thresholds",
    "percentile_of",
    "popularity_use_case_weights",
    "region_scores_table",
    "render_attribution",
    "render_targets",
    "requirement_contributions",
    "score_region",
    "score_regions",
    "score_requirement",
    "score_use_case",
    "threshold_gaps",
    "verdict_margins",
]
