"""Measurement aggregation: the paper's "95th percentile" rule.

IQB evaluates a region by aggregating each dataset's measurements with
the 95th percentile and comparing the aggregate against the threshold
(paper §2). Two subtleties are configurable here:

* **percentile** — 95 by default, sweepable for ablations;
* **semantics** — the poster's text applies the 95th percentile to every
  metric (``LITERAL``). For packet loss and latency (lower is better)
  that is a conservative tail statistic: "95 % of measurements are at
  most X". Applied to throughput (higher is better) the same rule is
  *optimistic* — the region passes when merely its top 5 % of tests are
  fast. ``CONSERVATIVE`` flips the percentile to ``100 - p`` for
  higher-is-better metrics so the statistic is a worst-tail bound for
  every metric. The difference between the two is quantified by the
  ``ext-sens`` ablation bench.

Scoring consumes anything implementing the small :class:`QuantileSource`
protocol, so raw per-test collections and Ookla-style pre-aggregated
tables plug in interchangeably.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from .exceptions import AggregationError
from .metrics import Direction, Metric


class PercentileSemantics(enum.Enum):
    """How the configured percentile applies across metric directions."""

    LITERAL = "literal"
    CONSERVATIVE = "conservative"


@dataclass(frozen=True)
class AggregationPolicy:
    """Configured aggregation rule (percentile + direction semantics)."""

    percentile: float = 95.0
    semantics: PercentileSemantics = PercentileSemantics.LITERAL

    def __post_init__(self) -> None:
        if not 0.0 <= self.percentile <= 100.0:
            raise AggregationError(
                f"percentile out of [0, 100]: {self.percentile!r}"
            )

    def effective_percentile(self, metric: Metric) -> float:
        """The percentile actually evaluated for ``metric``.

        Under ``LITERAL`` semantics this is the configured percentile for
        every metric. Under ``CONSERVATIVE`` semantics, higher-is-better
        metrics use the mirrored ``100 - p`` so the aggregate is always a
        worst-tail statistic.
        """
        if (
            self.semantics is PercentileSemantics.CONSERVATIVE
            and metric.direction is Direction.HIGHER_IS_BETTER
        ):
            return 100.0 - self.percentile
        return self.percentile


@runtime_checkable
class QuantileSource(Protocol):
    """Anything that can answer quantile queries per metric.

    ``percentile`` is in [0, 100]. Implementations return ``None`` when
    they carry no observations for the metric (e.g. Ookla aggregates
    have no packet loss), and raise nothing: missing data is an expected
    condition the scorer resolves via dataset weights.
    """

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Quantile of the stored measurements, or None if unobserved."""
        ...

    def sample_count(self, metric: Metric) -> int:
        """Number of observations backing the metric (0 if unobserved)."""
        ...


#: Below this many values the pure-Python interpolation beats the cost of
#: building a numpy array and dispatching ``np.percentile``.
_SMALL_N = 8


def _interpolate_sorted(values: Sequence[float], percentile: float) -> float:
    """Linear interpolation over an already-sorted sequence.

    Replicates ``np.percentile``'s "linear" method bit-for-bit, including
    its ``t >= 0.5`` lerp branch, so callers holding pre-sorted data get
    answers identical to the numpy path.
    """
    n = len(values)
    pos = (percentile / 100.0) * (n - 1)
    lo = math.floor(pos)
    hi = min(lo + 1, n - 1)
    gamma = pos - lo
    a = float(values[lo])
    b = float(values[hi])
    if gamma >= 0.5:
        return b - (b - a) * (1.0 - gamma)
    return a + (b - a) * gamma


def percentile_of(
    values: Sequence[float],
    percentile: float,
    assume_sorted: bool = False,
) -> float:
    """Linear-interpolation percentile of a non-empty value sequence.

    This is the single percentile definition used across the project, so
    exact collections, the streaming estimator's tests, and the scorer
    all agree on interpolation behaviour.

    Args:
        values: observations; any sequence (list, tuple, numpy array).
        percentile: in [0, 100].
        assume_sorted: when True, ``values`` is taken to be sorted
            ascending and the answer is computed by O(1) index
            interpolation — no copy, no re-sort. The caller is
            responsible for the sortedness invariant.

    Raises:
        AggregationError: if ``values`` is empty or percentile is out of
            range.
    """
    if len(values) == 0:
        raise AggregationError("cannot take a percentile of no values")
    if not 0.0 <= percentile <= 100.0:
        raise AggregationError(f"percentile out of [0, 100]: {percentile!r}")
    if assume_sorted:
        return _interpolate_sorted(values, percentile)
    if len(values) <= _SMALL_N:
        return _interpolate_sorted(sorted(values), percentile)
    return float(np.percentile(np.asarray(values, dtype=float), percentile))


def aggregate_metric(
    source: QuantileSource,
    metric: Metric,
    policy: AggregationPolicy,
) -> Optional[float]:
    """Apply the policy's percentile rule to one metric of one source.

    Returns ``None`` when the source has no observations for the metric.
    """
    return source.quantile(metric, policy.effective_percentile(metric))


@dataclass(frozen=True)
class SequenceSource:
    """Adapter making plain per-metric value sequences a QuantileSource.

    Useful in tests and examples:

    >>> src = SequenceSource(download_mbps=[50.0, 60.0, 70.0])
    >>> src.quantile(Metric.DOWNLOAD, 50.0)
    60.0
    >>> src.quantile(Metric.LATENCY, 50.0) is None
    True
    """

    download_mbps: Optional[Sequence[float]] = None
    upload_mbps: Optional[Sequence[float]] = None
    latency_ms: Optional[Sequence[float]] = None
    packet_loss: Optional[Sequence[float]] = None

    def _values(self, metric: Metric) -> Optional[Sequence[float]]:
        values = getattr(self, metric.field_name)
        if values is None or len(values) == 0:
            return None
        return values

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        values = self._values(metric)
        if values is None:
            return None
        return percentile_of(values, percentile)

    def sample_count(self, metric: Metric) -> int:
        values = self._values(metric)
        return 0 if values is None else len(values)
