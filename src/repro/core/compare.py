"""Score attribution: *why* do two IQB scores differ?

A barometer's consumers constantly compare two numbers — this month vs
last month, region A vs region B, policy config vs paper config — and
need the difference decomposed into causes. Because the IQB score is a
weighted sum over (use case, requirement) cells (Eq. 5), every
breakdown admits an exact additive decomposition:

``S_IQB = Σ_{u,r} contribution(u, r)`` where
``contribution(u, r) = w'_u · w'_{u,r} · S_{u,r}`` under the
breakdown's own effective normalizations.

:func:`requirement_contributions` computes that decomposition, and
:func:`attribute_difference` subtracts two of them cell-by-cell: the
per-cell deltas sum *exactly* to the score difference (property-tested),
so "conferencing latency explains −0.042 of the −0.07 drop" is a
mathematically complete statement, not a heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .metrics import Metric
from .scoring import ScoreBreakdown
from .usecases import UseCase


@dataclass(frozen=True)
class Contribution:
    """One cell's exact additive share of ``S_IQB``."""

    use_case: UseCase
    metric: Metric
    agreement: float
    effective_weight: float

    @property
    def value(self) -> float:
        """The cell's contribution to the composite score."""
        return self.effective_weight * self.agreement


def requirement_contributions(
    breakdown: ScoreBreakdown,
) -> Dict[Tuple[UseCase, Metric], Contribution]:
    """Exact additive decomposition of a breakdown's score.

    Cells skipped for missing data carry zero effective weight (they
    did not participate in the score). The contributions sum to
    ``breakdown.value`` exactly.
    """
    total_u = sum(entry.weight for entry in breakdown.use_cases)
    out: Dict[Tuple[UseCase, Metric], Contribution] = {}
    for entry in breakdown.use_cases:
        w_u = entry.weight / total_u
        contributing = [r for r in entry.requirements if r.value is not None]
        total_r = sum(r.weight for r in contributing)
        for req in entry.requirements:
            if req.value is None or total_r <= 0:
                weight = 0.0
                agreement = 0.0
            else:
                weight = w_u * req.weight / total_r
                agreement = req.value
            out[(entry.use_case, req.metric)] = Contribution(
                use_case=entry.use_case,
                metric=req.metric,
                agreement=agreement,
                effective_weight=weight,
            )
    return out


@dataclass(frozen=True)
class AttributionEntry:
    """One cell's share of the difference between two scores."""

    use_case: UseCase
    metric: Metric
    contribution_a: float
    contribution_b: float

    @property
    def delta(self) -> float:
        """b minus a: positive means the cell pushed b's score higher."""
        return self.contribution_b - self.contribution_a


@dataclass(frozen=True)
class Attribution:
    """Full decomposition of ``S_b − S_a`` into per-cell deltas."""

    score_a: float
    score_b: float
    entries: Tuple[AttributionEntry, ...]

    @property
    def difference(self) -> float:
        """The total score difference being explained."""
        return self.score_b - self.score_a

    def top(self, n: int = 5) -> List[AttributionEntry]:
        """The n cells with the largest absolute deltas."""
        return sorted(self.entries, key=lambda e: -abs(e.delta))[:n]

    def check(self) -> float:
        """Residual of the decomposition (zero up to float error)."""
        return self.difference - sum(entry.delta for entry in self.entries)


def attribute_difference(
    a: ScoreBreakdown, b: ScoreBreakdown
) -> Attribution:
    """Decompose ``b.value − a.value`` into per-cell contributions.

    Works for any pair of breakdowns — two regions under one config,
    one region under two configs, or two time windows — because each
    side's contributions are computed under its own effective weights.
    """
    contributions_a = requirement_contributions(a)
    contributions_b = requirement_contributions(b)
    entries: List[AttributionEntry] = []
    for use_case in UseCase.ordered():
        for metric in Metric.ordered():
            key = (use_case, metric)
            entries.append(
                AttributionEntry(
                    use_case=use_case,
                    metric=metric,
                    contribution_a=contributions_a[key].value,
                    contribution_b=contributions_b[key].value,
                )
            )
    return Attribution(
        score_a=a.value, score_b=b.value, entries=tuple(entries)
    )


def render_attribution(attribution: Attribution, top: int = 6) -> str:
    """Plain-text summary of an attribution, largest movers first."""
    lines = [
        f"Score difference: {attribution.score_b:.3f} - "
        f"{attribution.score_a:.3f} = {attribution.difference:+.3f}"
    ]
    for entry in attribution.top(top):
        if entry.delta == 0.0:
            continue
        lines.append(
            f"  {entry.delta:+.4f}  {entry.use_case.value}/"
            f"{entry.metric.value} "
            f"({entry.contribution_a:.3f} -> {entry.contribution_b:.3f})"
        )
    if len(lines) == 1:
        lines.append("  (no per-cell differences)")
    return "\n".join(lines)
