"""Exception hierarchy for the IQB reproduction.

Every error raised by :mod:`repro` derives from :class:`IQBError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class IQBError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(IQBError):
    """A config object (weights, thresholds, policies) is invalid.

    Raised eagerly at construction or load time, never during scoring:
    a successfully built :class:`~repro.core.config.IQBConfig` is always
    scoreable.
    """


class WeightError(ConfigurationError):
    """A weight is outside the integer range 0..5 or a tier sums to zero."""


class ThresholdError(ConfigurationError):
    """A threshold value is missing, non-positive, or inverted."""


class SchemaError(IQBError):
    """A measurement record or serialized document fails validation."""


class DataError(IQBError):
    """A dataset is unusable for the requested operation.

    Examples: asking for the 95th percentile of an empty measurement set,
    or scoring a requirement for which no dataset has observations.
    """


class AggregationError(DataError):
    """An aggregation request cannot be satisfied (e.g. empty input)."""


class IntegrityError(DataError):
    """Stored or transferred bytes fail their content digest.

    Raised by the dataset cache when an artifact's SHA-256 does not
    match its manifest entry. The offending bytes are quarantined, never
    served: a barometer that silently scored corrupted aggregates would
    publish numbers nobody can defend.
    """


class RemoteError(IQBError):
    """A cache remote failed to serve or accept a transfer.

    Covers transport-level failures (unreachable hosts, 5xx responses,
    reset connections) — the transient family the retry policy and
    circuit breaker exist for. Digest mismatches are
    :class:`IntegrityError`, not this.
    """


class ProbeError(IQBError):
    """A probe test failed to execute against its backend."""


class BackendError(ProbeError):
    """The measurement backend rejected or failed a probe request."""
