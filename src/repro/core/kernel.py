"""Batched numpy scoring kernel: Eqs. 1-5 over every region at once.

The scalar path (:mod:`repro.core.scoring`) walks region → use case →
requirement → dataset in Python, re-querying config dicts and building
dataclasses cell by cell. At barometer scale that loop *is* the cost of
a refresh, so this module re-expresses the same math as dense tensor
operations:

* :class:`CompiledConfig` — :class:`~repro.core.config.IQBConfig`
  precompiled once into aligned numpy tensors: the dataset-weight
  tensor ``W[u, r, d]``, the requirement-weight matrix ``w[u, r]``, the
  use-case weight vector ``w[u]``, threshold matrices for the scored /
  MINIMUM / HIGH tiers, a per-metric direction mask, the effective
  percentile per metric, and the positively-weighted dataset mask that
  drives degraded-mode detection.
* :func:`score_cube` — consumes an aggregate cube ``A[region, dataset,
  metric]`` (plus sample counts) produced by
  ``ColumnarStore.aggregate_cube`` and evaluates every verdict,
  requirement, use case, and composite score as masked matrix ops:
  threshold compares for BINARY, the two-tier compare for GRADED, the
  piecewise ramp for CONTINUOUS, and the three weighted-average tiers
  (Eq. 1 → Eq. 2-3 → Eq. 4) with missing cells masked out of each
  normalization (degraded-mode renormalization).

Numerical contract — the whole point of keeping the scalar path as the
oracle: for a given batch the kernel reconstructs ``ScoreBreakdown``
trees that are *bit-identical* to the scalar path's under BINARY and
GRADED scoring, and within 1e-12 under CONTINUOUS (in practice also
bit-identical; the documented tolerance covers summation-order changes
on axes longer than numpy's sequential-sum cutoff). Three facts make
this work:

1. the cube's quantiles replicate
   :func:`~repro.core.aggregation._interpolate_sorted` operation for
   operation over the same sorted values;
2. every weighted sum runs over a fixed short axis (4 requirements, 6
   use cases, the configured datasets) where numpy reduces in the same
   sequential order as the scalar ``sum``; masked-out cells contribute
   an exact ``0.0``, which is additively inert;
3. the error paths raise the scalar path's exact exceptions in the
   scalar path's encounter order (region, use case, requirement).

The kernel stays in ``repro.core``: it never imports the measurements
layer, it only consumes the cube arrays handed to it (duck-typed via
:func:`score_store`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.obs import counter, span

from .config import IQBConfig, MissingDataPolicy, QuantileMode, ScoreMode
from .exceptions import DataError
from .metrics import Direction, Metric
from .quality import QualityLevel
from .scoring import (
    _REGION_SCORES,
    KERNELS,
    DatasetVerdict,
    RequirementScore,
    ScoreBreakdown,
    UseCaseScore,
)
from .usecases import UseCase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Span

__all__ = [
    "KERNELS",
    "CompiledConfig",
    "compile_config",
    "score_cube",
    "score_cube_values",
    "score_store",
    "score_values",
]

# The vectorized path answers the six-use-case percentile fan-out from
# the shared aggregate cube instead of per-view memo dicts; the reuse is
# reported on the same counter the view cache uses so the quantile-plane
# telemetry stays comparable across kernels.
_CUBE_FANOUT_HITS = counter("quantile_cache.columnar.hits")


@dataclass(frozen=True, eq=False)
class CompiledConfig:
    """An :class:`IQBConfig` flattened into kernel-ready tensors.

    Axis conventions (shared with the aggregate cube): ``u`` indexes
    :meth:`UseCase.ordered`, ``r`` indexes :meth:`Metric.ordered`,
    ``d`` indexes the config's sorted dataset names. The ``*_int``
    twins keep the raw integer weights for breakdown reconstruction.
    """

    use_cases: Tuple[UseCase, ...]
    metrics: Tuple[Metric, ...]
    datasets: Tuple[str, ...]
    #: effective aggregation percentile per metric (direction-resolved)
    percentiles: Tuple[float, ...]
    #: ``w_{u,r,d}`` as float64, shape (U, R, D)
    dataset_w: np.ndarray
    #: ``w_{u,r}`` as float64, shape (U, R)
    req_w: np.ndarray
    #: ``w_u`` as float64, shape (U,)
    uc_w: np.ndarray
    #: threshold the config scores against (quality level + range policy)
    thr_scored: np.ndarray
    #: MINIMUM-tier thresholds, shape (U, R)
    thr_minimum: np.ndarray
    #: HIGH-tier thresholds (range-policy resolved, "Other" falls back
    #: to minimum), shape (U, R)
    thr_high: np.ndarray
    #: True where the metric is higher-is-better, shape (R,)
    higher: np.ndarray
    #: True where the dataset carries positive weight somewhere (D,)
    positive: np.ndarray
    score_mode: ScoreMode
    missing_data: MissingDataPolicy
    # Raw integers and Python lists for reconstruction (no ndarray
    # scalars may leak into breakdowns: json needs bool/int, and the
    # scalar path's dataclasses carry Python types).
    dataset_w_int: Tuple[Tuple[Tuple[int, ...], ...], ...]
    req_w_int: Tuple[Tuple[int, ...], ...]
    uc_w_int: Tuple[int, ...]
    positive_list: Tuple[bool, ...]


def compile_config(config: IQBConfig) -> CompiledConfig:
    """Flatten ``config`` into dense tensors (done once per config).

    Prefer :meth:`IQBConfig.compiled`, which memoizes the result on the
    (frozen) config instance.
    """
    use_cases = UseCase.ordered()
    metrics = Metric.ordered()
    datasets = config.dataset_weights.datasets
    dataset_w_int = tuple(
        tuple(
            tuple(config.dataset_weights.get(u, m, d) for d in datasets)
            for m in metrics
        )
        for u in use_cases
    )
    req_w_int = tuple(
        tuple(config.requirement_weights.get(u, m) for m in metrics)
        for u in use_cases
    )
    uc_w_int = tuple(config.use_case_weights.get(u) for u in use_cases)
    thr_scored = np.array(
        [
            [config.threshold_value(u, m) for m in metrics]
            for u in use_cases
        ],
        dtype=np.float64,
    )
    thr_minimum = np.array(
        [
            [
                config.thresholds.value(u, m, QualityLevel.MINIMUM)
                for m in metrics
            ]
            for u in use_cases
        ],
        dtype=np.float64,
    )
    thr_high = np.array(
        [
            [
                config.thresholds.value(
                    u, m, QualityLevel.HIGH, config.range_policy
                )
                for m in metrics
            ]
            for u in use_cases
        ],
        dtype=np.float64,
    )
    positive_set = set(config.dataset_weights.positively_weighted())
    positive_list = tuple(d in positive_set for d in datasets)
    return CompiledConfig(
        use_cases=use_cases,
        metrics=metrics,
        datasets=datasets,
        percentiles=tuple(
            config.aggregation.effective_percentile(m) for m in metrics
        ),
        dataset_w=np.array(dataset_w_int, dtype=np.float64).reshape(
            len(use_cases), len(metrics), len(datasets)
        ),
        req_w=np.array(req_w_int, dtype=np.float64),
        uc_w=np.array(uc_w_int, dtype=np.float64),
        thr_scored=thr_scored,
        thr_minimum=thr_minimum,
        thr_high=thr_high,
        higher=np.array(
            [m.direction is Direction.HIGHER_IS_BETTER for m in metrics]
        ),
        positive=np.array(positive_list, dtype=bool),
        score_mode=config.score_mode,
        missing_data=config.missing_data,
        dataset_w_int=dataset_w_int,
        req_w_int=req_w_int,
        uc_w_int=uc_w_int,
        positive_list=positive_list,
    )


def _verdict_scores(
    aggregates: np.ndarray, cc: CompiledConfig
) -> np.ndarray:
    """``S_{u,r,d}`` for every cube cell, shape (G, U, R, D).

    ``aggregates`` is broadcast as (G, 1, R, D) with NaN where a dataset
    did not observe a metric; NaN cells produce garbage scores that the
    caller masks out, so every comparison/division runs under errstate
    suppression. Each arithmetic branch replicates the scalar
    :func:`repro.core.scoring._verdict_value` /
    :func:`repro.core.scoring._continuous_value` expression op for op.
    """
    thr = cc.thr_scored[None, :, :, None]
    higher = cc.higher[None, None, :, None]
    if cc.score_mode is ScoreMode.BINARY:
        with np.errstate(invalid="ignore"):
            meets = np.where(higher, aggregates >= thr, aggregates <= thr)
        return meets.astype(np.float64)
    mn = cc.thr_minimum[None, :, :, None]
    hi = cc.thr_high[None, :, :, None]
    # Both np.where lanes are evaluated, so masked-out cells (NaN
    # aggregates, denormal ratios) trip float flags the selected lane
    # never does; suppress them all.
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        if cc.score_mode is ScoreMode.GRADED:
            meets_high = np.where(
                higher, aggregates >= hi, aggregates <= hi
            )
            meets_min = np.where(
                higher, aggregates >= mn, aggregates <= mn
            )
            return np.where(
                meets_high, 1.0, np.where(meets_min, 0.5, 0.0)
            )
        # CONTINUOUS: the two-direction piecewise ramp.
        mid_h = np.where(
            hi == mn, 1.0, 0.5 + 0.5 * (aggregates - mn) / (hi - mn)
        )
        below_h = np.where(
            mn <= 0, 0.0, 0.5 * np.maximum(0.0, aggregates) / mn
        )
        value_h = np.where(
            aggregates >= hi,
            1.0,
            np.where(aggregates >= mn, mid_h, below_h),
        )
        mid_l = np.where(
            mn == hi, 1.0, 0.5 + 0.5 * (mn - aggregates) / (mn - hi)
        )
        below_l = np.where(aggregates <= 0, 1.0, 0.5 * mn / aggregates)
        value_l = np.where(
            aggregates <= hi,
            1.0,
            np.where(aggregates <= mn, mid_l, below_l),
        )
        return np.where(higher, value_h, value_l)


def score_cube(
    regions: Tuple[str, ...],
    aggregates: np.ndarray,
    counts: np.ndarray,
    config: IQBConfig,
    quantile_source: str = "exact",
) -> Dict[str, ScoreBreakdown]:
    """Score every region of an aggregate cube in one batched pass.

    Args:
        regions: region names, aligned with the cube's first axis.
        aggregates: ``A[region, dataset, metric]`` percentile
            aggregates, NaN where a dataset has no observations.
        counts: matching per-cell sample counts.
        config: the scoring configuration (compiled on first use).
        quantile_source: provenance stamp for the rebuilt breakdowns
            (which plane produced ``aggregates``).

    Returns:
        region → :class:`ScoreBreakdown`, reconstructed to match the
        scalar path object for object (see the module contract).

    Raises:
        DataError: exactly where and with exactly the message the
            scalar path raises — empty batches, STRICT missing data,
            use cases with no data or only zero-weight requirements.
    """
    cc, tensors = _score_tensors(regions, aggregates, counts, config)
    verdict, observed, s_ur, s_u, s_iqb, observed_dataset = tensors

    with span("rebuild_breakdowns"):
        # (G, D, R) → (G, R, D) so the reconstruction loop's innermost
        # dataset scan indexes one flat row instead of striding.
        return _rebuild(
            regions,
            cc,
            aggregates.transpose(0, 2, 1).tolist(),
            counts.transpose(0, 2, 1).tolist(),
            verdict.tolist(),
            observed.tolist(),
            s_ur.tolist(),
            s_u.tolist(),
            s_iqb.tolist(),
            observed_dataset.tolist(),
            cc.missing_data is MissingDataPolicy.FAIL,
            quantile_source,
        )


def score_cube_values(
    regions: Tuple[str, ...],
    aggregates: np.ndarray,
    counts: np.ndarray,
    config: IQBConfig,
) -> Dict[str, float]:
    """Composite S_IQB per region, skipping breakdown reconstruction.

    Identical math and identical error behaviour to :func:`score_cube`
    — every value equals ``score_cube(...)[region].value`` bit for bit
    — but the output is just the Eq. 4 composite per region. Rebuilding
    the full ``ScoreBreakdown`` trees costs more than the tensor pass
    itself at national scale (~25k dataclass objects for 256 regions),
    so consumers that only need scores (dashboards, sweeps, rollup
    monitors) should take this path.
    """
    _, tensors = _score_tensors(regions, aggregates, counts, config)
    return dict(zip(regions, tensors[4].tolist()))


def _score_tensors(
    regions: Tuple[str, ...],
    aggregates: np.ndarray,
    counts: np.ndarray,
    config: IQBConfig,
) -> Tuple[CompiledConfig, Tuple[np.ndarray, ...]]:
    """The batched Eq. 1 → Eq. 4 tensor pass shared by both outputs."""
    if not len(regions):
        raise DataError("score_regions needs at least one region of data")
    cc = config.compiled()
    _REGION_SCORES.inc(len(regions))
    policy = cc.missing_data

    # (G, 1, R, D) observation tensors against (1, U, R, D) weights.
    agg = aggregates.transpose(0, 2, 1)[:, None, :, :]
    weights = cc.dataset_w[None, :, :, :]
    observed = ~np.isnan(agg) & (weights > 0.0)

    # Eq. 1 — requirement agreement over the observed datasets.
    verdict = _verdict_scores(agg, cc)
    weights_m = np.where(observed, weights, 0.0)
    den1 = weights_m.sum(axis=3)
    num1 = (weights_m * np.where(observed, verdict, 0.0)).sum(axis=3)
    with np.errstate(invalid="ignore"):
        s_ur = np.divide(
            num1, den1, out=np.zeros_like(num1), where=den1 > 0.0
        )
    observed_req = observed.any(axis=3)

    # Eq. 2 — use-case scores over the contributing requirements,
    # with the scalar path's error taxonomy in its encounter order.
    if policy is MissingDataPolicy.FAIL:
        contributing = np.ones_like(observed_req)
    else:
        contributing = observed_req
    req_w = cc.req_w[None, :, :]
    den2 = np.where(contributing, req_w, 0.0).sum(axis=2)
    any_contrib = contributing.any(axis=2)
    bad = ~any_contrib | (den2 <= 0.0)
    if policy is MissingDataPolicy.STRICT:
        bad = bad | ~observed_req.all(axis=2)
    if bad.any():
        _raise_first_error(bad, observed_req, any_contrib, cc)
    num2 = (
        np.where(contributing, req_w, 0.0)
        * np.where(observed_req, s_ur, 0.0)
    ).sum(axis=2)
    s_u = num2 / den2

    # Eq. 4 — the composite score.
    s_iqb = (cc.uc_w[None, :] * s_u).sum(axis=1) / cc.uc_w.sum()

    # Degraded-mode bookkeeping: configured-positive datasets that
    # contributed no verdict anywhere in a region's breakdown.
    observed_dataset = observed.any(axis=(1, 2))

    return cc, (verdict, observed, s_ur, s_u, s_iqb, observed_dataset)


def _raise_first_error(
    bad: np.ndarray,
    observed_req: np.ndarray,
    any_contrib: np.ndarray,
    cc: CompiledConfig,
) -> None:
    """Raise the scalar path's first error, in its (g, u, r) order."""
    g, u = (int(i) for i in np.argwhere(bad)[0])
    missing = ~observed_req[g, u]
    if cc.missing_data is MissingDataPolicy.STRICT and missing.any():
        r = int(np.argmax(missing))
        raise DataError(
            f"no dataset observes {cc.metrics[r].value} for "
            f"{cc.use_cases[u].value} and missing-data policy is strict"
        )
    if not any_contrib[g, u]:
        raise DataError(
            f"no requirement of {cc.use_cases[u].value} has any data; "
            f"cannot compute a use-case score"
        )
    raise DataError(
        f"all observed requirements of {cc.use_cases[u].value} "
        f"have zero weight"
    )


def _rebuild(
    regions,
    cc: CompiledConfig,
    agg_l,
    count_l,
    verdict_l,
    observed_l,
    s_ur_l,
    s_u_l,
    s_iqb_l,
    observed_dataset_l,
    fail_policy: bool,
    quantile_source: str = "exact",
) -> Dict[str, ScoreBreakdown]:
    """Reconstruct the scalar path's breakdown trees from kernel output.

    All inputs arrive pre-``tolist()``-ed so the loop touches only
    Python floats/bools/ints (aggregates and counts already transposed
    to (G, R, D)). Instances are built by ``__new__`` plus a direct
    ``__dict__`` fill from per-(u, r, d) template dicts: the config-
    constant fields (dataset, threshold, weight, metric, use case) are
    prebuilt once per compiled config, so each of the ~25k verdict
    objects of a national batch costs one ``dict.copy`` plus the four
    region-varying entries. The values are valid by construction —
    every score came off a kernel tensor that already satisfies the
    dataclass invariants — so skipping ``__init__`` is safe, and it is
    what keeps reconstruction from eating the kernel's win.
    """
    datasets = cc.datasets
    use_cases = cc.use_cases
    positive = cc.positive_list
    dataset_range = tuple(range(len(datasets)))
    templates = _templates(cc)
    new_verdict = DatasetVerdict.__new__
    new_req = RequirementScore.__new__
    new_uc = UseCaseScore.__new__
    new_breakdown = ScoreBreakdown.__new__
    fill = object.__setattr__  # frozen dataclasses veto plain assignment
    out: Dict[str, ScoreBreakdown] = {}
    for region, agg_g, count_g, verdict_g, observed_g, s_ur_g, s_u_g, \
            s_iqb_g, observed_row in zip(
        regions,
        agg_l,
        count_l,
        verdict_l,
        observed_l,
        s_ur_l,
        s_u_l,
        s_iqb_l,
        observed_dataset_l,
    ):
        scored_use_cases = []
        for (req_templates, uc_template), verdict_u, observed_u, \
                s_ur_u, s_u_v in zip(
            templates, verdict_g, observed_g, s_ur_g, s_u_g
        ):
            requirements = []
            for (verdict_templates, req_template), verdict_r, \
                    observed_r, agg_r, count_r, s_ur_v in zip(
                req_templates, verdict_u, observed_u, agg_g, count_g, s_ur_u
            ):
                verdicts = []
                for template, observed_v, score, agg_v, count_v in zip(
                    verdict_templates, observed_r, verdict_r, agg_r, count_r
                ):
                    if not observed_v:
                        continue
                    body = template.copy()
                    body["aggregate"] = agg_v
                    body["passed"] = score == 1.0
                    body["sample_count"] = count_v
                    body["score"] = score
                    entry = new_verdict(DatasetVerdict)
                    fill(entry, "__dict__", body)
                    verdicts.append(entry)
                if verdicts:
                    value = s_ur_v
                elif fail_policy:
                    value = 0.0
                else:
                    value = None
                body = req_template.copy()
                body["value"] = value
                body["verdicts"] = tuple(verdicts)
                req = new_req(RequirementScore)
                fill(req, "__dict__", body)
                requirements.append(req)
            body = uc_template.copy()
            body["value"] = s_u_v
            body["requirements"] = tuple(requirements)
            entry = new_uc(UseCaseScore)
            fill(entry, "__dict__", body)
            scored_use_cases.append(entry)
        breakdown = new_breakdown(ScoreBreakdown)
        fill(breakdown, "__dict__", {
            "value": s_iqb_g,
            "use_cases": tuple(scored_use_cases),
            "degraded_datasets": tuple(
                datasets[d]
                for d in dataset_range
                if positive[d] and not observed_row[d]
            ),
            "quantile_source": quantile_source,
        })
        out[region] = breakdown
    return out


def _templates(cc: CompiledConfig):
    """Per-(u, r, d) ``__dict__`` templates, memoized on the config.

    Key order matches the dataclass field order, so rebuilt instances
    have the same ``__dict__`` layout as ``__init__``-built ones.
    """
    cached = cc.__dict__.get("_rebuild_templates")
    if cached is None:
        thr_l = cc.thr_scored.tolist()
        cached = []
        for u, use_case in enumerate(cc.use_cases):
            req_templates = []
            for r, metric in enumerate(cc.metrics):
                threshold = thr_l[u][r]
                verdict_templates = tuple(
                    {
                        "dataset": cc.datasets[d],
                        "aggregate": 0.0,
                        "threshold": threshold,
                        "passed": False,
                        "weight": cc.dataset_w_int[u][r][d],
                        "sample_count": 0,
                        "score": 0.0,
                    }
                    for d in range(len(cc.datasets))
                )
                req_templates.append(
                    (
                        verdict_templates,
                        {
                            "metric": metric,
                            "threshold": threshold,
                            "value": None,
                            "weight": cc.req_w_int[u][r],
                            "verdicts": (),
                        },
                    )
                )
            cached.append(
                (
                    tuple(req_templates),
                    {
                        "use_case": use_case,
                        "value": 0.0,
                        "weight": cc.uc_w_int[u],
                        "requirements": (),
                    },
                )
            )
        cached = tuple(cached)
        object.__setattr__(cc, "_rebuild_templates", cached)
    return cached


def _resolve_cube(
    store: "object",
    cc: CompiledConfig,
    modes: Optional[Tuple[QuantileMode, ...]] = None,
) -> Tuple["object", str]:
    """The aggregate cube honoring per-dataset quantile modes.

    ``store`` is duck-typed: anything exposing
    ``aggregate_cube(datasets, percentiles)``. Its class-level
    ``QUANTILE_SOURCE`` attribute (``"exact"`` for the columnar store,
    ``"sketch"`` for a sketch plane; absent means exact) names the
    native plane, and ``sketch_plane()`` — when present — yields the
    attached streaming plane for sketch/mixed modes.

    Returns ``(cube, label)`` where ``label`` is the provenance stamp
    (``"exact"`` / ``"sketch"`` / ``"mixed"``) for the breakdowns.
    """
    native = getattr(store, "QUANTILE_SOURCE", "exact")
    if modes is None:
        return store.aggregate_cube(cc.datasets, cc.percentiles), native
    wants_sketch = tuple(mode is QuantileMode.SKETCH for mode in modes)
    if not any(wants_sketch):
        if native != "exact":
            raise DataError(
                "store has no exact quantile plane but every dataset "
                "requested exact quantiles"
            )
        return store.aggregate_cube(cc.datasets, cc.percentiles), "exact"
    if all(wants_sketch):
        sketch = store if native == "sketch" else store.sketch_plane()
        return (
            sketch.aggregate_cube(cc.datasets, cc.percentiles),
            "sketch",
        )
    if native != "exact":
        raise DataError(
            "mixed quantile modes need both planes; store only carries "
            "sketches"
        )
    exact_cube = store.aggregate_cube(cc.datasets, cc.percentiles)
    sketch_cube = store.sketch_plane().aggregate_cube(
        cc.datasets, cc.percentiles
    )
    # Both planes summarize the same records, so the region axes agree.
    assert exact_cube.regions == sketch_cube.regions
    mask = np.asarray(wants_sketch, dtype=bool)[None, :, None]
    aggregates = np.where(
        mask, sketch_cube.aggregates, exact_cube.aggregates
    )
    cube = type(exact_cube)(
        regions=exact_cube.regions,
        aggregates=aggregates,
        counts=exact_cube.counts,
        cells=exact_cube.cells,
    )
    return cube, "mixed"


def score_store(
    store: "object",
    config: IQBConfig,
    stage: Optional["Span"] = None,
    modes: Optional[Tuple[QuantileMode, ...]] = None,
) -> Dict[str, ScoreBreakdown]:
    """Vectorized batch scoring over a store's aggregate cube.

    ``store`` is duck-typed (anything exposing
    ``aggregate_cube(datasets, percentiles)`` — in practice a
    :class:`~repro.measurements.columnar.ColumnarStore` or a
    :class:`~repro.measurements.sketchplane.SketchPlane`), which keeps
    this module free of measurement-layer imports. ``modes`` selects
    the quantile plane per configured dataset (see
    :func:`_resolve_cube`); None scores the store's native plane.
    """
    cc = config.compiled()
    with span("aggregate_cube"):
        cube, source = _resolve_cube(store, cc, modes)
    # Each of the |U| use cases reads every computed cube cell; the
    # first read computed it (a miss, counted by aggregate_cube), the
    # rest are served by the shared cube.
    _CUBE_FANOUT_HITS.inc((len(cc.use_cases) - 1) * cube.cells)
    if stage is not None:
        stage.annotate(
            regions=len(cube.regions),
            kernel="vectorized",
            quantiles=source,
        )
    with span("score_cube"):
        return score_cube(
            cube.regions,
            cube.aggregates,
            cube.counts,
            config,
            quantile_source=source,
        )


def score_values(
    store: "object",
    config: IQBConfig,
    modes: Optional[Tuple[QuantileMode, ...]] = None,
) -> Dict[str, float]:
    """Composite S_IQB per region off a store, scores only.

    The scores-only twin of :func:`score_store`: same cube, same
    tensor pass, same errors, but no breakdown reconstruction — the
    cheapest way to refresh every region's composite score. See
    :func:`score_cube_values`. Accepts a sketch plane directly, which
    is the streaming monitor's re-score hot path.
    """
    cc = config.compiled()
    with span("aggregate_cube"):
        cube, _ = _resolve_cube(store, cc, modes)
    _CUBE_FANOUT_HITS.inc((len(cc.use_cases) - 1) * cube.cells)
    with span("score_cube_values"):
        return score_cube_values(
            cube.regions, cube.aggregates, cube.counts, config
        )
