"""Config linting: catch quiet misconfigurations before they mis-score.

An :class:`~repro.core.config.IQBConfig` can be structurally valid yet
silently wrong for the data it is about to score — a dataset trusted in
the weights but absent from the measurements, loss thresholds that look
like percent values stored as fractions, a requirement no available
dataset observes. The scorer handles all of these *mechanically*
(missing-data policies, zero rows); the linter's job is to make sure a
human meant them.

Lints are advisory: :func:`lint_config` returns findings, it never
raises. Severity ``ERROR`` marks configurations that will definitely
not do what a reasonable user intended; ``WARNING`` marks probable
mistakes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.measurements.collection import MeasurementSet

from .config import IQBConfig
from .metrics import Metric
from .quality import QualityLevel
from .usecases import UseCase


class Severity(enum.Enum):
    """How bad a lint finding is."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class LintFinding:
    """One advisory finding about a config (optionally vs a dataset)."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


def lint_config(
    config: IQBConfig,
    records: Optional[MeasurementSet] = None,
) -> List[LintFinding]:
    """Lint a config, optionally against the data it will score.

    Config-only checks always run; data checks run when ``records`` is
    provided.
    """
    findings: List[LintFinding] = []
    findings.extend(_check_unobservable_requirements(config))
    findings.extend(_check_suspicious_loss_thresholds(config))
    findings.extend(_check_degenerate_aggregation(config))
    if records is not None:
        findings.extend(_check_dataset_coverage(config, records))
        findings.extend(_check_threshold_reachability(config, records))
    return findings


def _check_unobservable_requirements(config: IQBConfig) -> List[LintFinding]:
    """Requirements weighted > 0 that no dataset can ever observe."""
    findings = []
    for use_case in UseCase:
        for metric in Metric:
            if config.requirement_weights.get(use_case, metric) <= 0:
                continue
            if config.dataset_weights.row_total(use_case, metric) == 0:
                findings.append(
                    LintFinding(
                        severity=Severity.WARNING,
                        code="unobservable-requirement",
                        message=(
                            f"{use_case.value}/{metric.value} has weight "
                            f"{config.requirement_weights.get(use_case, metric)} "
                            f"but no dataset is trusted for it; the "
                            f"'{config.missing_data.value}' policy will apply"
                        ),
                    )
                )
    return findings


def _check_suspicious_loss_thresholds(config: IQBConfig) -> List[LintFinding]:
    """Loss thresholds that look like percents stored as fractions."""
    findings = []
    for use_case in UseCase:
        cell = config.thresholds.get(use_case, Metric.PACKET_LOSS)
        for level in QualityLevel:
            value = cell.value(level, config.range_policy)
            if value > 0.2:
                findings.append(
                    LintFinding(
                        severity=Severity.ERROR,
                        code="loss-threshold-units",
                        message=(
                            f"{use_case.value} packet-loss "
                            f"{level.value}-quality threshold is {value} — "
                            f"loss is stored as a fraction; did you mean "
                            f"{value / 100.0}?"
                        ),
                    )
                )
    return findings


def _check_degenerate_aggregation(config: IQBConfig) -> List[LintFinding]:
    """Percentiles at the extremes judge a single best/worst test."""
    findings = []
    percentile = config.aggregation.percentile
    if percentile in (0.0, 100.0):
        findings.append(
            LintFinding(
                severity=Severity.WARNING,
                code="extreme-percentile",
                message=(
                    f"aggregation percentile {percentile:g} judges a single "
                    f"extreme measurement; the paper uses 95"
                ),
            )
        )
    return findings


def _check_dataset_coverage(
    config: IQBConfig, records: MeasurementSet
) -> List[LintFinding]:
    """Trusted-but-absent and present-but-untrusted datasets."""
    findings = []
    present = set(records.sources())
    trusted = {
        dataset
        for dataset in config.dataset_weights.datasets
        if any(
            config.dataset_weights.get(u, m, dataset) > 0
            for u in UseCase
            for m in Metric
        )
    }
    for dataset in sorted(trusted - present):
        findings.append(
            LintFinding(
                severity=Severity.WARNING,
                code="trusted-dataset-missing",
                message=(
                    f"dataset {dataset!r} carries weight in the config but "
                    f"contributes no measurements; corroboration is weaker "
                    f"than configured"
                ),
            )
        )
    for dataset in sorted(present - trusted):
        findings.append(
            LintFinding(
                severity=Severity.WARNING,
                code="untrusted-dataset-present",
                message=(
                    f"dataset {dataset!r} contributes measurements but has "
                    f"zero weight everywhere; its data will be ignored"
                ),
            )
        )
    return findings


def _summarize_metric(
    records: MeasurementSet, metric: Metric
) -> Optional[Tuple[float, float]]:
    values = records.values(metric)
    if not values:
        return None
    return min(values), max(values)


def _check_threshold_reachability(
    config: IQBConfig, records: MeasurementSet
) -> List[LintFinding]:
    """High thresholds that lie entirely outside the observed data range.

    A threshold above every observed value (for higher-is-better) is
    not *wrong*, but if it exceeds the observed maximum by an order of
    magnitude the config likely mixes units (kbit vs Mbit, ms vs s).
    """
    findings = []
    for metric in (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY):
        observed = _summarize_metric(records, metric)
        if observed is None:
            continue
        low, high = observed
        for use_case in UseCase:
            threshold = config.threshold_value(use_case, metric)
            if metric is Metric.LATENCY:
                suspicious = threshold < low / 10.0 and threshold < 1.0
                hint = "threshold in seconds while data is in ms?"
            else:
                suspicious = threshold > high * 10.0
                hint = "threshold in kbit/s while data is in Mbit/s?"
            if suspicious:
                findings.append(
                    LintFinding(
                        severity=Severity.WARNING,
                        code="threshold-unit-mismatch",
                        message=(
                            f"{use_case.value}/{metric.value} threshold "
                            f"{threshold:g} is far outside the observed "
                            f"range [{low:.3g}, {high:.3g}] — {hint}"
                        ),
                    )
                )
    return findings
