"""Bootstrap uncertainty for IQB scores.

A region's IQB score is a statistic of a finite, noisy measurement
sample; two weeks of crowdsourced tests will not produce identical
scores. The nonparametric bootstrap quantifies that: resample each
dataset's records with replacement, re-score, repeat. Because the
binary requirement scores threshold a tail percentile, the score
distribution is discrete-ish and can be surprisingly wide near a
threshold — exactly the situation a barometer's consumers need to see.

Only raw-measurement sources can be bootstrapped (aggregate-only tables
carry no resampling units); they are held fixed across replicates, which
matches how a real study would treat a published aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.measurements.collection import MeasurementSet

from .aggregation import QuantileSource
from .config import IQBConfig
from .scoring import score_region


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution of one region's ``S_IQB``."""

    point_estimate: float
    scores: Tuple[float, ...]

    @property
    def mean(self) -> float:
        """Mean of the bootstrap distribution."""
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        """Standard error of the score."""
        return float(np.std(self.scores))

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Percentile bootstrap confidence interval."""
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence outside (0, 1): {confidence!r}")
        alpha = (1.0 - confidence) / 2.0
        array = np.asarray(self.scores)
        return (
            float(np.percentile(array, 100.0 * alpha)),
            float(np.percentile(array, 100.0 * (1.0 - alpha))),
        )

    @property
    def width95(self) -> float:
        """Width of the 95 % interval (headline uncertainty number)."""
        lo, hi = self.interval(0.95)
        return hi - lo


def _resample(records: MeasurementSet, rng: np.random.Generator) -> MeasurementSet:
    n = len(records)
    indices = rng.integers(0, n, size=n)
    return MeasurementSet(records[int(i)] for i in indices)


def bootstrap_score(
    sources: Mapping[str, Union[MeasurementSet, QuantileSource]],
    config: IQBConfig,
    replicates: int = 200,
    seed: int = 0,
) -> BootstrapResult:
    """Bootstrap the IQB score of one region.

    ``sources`` may mix raw :class:`MeasurementSet` values (resampled
    per replicate) and other QuantileSources (held fixed).

    Raises:
        ValueError: for a non-positive replicate count.
    """
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1: {replicates}")
    point = score_region(sources, config).value
    rng = np.random.default_rng(seed)
    scores: List[float] = []
    for _ in range(replicates):
        resampled: Dict[str, QuantileSource] = {}
        for name, source in sources.items():
            if isinstance(source, MeasurementSet) and len(source) > 0:
                resampled[name] = _resample(source, rng)
            else:
                resampled[name] = source
        scores.append(score_region(resampled, config).value)
    return BootstrapResult(point_estimate=point, scores=tuple(scores))


def sample_size_curve(
    sources: Mapping[str, MeasurementSet],
    config: IQBConfig,
    sizes: Tuple[int, ...] = (25, 50, 100, 200, 400),
    replicates: int = 100,
    seed: int = 0,
) -> Dict[int, BootstrapResult]:
    """Bootstrap CI width as a function of per-dataset sample count.

    For each target size n, each dataset is subsampled (without
    replacement when possible) to n records before bootstrapping —
    answering "how many tests does a region need before its IQB score
    stabilizes?", the practical deployment question behind the poster's
    dataset tier.
    """
    rng = np.random.default_rng(seed)
    out: Dict[int, BootstrapResult] = {}
    for size in sizes:
        if size < 1:
            raise ValueError(f"sizes must be positive: {size}")
        subsampled: Dict[str, MeasurementSet] = {}
        for name, records in sources.items():
            if len(records) <= size:
                subsampled[name] = records
            else:
                indices = rng.choice(len(records), size=size, replace=False)
                subsampled[name] = MeasurementSet(
                    records[int(i)] for i in sorted(indices)
                )
        out[size] = bootstrap_score(
            subsampled, config, replicates=replicates, seed=seed + size
        )
    return out
