"""Sensitivity analysis over the IQB configuration.

The poster's §4 stresses that every constant — weights, thresholds, the
aggregation percentile — is a design choice open to iteration. This
module quantifies how much each choice matters for a given region:

* one-at-a-time (OAT) weight perturbation → tornado-style ranking;
* percentile sweeps (does the verdict flip at p90? p50?);
* range-policy and percentile-semantics ablations (DESIGN.md's
  documented interpretation choices);
* Monte-Carlo weight jitter → distribution of ``S_IQB`` under plausible
  expert disagreement.

All analyses re-score from the same sources, so they are exact, not
linearized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .aggregation import AggregationPolicy, PercentileSemantics, QuantileSource
from .config import IQBConfig
from .metrics import Metric
from .scoring import score_region
from .thresholds import RangePolicy
from .usecases import UseCase
from .weights import WEIGHT_MAX, WEIGHT_MIN


@dataclass(frozen=True)
class WeightImpact:
    """Effect of perturbing one requirement weight by ±delta."""

    use_case: UseCase
    metric: Metric
    base_weight: int
    score_minus: float
    score_plus: float

    @property
    def swing(self) -> float:
        """Total score movement across the ±delta interval."""
        return abs(self.score_plus - self.score_minus)


def requirement_weight_sensitivity(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    delta: int = 1,
) -> List[WeightImpact]:
    """OAT perturbation of every ``w_{u,r}`` by ±delta (clamped to 0..5).

    Returns impacts sorted by descending swing — a tornado chart in data
    form. Cells whose perturbation is entirely clamped away still appear
    (with zero swing) so the output shape is stable.
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1: {delta}")
    impacts: List[WeightImpact] = []
    for use_case in UseCase.ordered():
        for metric in Metric.ordered():
            base = config.requirement_weights.get(use_case, metric)
            lo = max(WEIGHT_MIN, base - delta)
            hi = min(WEIGHT_MAX, base + delta)
            score_lo = _rescore_weight(sources, config, use_case, metric, lo)
            score_hi = _rescore_weight(sources, config, use_case, metric, hi)
            impacts.append(
                WeightImpact(
                    use_case=use_case,
                    metric=metric,
                    base_weight=base,
                    score_minus=score_lo,
                    score_plus=score_hi,
                )
            )
    impacts.sort(key=lambda i: (-i.swing, i.use_case.value, i.metric.value))
    return impacts


def _rescore_weight(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    use_case: UseCase,
    metric: Metric,
    weight: int,
) -> float:
    weights = config.requirement_weights.replace({(use_case, metric): weight})
    return score_region(sources, config.with_(requirement_weights=weights)).value


def use_case_weight_sensitivity(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    delta: int = 1,
) -> Dict[UseCase, Tuple[float, float]]:
    """OAT perturbation of every ``w_u``: use case → (score-, score+)."""
    out: Dict[UseCase, Tuple[float, float]] = {}
    for use_case in UseCase.ordered():
        base = config.use_case_weights.get(use_case)
        lo = max(WEIGHT_MIN, base - delta)
        hi = min(WEIGHT_MAX, base + delta)
        score_lo = score_region(
            sources,
            config.with_(
                use_case_weights=config.use_case_weights.replace({use_case: lo})
            ),
        ).value
        score_hi = score_region(
            sources,
            config.with_(
                use_case_weights=config.use_case_weights.replace({use_case: hi})
            ),
        ).value
        out[use_case] = (score_lo, score_hi)
    return out


def percentile_sweep(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    percentiles: Sequence[float] = (50.0, 75.0, 90.0, 95.0, 99.0),
) -> Dict[float, float]:
    """``S_IQB`` as a function of the aggregation percentile."""
    out: Dict[float, float] = {}
    for percentile in percentiles:
        policy = AggregationPolicy(
            percentile=percentile, semantics=config.aggregation.semantics
        )
        out[percentile] = score_region(
            sources, config.with_(aggregation=policy)
        ).value
    return out


def semantics_comparison(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> Dict[str, float]:
    """``S_IQB`` under LITERAL vs CONSERVATIVE percentile semantics."""
    out: Dict[str, float] = {}
    for semantics in PercentileSemantics:
        policy = AggregationPolicy(
            percentile=config.aggregation.percentile, semantics=semantics
        )
        out[semantics.value] = score_region(
            sources, config.with_(aggregation=policy)
        ).value
    return out


def range_policy_comparison(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> Dict[str, float]:
    """``S_IQB`` under each resolution of Fig. 2's "50-100 Mb/s" range."""
    return {
        policy.value: score_region(
            sources, config.with_(range_policy=policy)
        ).value
        for policy in RangePolicy
    }


def score_mode_comparison(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> Dict[str, float]:
    """``S_IQB`` under each requirement score mode (binary/graded/continuous)."""
    from .config import ScoreMode

    return {
        mode.value: score_region(
            sources, config.with_(score_mode=mode)
        ).value
        for mode in ScoreMode
    }


@dataclass(frozen=True)
class MonteCarloResult:
    """Distribution of ``S_IQB`` under random weight jitter."""

    scores: Tuple[float, ...]
    mean: float
    std: float
    p05: float
    p95: float

    @property
    def spread(self) -> float:
        """Width of the central 90 % interval."""
        return self.p95 - self.p05


def monte_carlo_weights(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    samples: int = 200,
    seed: int = 0,
    jitter: int = 1,
) -> MonteCarloResult:
    """Re-score under ``samples`` random joint weight perturbations.

    Every ``w_{u,r}`` independently moves by an integer in
    [-jitter, +jitter] (clamped to 0..5; rows are re-validated, and draws
    that would zero out a whole use case are clamped back to 1). This
    models plausible disagreement among the paper's expert panel.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1: {samples}")
    rng = np.random.default_rng(seed)
    scores: List[float] = []
    for _ in range(samples):
        overrides: Dict[Tuple[UseCase, Metric], int] = {}
        for use_case in UseCase:
            row: Dict[Metric, int] = {}
            for metric in Metric:
                base = config.requirement_weights.get(use_case, metric)
                moved = base + int(rng.integers(-jitter, jitter + 1))
                row[metric] = min(WEIGHT_MAX, max(WEIGHT_MIN, moved))
            if sum(row.values()) == 0:
                row[Metric.DOWNLOAD] = 1
            for metric, weight in row.items():
                overrides[(use_case, metric)] = weight
        weights = config.requirement_weights.replace(overrides)
        scores.append(
            score_region(sources, config.with_(requirement_weights=weights)).value
        )
    array = np.asarray(scores)
    return MonteCarloResult(
        scores=tuple(scores),
        mean=float(array.mean()),
        std=float(array.std()),
        p05=float(np.percentile(array, 5.0)),
        p95=float(np.percentile(array, 95.0)),
    )
