"""MeasurementSet: a queryable collection of measurement records.

This is the workhorse container between data generation/ingest and
scoring. It implements the :class:`~repro.core.aggregation.QuantileSource`
protocol, so a filtered MeasurementSet can be handed directly to
``score_region`` as one dataset's evidence.

Filters return new (shallow-copied) sets; the underlying records are
frozen dataclasses, so sharing is safe.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.aggregation import percentile_of
from repro.core.metrics import Metric

from .record import Measurement


class MeasurementSet:
    """An immutable-ish bag of :class:`Measurement` records."""

    def __init__(self, records: Iterable[Measurement] = ()) -> None:
        self._records: List[Measurement] = list(records)

    # -- container basics -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Measurement:
        return self._records[index]

    def __add__(self, other: "MeasurementSet") -> "MeasurementSet":
        if not isinstance(other, MeasurementSet):
            return NotImplemented
        return MeasurementSet(self._records + other._records)

    def __repr__(self) -> str:
        return f"MeasurementSet({len(self._records)} records)"

    # -- filtering / grouping ---------------------------------------------

    def filter(
        self, predicate: Callable[[Measurement], bool]
    ) -> "MeasurementSet":
        """Records matching an arbitrary predicate."""
        return MeasurementSet(r for r in self._records if predicate(r))

    def for_region(self, region: str) -> "MeasurementSet":
        """Records from one region."""
        return self.filter(lambda r: r.region == region)

    def for_source(self, source: str) -> "MeasurementSet":
        """Records from one dataset."""
        return self.filter(lambda r: r.source == source)

    def for_isp(self, isp: str) -> "MeasurementSet":
        """Records from one ISP."""
        return self.filter(lambda r: r.isp == isp)

    def between(self, start: float, end: float) -> "MeasurementSet":
        """Records with ``start <= timestamp < end``."""
        return self.filter(lambda r: start <= r.timestamp < end)

    def regions(self) -> Tuple[str, ...]:
        """Distinct regions, sorted."""
        return tuple(sorted({r.region for r in self._records}))

    def sources(self) -> Tuple[str, ...]:
        """Distinct dataset names, sorted."""
        return tuple(sorted({r.source for r in self._records}))

    def isps(self) -> Tuple[str, ...]:
        """Distinct ISPs, sorted (empty names excluded)."""
        return tuple(sorted({r.isp for r in self._records if r.isp}))

    def group_by_region(self) -> Dict[str, "MeasurementSet"]:
        """Split into one set per region."""
        groups: Dict[str, List[Measurement]] = defaultdict(list)
        for record in self._records:
            groups[record.region].append(record)
        return {
            region: MeasurementSet(records)
            for region, records in groups.items()
        }

    def group_by_source(self) -> Dict[str, "MeasurementSet"]:
        """Split into one set per dataset, ready for ``score_region``."""
        groups: Dict[str, List[Measurement]] = defaultdict(list)
        for record in self._records:
            groups[record.source].append(record)
        return {
            source: MeasurementSet(records)
            for source, records in groups.items()
        }

    # -- metric access / QuantileSource protocol ---------------------------

    def values(self, metric: Metric) -> List[float]:
        """All non-missing values of ``metric``, in record order."""
        out: List[float] = []
        for record in self._records:
            value = record.value(metric)
            if value is not None:
                out.append(value)
        return out

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Percentile of the stored metric values (QuantileSource)."""
        values = self.values(metric)
        if not values:
            return None
        return percentile_of(values, percentile)

    def sample_count(self, metric: Metric) -> int:
        """Observation count for the metric (QuantileSource)."""
        return len(self.values(metric))

    # -- summaries ---------------------------------------------------------

    def mean(self, metric: Metric) -> Optional[float]:
        """Arithmetic mean of the metric (None when unobserved)."""
        values = self.values(metric)
        if not values:
            return None
        return sum(values) / len(values)

    def median(self, metric: Metric) -> Optional[float]:
        """Median of the metric (None when unobserved)."""
        return self.quantile(metric, 50.0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric count/mean/median/p95 digest for reports."""
        digest: Dict[str, Dict[str, float]] = {}
        for metric in Metric:
            values = self.values(metric)
            if not values:
                continue
            digest[metric.value] = {
                "count": float(len(values)),
                "mean": sum(values) / len(values),
                "median": percentile_of(values, 50.0),
                "p95": percentile_of(values, 95.0),
            }
        return digest
