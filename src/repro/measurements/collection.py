"""MeasurementSet: a queryable collection of measurement records.

This is the workhorse container between data generation/ingest and
scoring. It implements the :class:`~repro.core.aggregation.QuantileSource`
protocol, so a filtered MeasurementSet can be handed directly to
``score_region`` as one dataset's evidence.

Filters return new sets sharing the underlying frozen records; grouping
results and the per-metric value/quantile plane are memoized, because
the IQB scorer asks the same (metric, percentile) question up to six
times per score (once per use case). Mutating a set via :meth:`add` /
:meth:`extend` invalidates every cache; sets handed out by the cached
group indexes copy-on-write before mutating so siblings and parents
never see each other's appends. For batch scoring of many regions at
once, prefer the columnar plane
(:class:`~repro.measurements.columnar.ColumnarStore` via
:func:`repro.core.scoring.score_regions`), which shares sorted columns
across every grouping instead of caching per set.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.core.aggregation import percentile_of
from repro.core.metrics import Metric
from repro.obs import counter

from .record import Measurement

# Quantile-plane telemetry (see docs/methodology.md, "Observability"):
# hits answer from the memoized (metric, percentile) map, misses pay
# for an aggregation, sorts count the per-metric column sorts behind
# them. Instruments are bound once here; .inc() is one attribute add,
# cheap enough for the scoring hot path.
_HITS = counter("quantile_cache.rowset.hits")
_MISSES = counter("quantile_cache.rowset.misses")
_SORTS = counter("quantile_cache.rowset.sorts")


class MeasurementSet:
    """An immutable-ish bag of :class:`Measurement` records.

    "Immutable-ish": the only mutators are :meth:`add` and
    :meth:`extend`, which invalidate the set's caches. Everything else
    returns shared or fresh sets without touching the receiver.
    """

    def __init__(self, records: Iterable[Measurement] = ()) -> None:
        self._records: List[Measurement] = list(records)
        self._shared = False
        self._parent_cache: Optional[Tuple[Dict[str, "MeasurementSet"], str]] = None
        self._reset_caches()

    @classmethod
    def _adopt(
        cls, records: List[Measurement], shared: bool = True
    ) -> "MeasurementSet":
        """Wrap an existing list without copying.

        ``shared=True`` marks the list as aliased elsewhere (e.g. a
        parent's group index); the first mutation then copies-on-write.
        """
        out = cls.__new__(cls)
        out._records = records
        out._shared = shared
        out._parent_cache = None
        out._reset_caches()
        return out

    def _reset_caches(self) -> None:
        self._values_cache: Dict[Metric, List[float]] = {}
        self._sorted_cache: Dict[Metric, np.ndarray] = {}
        self._quantile_cache: Dict[Tuple[Metric, float], Optional[float]] = {}
        self._region_groups: Optional[Dict[str, List[Measurement]]] = None
        self._source_groups: Optional[Dict[str, List[Measurement]]] = None
        self._isp_groups: Optional[Dict[str, List[Measurement]]] = None
        self._region_sets: Dict[str, "MeasurementSet"] = {}
        self._source_sets: Dict[str, "MeasurementSet"] = {}
        self._isp_sets: Dict[str, "MeasurementSet"] = {}

    # -- container basics -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Measurement:
        return self._records[index]

    def __add__(self, other: "MeasurementSet") -> "MeasurementSet":
        if not isinstance(other, MeasurementSet):
            return NotImplemented
        # Empty-side fast paths: share the non-empty set instead of
        # re-copying its records (both sets are marked shared so a later
        # mutation of either copies-on-write first).
        if not other._records:
            self._shared = True
            return MeasurementSet._adopt(self._records)
        if not self._records:
            other._shared = True
            return MeasurementSet._adopt(other._records)
        return MeasurementSet._adopt(
            self._records + other._records, shared=False
        )

    def __repr__(self) -> str:
        return f"MeasurementSet({len(self._records)} records)"

    # -- mutation ----------------------------------------------------------

    def _prepare_mutation(self) -> None:
        if self._shared:
            self._records = list(self._records)
            self._shared = False
        if self._parent_cache is not None:
            # A cached group subset diverges from its parent on first
            # mutation: drop it from the parent's handout cache so the
            # parent keeps serving unmutated snapshots.
            cache, key = self._parent_cache
            if cache.get(key) is self:
                del cache[key]
            self._parent_cache = None
        self._reset_caches()

    def add(self, record: Measurement) -> None:
        """Append one record, invalidating every cached answer."""
        self._prepare_mutation()
        self._records.append(record)

    def extend(self, records: Iterable[Measurement]) -> None:
        """Append many records, invalidating every cached answer."""
        self._prepare_mutation()
        self._records.extend(records)

    # -- filtering / grouping ---------------------------------------------

    def filter(
        self, predicate: Callable[[Measurement], bool]
    ) -> "MeasurementSet":
        """Records matching an arbitrary predicate."""
        if not self._records:
            return self
        matched = [r for r in self._records if predicate(r)]
        if len(matched) == len(self._records):
            # Everything matched: share the record list instead of
            # carrying a second copy of it.
            self._shared = True
            return MeasurementSet._adopt(self._records)
        return MeasurementSet._adopt(matched, shared=False)

    def _grouped(
        self, axis: str
    ) -> Dict[str, List[Measurement]]:
        attr = f"_{axis}_groups"
        groups = getattr(self, attr)
        if groups is None:
            groups = {}
            for record in self._records:
                key = getattr(record, axis)
                groups.setdefault(key, []).append(record)
            setattr(self, attr, groups)
        return groups

    def _group_set(self, axis: str, key: str) -> "MeasurementSet":
        sets = getattr(self, f"_{axis}_sets")
        subset = sets.get(key)
        if subset is None:
            records = self._grouped(axis).get(key)
            if records is None:
                subset = MeasurementSet()
            else:
                subset = MeasurementSet._adopt(records)
            subset._parent_cache = (sets, key)
            sets[key] = subset
        return subset

    def for_region(self, region: str) -> "MeasurementSet":
        """Records from one region (cached; reuses the group index)."""
        return self._group_set("region", region)

    def for_source(self, source: str) -> "MeasurementSet":
        """Records from one dataset (cached; reuses the group index)."""
        return self._group_set("source", source)

    def for_isp(self, isp: str) -> "MeasurementSet":
        """Records from one ISP (cached; reuses the group index)."""
        return self._group_set("isp", isp)

    def between(self, start: float, end: float) -> "MeasurementSet":
        """Records with ``start <= timestamp < end``."""
        return self.filter(lambda r: start <= r.timestamp < end)

    def regions(self) -> Tuple[str, ...]:
        """Distinct regions, sorted (from the cached group index)."""
        return tuple(sorted(self._grouped("region")))

    def sources(self) -> Tuple[str, ...]:
        """Distinct dataset names, sorted (from the cached group index)."""
        return tuple(sorted(self._grouped("source")))

    def isps(self) -> Tuple[str, ...]:
        """Distinct ISPs, sorted (empty names excluded)."""
        return tuple(sorted(key for key in self._grouped("isp") if key))

    def group_by_region(self) -> Dict[str, "MeasurementSet"]:
        """Split into one set per region (shared with :meth:`for_region`)."""
        return {
            region: self._group_set("region", region)
            for region in self._grouped("region")
        }

    def group_by_source(self) -> Dict[str, "MeasurementSet"]:
        """Split into one set per dataset, ready for ``score_region``."""
        return {
            source: self._group_set("source", source)
            for source in self._grouped("source")
        }

    # -- metric access / QuantileSource protocol ---------------------------

    def values(self, metric: Metric) -> List[float]:
        """All non-missing values of ``metric``, in record order (cached)."""
        cached = self._values_cache.get(metric)
        if cached is None:
            field = metric.field_name
            cached = [
                value
                for value in (getattr(r, field) for r in self._records)
                if value is not None
            ]
            self._values_cache[metric] = cached
        return cached

    def _sorted_values(self, metric: Metric) -> np.ndarray:
        cached = self._sorted_cache.get(metric)
        if cached is None:
            _SORTS.inc()
            cached = np.asarray(self.values(metric), dtype=np.float64)
            cached.sort()
            self._sorted_cache[metric] = cached
        return cached

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Percentile of the stored metric values (QuantileSource).

        Memoized per (metric, percentile); the backing value array is
        sorted once per metric so distinct percentiles share the sort.
        """
        key = (metric, percentile)
        if key in self._quantile_cache:
            _HITS.inc()
            return self._quantile_cache[key]
        _MISSES.inc()
        values = self._sorted_values(metric)
        answer: Optional[float]
        if values.size == 0:
            answer = None
        else:
            answer = percentile_of(values, percentile, assume_sorted=True)
        self._quantile_cache[key] = answer
        return answer

    def sample_count(self, metric: Metric) -> int:
        """Observation count for the metric (QuantileSource)."""
        return len(self.values(metric))

    # -- summaries ---------------------------------------------------------

    def mean(self, metric: Metric) -> Optional[float]:
        """Arithmetic mean of the metric (None when unobserved)."""
        values = self.values(metric)
        if not values:
            return None
        return sum(values) / len(values)

    def median(self, metric: Metric) -> Optional[float]:
        """Median of the metric (None when unobserved)."""
        return self.quantile(metric, 50.0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-metric count/mean/median/p95 digest for reports."""
        digest: Dict[str, Dict[str, float]] = {}
        for metric in Metric:
            values = self.values(metric)
            if not values:
                continue
            digest[metric.value] = {
                "count": float(len(values)),
                "mean": sum(values) / len(values),
                "median": self.quantile(metric, 50.0),
                "p95": self.quantile(metric, 95.0),
            }
        return digest
