"""Sketch-backed quantile plane: the incremental streaming scoring path.

The columnar plane (:mod:`.columnar`) is the right layout for *batch*
scoring — transpose once, sort once per metric, answer every quantile
from shared planes — but it is a batch artifact: one new measurement
invalidates the sort, so a monitor re-scoring a live window pays
O(n log n) per arrival. The paper's own Ookla path already scores from
aggregate summaries rather than raw samples (PAPER.md §2), which is
precedent for the other direction: keep a per-(region, dataset, metric)
*sketch* of the distribution and answer the kernel's percentile queries
from it.

:class:`SketchPlane` maintains one mergeable t-digest per
(region, dataset, metric) cell. ``add`` is O(1) amortized per
measurement (buffered digest inserts); ``aggregate_cube`` answers the
same ``A[region, dataset, metric]`` cube the vectorized kernel
(:mod:`repro.core.kernel`) consumes, so the plane plugs directly into
``score_store`` / ``score_values`` — no kernel changes, just a
different quantile source. Sample counts are exact (digests track true
counts); the percentile *values* are estimates with relative error
concentrated away from the tails, which is the right trade for the
IQB's 95th-percentile rule (see ``docs/methodology.md``, "Streaming
scoring", for measured bounds; the parity suite pins p95/p99 relative
error ≤ 1% vs the exact plane).

Planes are mergeable and serializable (``merge`` / ``to_state`` /
``from_state``), mirroring the t-digest plumbing PR 4 ships for shard
timer telemetry: workers sketch their shard and the parent merges, and
monitor journals can checkpoint sketch state instead of raw records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.metrics import Metric
from repro.obs import counter
from repro.obs.health import get_health_monitor

from .columnar import AggregateCube
from .record import Measurement
from .tdigest import DEFAULT_DELTA, TDigest

# Streaming-plane telemetry: ``updates`` counts digest inserts (one per
# observed metric value), ``rescore.hits`` counts quantile-plane reads
# served from sketch state instead of a raw-record recompute.
_UPDATES = counter("sketch.updates")
_RESCORE_HITS = counter("sketch.rescore.hits")


class SketchView:
    """QuantileSource over one (region, dataset) cell of a SketchPlane.

    Holds one t-digest per metric, created lazily on first observation.
    Implements the same protocol as :class:`~.columnar.ColumnarView`,
    so :func:`repro.core.scoring.score_region` accepts it unchanged.
    """

    __slots__ = ("_delta", "_digests", "_records")

    def __init__(self, delta: int = DEFAULT_DELTA) -> None:
        self._delta = delta
        self._digests: Dict[Metric, TDigest] = {}
        self._records = 0

    def __len__(self) -> int:
        """Measurements observed by this cell (not per-metric counts)."""
        return self._records

    def __repr__(self) -> str:
        return f"SketchView({self._records} records)"

    def observe(self, record: Measurement) -> None:
        """Fold one measurement into the cell's metric digests."""
        self._records += 1
        for metric in Metric.ordered():
            value = getattr(record, metric.field_name)
            if value is None:
                continue
            digest = self._digests.get(metric)
            if digest is None:
                digest = TDigest(delta=self._delta)
                self._digests[metric] = digest
            digest.add(float(value))
            _UPDATES.inc()

    # -- QuantileSource protocol ------------------------------------------

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        digest = self._digests.get(metric)
        if digest is None:
            return None
        return digest.quantile_or_none(percentile)

    def sample_count(self, metric: Metric) -> int:
        digest = self._digests.get(metric)
        return 0 if digest is None else len(digest)

    # -- state / merge -----------------------------------------------------

    def to_state(self) -> dict:
        return {
            "records": self._records,
            "digests": {
                metric.value: digest.to_state()
                for metric, digest in self._digests.items()
            },
        }

    @classmethod
    def from_state(cls, state: dict, delta: int = DEFAULT_DELTA) -> "SketchView":
        view = cls(delta=delta)
        view._records = int(state.get("records", 0))
        for name, digest_state in state.get("digests", {}).items():
            view._digests[Metric(name)] = TDigest.from_state(digest_state)
        return view

    def merge(self, other: "SketchView") -> "SketchView":
        """A new view summarizing both inputs (inputs unchanged)."""
        merged = SketchView(delta=min(self._delta, other._delta))
        merged._records = self._records + other._records
        for metric in set(self._digests) | set(other._digests):
            own = self._digests.get(metric)
            theirs = other._digests.get(metric)
            if own is not None and theirs is not None:
                merged._digests[metric] = own.merge(theirs)
            else:
                source = own if own is not None else theirs
                assert source is not None
                merged._digests[metric] = TDigest.from_state(source.to_state())
        return merged


class SketchPlane:
    """Per-(region, dataset, metric) t-digests, updated per measurement.

    The streaming counterpart of :class:`~.columnar.ColumnarStore`:
    same ``aggregate_cube`` / ``sources_by_region`` surface (so the
    scoring kernel and the scalar scorer both consume it), but built by
    O(1)-amortized ``add`` instead of a batch transpose, and mergeable
    across shards and serializable into journals.
    """

    #: Native quantile plane (kernel provenance): streaming t-digests.
    QUANTILE_SOURCE = "sketch"

    def __init__(self, delta: int = DEFAULT_DELTA) -> None:
        self.delta = delta
        self._views: Dict[Tuple[str, str], SketchView] = {}
        self._records = 0

    def __len__(self) -> int:
        return self._records

    @property
    def generation(self) -> int:
        """Monotone change stamp for generation-keyed score caches.

        Advances once per accepted record, and only *after* the cell
        digests have observed it (``add`` updates the view before the
        count), so a reader that sees a stamp sees a plane consistent
        with it. Survives :meth:`to_state`/:meth:`from_state` and adds
        across :meth:`merge`, mirroring
        :attr:`~repro.measurements.columnar.ColumnarStore.generation`.
        """
        return self._records

    def __repr__(self) -> str:
        return (
            f"SketchPlane({self._records} records, "
            f"{len(self._views)} cells)"
        )

    # -- ingestion ---------------------------------------------------------

    def add(self, record: Measurement) -> None:
        """Fold one measurement in — O(1) amortized."""
        key = (record.region, record.source)
        view = self._views.get(key)
        if view is None:
            view = SketchView(delta=self.delta)
            self._views[key] = view
        view.observe(record)
        self._records += 1
        # Data-quality hook: every accepted measurement advances the
        # health monitor's freshness watermark (one None check when
        # health tracking is off).
        health = get_health_monitor()
        if health is not None:
            health.record_arrival(
                record.region, record.source, record.timestamp
            )

    def extend(self, records: Iterable[Measurement]) -> None:
        for record in records:
            self.add(record)

    # -- axes --------------------------------------------------------------

    def regions(self) -> Tuple[str, ...]:
        """Distinct regions observed, sorted."""
        return tuple(sorted({region for region, _ in self._views}))

    def sources(self) -> Tuple[str, ...]:
        """Distinct dataset names observed, sorted."""
        return tuple(sorted({source for _, source in self._views}))

    def view(self, region: str, source: str) -> SketchView:
        """The (region, dataset) cell; an empty view when unobserved."""
        return self._views.get((region, source)) or SketchView(self.delta)

    def sources_by_region(self) -> Dict[str, Dict[str, SketchView]]:
        """region → dataset → QuantileSource, the scalar scoring plane."""
        grouped: Dict[str, Dict[str, SketchView]] = {}
        for (region, source), view in sorted(self._views.items()):
            grouped.setdefault(region, {})[source] = view
        return grouped

    # -- kernel surface ----------------------------------------------------

    def aggregate_cube(
        self,
        datasets: Tuple[str, ...],
        percentiles: Tuple[float, ...],
    ) -> AggregateCube:
        """The kernel's ``A[region, dataset, metric]`` cube, from sketches.

        Shape and NaN/count semantics match
        :meth:`~.columnar.ColumnarStore.aggregate_cube` exactly — the
        vectorized kernel cannot tell the planes apart — but each cell
        is a t-digest estimate instead of an exact sorted-column
        interpolation. Counts are exact, so missing-data policies and
        degraded-mode renormalization behave identically on both
        planes. Not cached: reads are O(cells · delta) against live
        sketches, which is the point — a re-score after an ``add``
        needs no invalidation machinery.
        """
        metrics = Metric.ordered()
        if len(percentiles) != len(metrics):
            raise ValueError(
                f"aggregate_cube needs one percentile per metric "
                f"({len(metrics)}), got {len(percentiles)}"
            )
        regions = self.regions()
        region_slot = {name: g for g, name in enumerate(regions)}
        dataset_slot = {name: d for d, name in enumerate(datasets)}
        shape = (len(regions), len(datasets), len(metrics))
        aggregates = np.full(shape, np.nan, dtype=np.float64)
        counts = np.zeros(shape, dtype=np.int64)
        for (region, source), view in self._views.items():
            d = dataset_slot.get(source)
            if d is None:
                continue
            g = region_slot[region]
            for r, metric in enumerate(metrics):
                n = view.sample_count(metric)
                if n == 0:
                    continue
                counts[g, d, r] = n
                estimate = view.quantile(metric, float(percentiles[r]))
                if estimate is not None:
                    aggregates[g, d, r] = estimate
        cube = AggregateCube(
            regions=regions,
            aggregates=aggregates,
            counts=counts,
            cells=int(np.count_nonzero(counts)),
        )
        _RESCORE_HITS.inc()
        return cube

    # -- state / merge -----------------------------------------------------

    def to_state(self) -> dict:
        """JSON-compatible mergeable state (journals, shard shipping)."""
        return {
            "delta": self.delta,
            "records": self._records,
            "views": [
                [region, source, view.to_state()]
                for (region, source), view in sorted(self._views.items())
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "SketchPlane":
        """Rebuild a plane exported by :meth:`to_state`."""
        plane = cls(delta=int(state.get("delta", DEFAULT_DELTA)))
        plane._records = int(state.get("records", 0))
        for region, source, view_state in state.get("views", []):
            plane._views[(str(region), str(source))] = SketchView.from_state(
                view_state, delta=plane.delta
            )
        return plane

    def merge(self, other: "SketchPlane") -> "SketchPlane":
        """A new plane summarizing both inputs (inputs unchanged).

        Disjoint cells are copied; shared cells t-digest-merge, so
        per-shard planes built over partitioned records combine into
        exactly the plane a single pass would have built (same counts,
        sketch-equivalent quantiles) — the same contract PR 4's shard
        timer digests rely on.
        """
        merged = SketchPlane(delta=min(self.delta, other.delta))
        merged._records = self._records + other._records
        for key in set(self._views) | set(other._views):
            own = self._views.get(key)
            theirs = other._views.get(key)
            if own is not None and theirs is not None:
                merged._views[key] = own.merge(theirs)
            else:
                source = own if own is not None else theirs
                assert source is not None
                merged._views[key] = SketchView.from_state(
                    source.to_state(), delta=source._delta
                )
        return merged


def sketch_records(
    records: Iterable[Measurement], delta: int = DEFAULT_DELTA
) -> SketchPlane:
    """One-pass plane over a finished batch (convenience constructor)."""
    plane = SketchPlane(delta=delta)
    plane.extend(records)
    return plane
