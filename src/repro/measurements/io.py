"""Reading and writing measurement records (JSONL and CSV).

JSON Lines is the primary interchange format: one measurement document
per line, append-friendly, and the natural shape for the probing
framework's streaming sinks. CSV import/export exists for spreadsheet
interoperability; the CSV dialect is plain (header row, comma, no
quoting surprises) with ``meta`` omitted.

Readers are strict by default — a malformed line raises
:class:`~repro.core.exceptions.SchemaError` naming the line number — and
tolerant on request (``on_error="skip"``), because real measurement
dumps do contain garbage rows. Skips are never silent: they increment
the ``ingest.*.skipped`` counters and the whole-file readers log one
WARNING with the drop count (see :mod:`repro.obs`).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric
from repro.obs import counter, get_logger

from .collection import MeasurementSet
from .record import Measurement

_PathLike = Union[str, Path]

_logger = get_logger(__name__)

_JSONL_READ = counter("ingest.jsonl.lines")
_JSONL_SKIPPED = counter("ingest.jsonl.skipped")
_CSV_READ = counter("ingest.csv.rows")
_CSV_SKIPPED = counter("ingest.csv.skipped")


@dataclass
class IngestStats:
    """Per-call accounting of one reader invocation.

    ``read`` counts records successfully decoded; ``skipped`` counts
    malformed lines/rows dropped under ``on_error="skip"`` (always 0 in
    ``"raise"`` mode, where the first bad line aborts the read).
    """

    read: int = 0
    skipped: int = 0

CSV_FIELDS = (
    "region",
    "source",
    "timestamp",
    "download_mbps",
    "upload_mbps",
    "latency_ms",
    "packet_loss",
    "isp",
    "access_tech",
)


def write_jsonl(records: MeasurementSet, path: _PathLike) -> int:
    """Write records as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def iter_jsonl(
    path: _PathLike,
    on_error: str = "raise",
    stats: Optional[IngestStats] = None,
) -> Iterator[Measurement]:
    """Stream records from a JSONL file.

    Args:
        on_error: ``"raise"`` (default) aborts on the first bad line;
            ``"skip"`` drops undecodable or invalid lines. Every drop
            increments the ``ingest.jsonl.skipped`` counter and logs
            the offending line number at DEBUG.
        stats: optional :class:`IngestStats` updated in place, for
            callers that need this call's exact read/skip counts.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip': {on_error!r}")
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
                record = Measurement.from_dict(document)
            except (json.JSONDecodeError, SchemaError) as exc:
                if on_error == "skip":
                    _JSONL_SKIPPED.inc()
                    if stats is not None:
                        stats.skipped += 1
                    if _logger.isEnabledFor(10):  # logging.DEBUG
                        _logger.debug(
                            "skipped malformed line",
                            extra={"ctx": {"path": str(path), "line": lineno}},
                        )
                    continue
                raise SchemaError(f"{path}:{lineno}: {exc}") from exc
            _JSONL_READ.inc()
            if stats is not None:
                stats.read += 1
            yield record


def read_jsonl(
    path: _PathLike,
    on_error: str = "raise",
    stats: Optional[IngestStats] = None,
) -> MeasurementSet:
    """Load a whole JSONL file into a MeasurementSet.

    In ``on_error="skip"`` mode, a file with malformed lines loads the
    good records and logs one WARNING with the skip count (also visible
    as the ``ingest.jsonl.skipped`` counter). Pass ``stats`` to receive
    this call's exact read/skip counts (run-provenance manifests record
    them per input file).
    """
    if stats is None:
        stats = IngestStats()
    records = MeasurementSet._adopt(
        list(iter_jsonl(path, on_error=on_error, stats=stats)), shared=False
    )
    if stats.skipped:
        _logger.warning(
            "skipped %d malformed line(s) reading %s",
            stats.skipped,
            path,
            extra={"ctx": {"read": stats.read, "skipped": stats.skipped}},
        )
    return records


def write_csv(records: MeasurementSet, path: _PathLike) -> int:
    """Write records as CSV (``meta`` is not representable and dropped)."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for record in records:
            row = {field: "" for field in CSV_FIELDS}
            row["region"] = record.region
            row["source"] = record.source
            row["timestamp"] = repr(record.timestamp)
            for metric in Metric:
                value = record.value(metric)
                if value is not None:
                    row[metric.field_name] = repr(value)
            row["isp"] = record.isp
            row["access_tech"] = record.access_tech
            writer.writerow(row)
            count += 1
    return count


def csv_row_to_measurement(row: "dict") -> Measurement:
    """Decode one CSV row (a ``csv.DictReader`` mapping) into a record.

    Empty cells and unknown extra columns are dropped before schema
    validation — the shared decoding step behind :func:`read_csv`,
    :func:`iter_csv`, and the parallel byte-range ingest.

    Raises:
        SchemaError: on a row that does not form a valid measurement.
    """
    document = {
        key: value for key, value in row.items() if value not in ("", None)
    }
    return Measurement.from_dict(document)


def iter_csv(
    path: _PathLike,
    on_error: str = "raise",
    stats: Optional[IngestStats] = None,
) -> Iterator[Measurement]:
    """Stream records from a CSV produced by :func:`write_csv`.

    Streaming parity with :func:`iter_jsonl`: one decoded record at a
    time, strict by default, tolerant with ``on_error="skip"`` (drops
    increment ``ingest.csv.skipped`` and log the row number at DEBUG).
    Line numbers count the header as line 1, matching :func:`read_csv`.

    Args:
        on_error: ``"raise"`` (default) aborts on the first bad row;
            ``"skip"`` drops rows that do not decode.
        stats: optional :class:`IngestStats` updated in place.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip': {on_error!r}")
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        for lineno, row in enumerate(reader, start=2):
            try:
                record = csv_row_to_measurement(row)
            except SchemaError as exc:
                if on_error == "skip":
                    _CSV_SKIPPED.inc()
                    if stats is not None:
                        stats.skipped += 1
                    if _logger.isEnabledFor(10):  # logging.DEBUG
                        _logger.debug(
                            "skipped malformed row",
                            extra={"ctx": {"path": str(path), "line": lineno}},
                        )
                    continue
                raise SchemaError(f"{path}:{lineno}: {exc}") from exc
            _CSV_READ.inc()
            if stats is not None:
                stats.read += 1
            yield record


def read_csv(
    path: _PathLike,
    on_error: str = "raise",
    stats: Optional[IngestStats] = None,
) -> MeasurementSet:
    """Load measurements from a CSV produced by :func:`write_csv`.

    Unknown extra columns are ignored; missing metric cells become None.
    In ``on_error="skip"`` mode, dropped rows are counted
    (``ingest.csv.skipped``) and reported with one WARNING. ``stats``
    receives this call's read/skip counts, as in :func:`read_jsonl`.
    """
    if stats is None:
        stats = IngestStats()
    records = MeasurementSet._adopt(
        list(iter_csv(path, on_error=on_error, stats=stats)), shared=False
    )
    if stats.skipped:
        _logger.warning(
            "skipped %d malformed row(s) reading %s",
            stats.skipped,
            path,
            extra={"ctx": {"read": stats.read, "skipped": stats.skipped}},
        )
    return records
