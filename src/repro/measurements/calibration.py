"""Cross-dataset calibration.

The corroboration tier's weakness is systematic methodology bias: NDT's
single TCP stream *reliably* reports less throughput than Ookla's
multi-stream peak on the same links, so their verdicts disagree in a
structured, predictable way — not as independent noise. Calibration
estimates each dataset's multiplicative bias against the cross-dataset
consensus and rescales, so the corroborating verdicts argue about the
*link*, not about the methodology.

Procedure (robust, per metric):

1. per calibration region, compute each dataset's median;
2. the region's consensus is the median of those dataset medians;
3. a dataset's bias factor is the median over regions of
   (dataset median / consensus median);
4. :class:`CalibratedSource` divides a dataset's quantiles by its factor.

Medians-of-ratios keep single weird regions from poisoning the factor.
Calibration maps every dataset onto the *consensus* scale — which is
not ground truth; it removes methodology spread, not shared bias. The
``ext-calib`` bench quantifies exactly that: single-dataset IQB scores
converge after calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core.aggregation import QuantileSource, percentile_of
from repro.core.exceptions import DataError
from repro.core.metrics import Metric

from .collection import MeasurementSet

#: Metrics calibrated by default: the throughput methodologies differ
#: most; latency and loss estimators differ too but their biases are
#: partly additive, so rescaling them is opt-in.
DEFAULT_CALIBRATED_METRICS: Tuple[Metric, ...] = (
    Metric.DOWNLOAD,
    Metric.UPLOAD,
)

#: Minimum tests a (region, dataset, metric) cell needs to participate.
MIN_SAMPLES_PER_CELL = 20


@dataclass(frozen=True)
class BiasModel:
    """Estimated multiplicative biases per (dataset, metric)."""

    factors: Mapping[Tuple[str, Metric], float]
    regions_used: Tuple[str, ...]

    def factor(self, dataset: str, metric: Metric) -> float:
        """The dataset's bias factor for a metric (1.0 if unknown)."""
        return self.factors.get((dataset, metric), 1.0)

    def calibrate(
        self, sources: Mapping[str, QuantileSource]
    ) -> Dict[str, "CalibratedSource"]:
        """Wrap every source with its estimated corrections."""
        return {
            name: CalibratedSource(source, self, name)
            for name, source in sources.items()
        }


class CalibratedSource:
    """QuantileSource adapter dividing quantiles by the dataset's bias."""

    def __init__(
        self,
        source: QuantileSource,
        model: BiasModel,
        dataset: str,
    ) -> None:
        self._source = source
        self._model = model
        self._dataset = dataset

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        value = self._source.quantile(metric, percentile)
        if value is None:
            return None
        return value / self._model.factor(self._dataset, metric)

    def sample_count(self, metric: Metric) -> int:
        return self._source.sample_count(metric)


def _median(values: Sequence[float]) -> float:
    return percentile_of(values, 50.0)


def estimate_biases(
    records: MeasurementSet,
    metrics: Sequence[Metric] = DEFAULT_CALIBRATED_METRICS,
    min_samples: int = MIN_SAMPLES_PER_CELL,
) -> BiasModel:
    """Fit a :class:`BiasModel` from a multi-region calibration set.

    Every region present in ``records`` contributes one bias ratio per
    (dataset, metric) cell that has at least ``min_samples`` tests from
    at least two datasets (a consensus of one is no consensus).

    Raises:
        DataError: when no (dataset, metric) cell can be estimated.
    """
    by_region = records.group_by_region()
    ratios: Dict[Tuple[str, Metric], list] = {}
    for region, regional in by_region.items():
        by_source = regional.group_by_source()
        for metric in metrics:
            medians: Dict[str, float] = {}
            for dataset, subset in by_source.items():
                values = subset.values(metric)
                if len(values) >= min_samples:
                    medians[dataset] = _median(values)
            if len(medians) < 2:
                continue
            consensus = _median(sorted(medians.values()))
            if consensus <= 0:
                continue
            for dataset, median in medians.items():
                ratios.setdefault((dataset, metric), []).append(
                    median / consensus
                )
    if not ratios:
        raise DataError(
            "no (dataset, metric) cell had enough corroborated data "
            "to estimate biases"
        )
    factors = {
        key: _median(sorted(values)) for key, values in ratios.items()
    }
    return BiasModel(
        factors=factors, regions_used=tuple(sorted(by_region))
    )
