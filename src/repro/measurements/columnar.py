"""Columnar measurement plane: the scoring hot path's fast layout.

The IQB scoring rule is percentile-centric, so barometer-scale cost is
dominated by repeated quantile aggregation over the same measurements.
The row-oriented :class:`~repro.measurements.collection.MeasurementSet`
is the right *ingest* shape — one frozen record per test — but scoring
six use cases over four metrics re-reads every record dozens of times.

:class:`ColumnarStore` transposes a record batch once into per-metric
numpy columns plus dict-based group indexes (region / source / ISP),
then hands out :class:`ColumnarView` objects — lightweight row-index
selections that implement the QuantileSource protocol. Views share the
store's columns (no record copying), lazily materialize one sorted
value array per metric they are asked about, and memoize every
(metric, percentile) answer. Scoring all regions of a national batch
therefore groups once, sorts each (region, source, metric) column once,
and answers the six-use-case percentile fan-out from cache.

Numerical contract: every quantile a view answers is bit-identical to
``MeasurementSet.quantile`` over the same records (both reduce to the
single :func:`~repro.core.aggregation.percentile_of` definition), which
is what lets :func:`repro.core.scoring.score_regions` swap in for the
per-region re-group loop without changing a single ScoreBreakdown.

The store is deliberately immutable: build it from a finished batch.
Accumulating sinks rebuild (cheaply, one pass) when they need fresh
columns — see :class:`repro.probing.sinks.MemorySink`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.aggregation import percentile_of
from repro.core.metrics import Metric
from repro.obs import counter

from .record import Measurement

# Columnar quantile-plane telemetry: these are what make PR 1's
# memoization verifiable in production — a healthy batch-scoring run
# shows hits ≫ misses and sorts bounded by (groups × metrics).
_HITS = counter("quantile_cache.columnar.hits")
_MISSES = counter("quantile_cache.columnar.misses")
_SORTS = counter("quantile_cache.columnar.sorts")

#: Group axes the store indexes out of the box.
AXES = ("region", "source", "isp")


class ColumnarView:
    """A row selection of a :class:`ColumnarStore` (QuantileSource).

    Holds only a reference to the parent store and an integer row-index
    array; per-metric sorted value arrays and quantile answers are
    materialized on first use and cached for the life of the view.
    """

    __slots__ = ("_store", "_rows", "_sorted", "_quantiles")

    def __init__(self, store: "ColumnarStore", rows: np.ndarray) -> None:
        self._store = store
        self._rows = rows
        self._sorted: Dict[Metric, np.ndarray] = {}
        self._quantiles: Dict[Tuple[Metric, float], Optional[float]] = {}

    def __len__(self) -> int:
        return int(self._rows.size)

    def __repr__(self) -> str:
        return f"ColumnarView({self._rows.size} rows)"

    def sorted_values(self, metric: Metric) -> np.ndarray:
        """Sorted non-missing values of ``metric`` in this view (cached)."""
        cached = self._sorted.get(metric)
        if cached is None:
            _SORTS.inc()
            column = self._store.column(metric)
            values = column[self._rows] if self._rows.size else column[:0]
            values = values[~np.isnan(values)]
            values.sort()
            self._sorted[metric] = cached = values
        return cached

    def values(self, metric: Metric) -> List[float]:
        """Non-missing values of ``metric``, in record order."""
        column = self._store.column(metric)
        selected = column[self._rows] if self._rows.size else column[:0]
        return selected[~np.isnan(selected)].tolist()

    # -- QuantileSource protocol ------------------------------------------

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Memoized percentile over the view's sorted column."""
        key = (metric, percentile)
        if key in self._quantiles:
            _HITS.inc()
            return self._quantiles[key]
        _MISSES.inc()
        values = self.sorted_values(metric)
        answer: Optional[float]
        if values.size == 0:
            answer = None
        else:
            answer = percentile_of(values, percentile, assume_sorted=True)
        self._quantiles[key] = answer
        return answer

    def sample_count(self, metric: Metric) -> int:
        """Observation count for the metric (QuantileSource)."""
        return int(self.sorted_values(metric).size)


class ColumnarStore:
    """Per-metric columns + group indexes over one measurement batch.

    Construction is O(records); every column, index, and view is built
    lazily on first request and shared thereafter. The record list is
    adopted as-is when a list is passed (the store never mutates it).
    """

    def __init__(self, records: Iterable[Measurement] = ()) -> None:
        self._records: List[Measurement] = (
            records if isinstance(records, list) else list(records)
        )
        self._columns: Dict[Metric, np.ndarray] = {}
        self._indexes: Dict[str, Dict[str, np.ndarray]] = {}
        self._pair_index: Optional[Dict[Tuple[str, str], np.ndarray]] = None
        self._all_view: Optional[ColumnarView] = None
        self._axis_views: Dict[Tuple[str, str], ColumnarView] = {}
        self._by_region: Optional[Dict[str, Dict[str, ColumnarView]]] = None

    @classmethod
    def from_measurements(
        cls, records: Iterable[Measurement]
    ) -> "ColumnarStore":
        """Build a store from any record iterable (incl. MeasurementSet)."""
        return cls(list(records))

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"ColumnarStore({len(self._records)} records)"

    def records(self) -> Tuple[Measurement, ...]:
        """The underlying records (row order preserved)."""
        return tuple(self._records)

    # -- columns & indexes -------------------------------------------------

    def column(self, metric: Metric) -> np.ndarray:
        """The full value column for ``metric`` (NaN where unobserved)."""
        cached = self._columns.get(metric)
        if cached is None:
            field = metric.field_name
            cached = np.array(
                [
                    value if value is not None else np.nan
                    for value in (
                        getattr(record, field) for record in self._records
                    )
                ],
                dtype=np.float64,
            )
            self._columns[metric] = cached
        return cached

    def index(self, axis: str) -> Dict[str, np.ndarray]:
        """Group index for one axis: key → row-index array.

        Axes are ``"region"``, ``"source"``, ``"isp"``. The ISP index
        excludes empty ISP names, matching ``MeasurementSet.isps``.
        """
        if axis not in AXES:
            raise KeyError(f"unknown group axis: {axis!r} (have {AXES})")
        cached = self._indexes.get(axis)
        if cached is None:
            buckets: Dict[str, List[int]] = {}
            for row, record in enumerate(self._records):
                key = getattr(record, axis)
                if not key:
                    continue
                buckets.setdefault(key, []).append(row)
            cached = {
                key: np.asarray(rows, dtype=np.intp)
                for key, rows in buckets.items()
            }
            self._indexes[axis] = cached
        return cached

    def regions(self) -> Tuple[str, ...]:
        """Distinct regions, sorted."""
        return tuple(sorted(self.index("region")))

    def sources(self) -> Tuple[str, ...]:
        """Distinct dataset names, sorted."""
        return tuple(sorted(self.index("source")))

    def isps(self) -> Tuple[str, ...]:
        """Distinct ISPs, sorted (empty names excluded)."""
        return tuple(sorted(self.index("isp")))

    # -- views -------------------------------------------------------------

    def view(
        self,
        region: Optional[str] = None,
        source: Optional[str] = None,
        isp: Optional[str] = None,
    ) -> ColumnarView:
        """A QuantileSource over the selected rows.

        With no arguments, the whole store; with one argument the cached
        per-group view; with several, the intersection of the group
        indexes (row order preserved).
        """
        selected = [
            (axis, key)
            for axis, key in (
                ("region", region),
                ("source", source),
                ("isp", isp),
            )
            if key is not None
        ]
        if not selected:
            if self._all_view is None:
                self._all_view = ColumnarView(
                    self, np.arange(len(self._records), dtype=np.intp)
                )
            return self._all_view
        if len(selected) == 1:
            axis, key = selected[0]
            cache_key = (axis, key)
            view = self._axis_views.get(cache_key)
            if view is None:
                rows = self.index(axis).get(
                    key, np.empty(0, dtype=np.intp)
                )
                view = ColumnarView(self, rows)
                self._axis_views[cache_key] = view
            return view
        rows: Optional[np.ndarray] = None
        for axis, key in selected:
            axis_rows = self.index(axis).get(key, np.empty(0, dtype=np.intp))
            rows = (
                axis_rows
                if rows is None
                else np.intersect1d(rows, axis_rows, assume_unique=True)
            )
        return ColumnarView(self, rows)

    def sources_by_region(self) -> Dict[str, Dict[str, ColumnarView]]:
        """region → dataset → QuantileSource, grouped in one pass.

        This is the batch-scoring plane: the mapping plugs straight into
        :func:`repro.core.scoring.score_region` per region (or, better,
        :func:`repro.core.scoring.score_regions` consumes it wholesale).
        Views are cached, so repeated scoring shares every sorted column.
        """
        if self._by_region is None:
            if self._pair_index is None:
                buckets: Dict[Tuple[str, str], List[int]] = {}
                for row, record in enumerate(self._records):
                    buckets.setdefault(
                        (record.region, record.source), []
                    ).append(row)
                self._pair_index = {
                    key: np.asarray(rows, dtype=np.intp)
                    for key, rows in buckets.items()
                }
            grouped: Dict[str, Dict[str, ColumnarView]] = {}
            for (region, source), rows in self._pair_index.items():
                grouped.setdefault(region, {})[source] = ColumnarView(
                    self, rows
                )
            self._by_region = grouped
        return {region: dict(views) for region, views in self._by_region.items()}

    # -- whole-store QuantileSource ---------------------------------------

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Percentile over every record in the store (QuantileSource)."""
        return self.view().quantile(metric, percentile)

    def sample_count(self, metric: Metric) -> int:
        """Store-wide observation count for the metric (QuantileSource)."""
        return self.view().sample_count(metric)
