"""Columnar measurement plane: the scoring hot path's fast layout.

The IQB scoring rule is percentile-centric, so barometer-scale cost is
dominated by repeated quantile aggregation over the same measurements.
The row-oriented :class:`~repro.measurements.collection.MeasurementSet`
is the right *ingest* shape — one frozen record per test — but scoring
six use cases over four metrics re-reads every record dozens of times.

:class:`ColumnarStore` transposes a record batch once into per-metric
numpy columns plus dict-based group indexes (region / source / ISP),
then hands out :class:`ColumnarView` objects — lightweight row-index
selections that implement the QuantileSource protocol. Views share the
store's columns (no record copying) and memoize every
(metric, percentile) answer.

Sorting happens once per metric, store-wide: :meth:`_pair_plane` groups
a metric column by (region, dataset) pair with one ``lexsort`` and
keeps the segment offsets, so a pair view's ``sorted_values`` is a
zero-copy slice of the shared plane instead of a per-view re-sort.
The same planes feed :meth:`aggregate_cube`, the batched aggregate
``A[region, dataset, metric]`` (plus sample counts) that the
vectorized scoring kernel (:mod:`repro.core.kernel`) consumes: every
cell's percentile is computed in one vectorized pass with exactly the
:func:`~repro.core.aggregation._interpolate_sorted` arithmetic.

Numerical contract: every quantile a view answers — and every cell of
the aggregate cube — is bit-identical to ``MeasurementSet.quantile``
over the same records (all reduce to the single
:func:`~repro.core.aggregation.percentile_of` definition), which is
what lets :func:`repro.core.scoring.score_regions` swap in for the
per-region re-group loop without changing a single ScoreBreakdown.

The exact plane is batch-shaped: build it from a finished batch, and
treat :meth:`ColumnarStore.append` as a batch boundary — it adopts the
new records, drops every derived column/index/plane/view (stale views
must be re-fetched), and incrementally feeds the store's attached
:class:`~.sketchplane.SketchPlane` (if one was requested via
:meth:`ColumnarStore.sketch_plane`), which is how the streaming scoring
path stays O(1) per arrival while the exact plane stays a rebuild-on-
read batch artifact. Accumulating sinks rebuild (cheaply, one pass)
when they need fresh columns — see
:class:`repro.probing.sinks.MemorySink`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import percentile_of
from repro.core.metrics import Metric
from repro.obs import counter

from .record import Measurement

# Columnar quantile-plane telemetry: these are what make PR 1's
# memoization verifiable in production — a healthy batch-scoring run
# shows hits ≫ misses and sorts bounded by the number of metric planes
# (or, for ad-hoc views, groups × metrics).
_HITS = counter("quantile_cache.columnar.hits")
_MISSES = counter("quantile_cache.columnar.misses")
_SORTS = counter("quantile_cache.columnar.sorts")

#: Group axes the store indexes out of the box.
AXES = ("region", "source", "isp")


class _MetricPlane:
    """One metric column grouped by (region, dataset) pair, sorted once.

    ``values`` holds every non-missing observation of the metric,
    ordered by pair slot then ascending value; pair ``slot``'s segment
    is ``values[starts[slot] : starts[slot] + counts[slot]]``.
    """

    __slots__ = ("values", "starts", "counts")

    def __init__(
        self, values: np.ndarray, starts: np.ndarray, counts: np.ndarray
    ) -> None:
        self.values = values
        self.starts = starts
        self.counts = counts


class AggregateCube:
    """Batched percentile aggregates: ``A[region, dataset, metric]``.

    ``aggregates`` is NaN where a (region, dataset) pair has no
    observations for a metric (including datasets absent from the
    batch); ``counts`` carries the matching sample counts. ``cells`` is
    the number of non-empty cells — the quantile answers the cube
    effectively memoizes, reported on the columnar cache counters.
    """

    __slots__ = ("regions", "aggregates", "counts", "cells")

    def __init__(
        self,
        regions: Tuple[str, ...],
        aggregates: np.ndarray,
        counts: np.ndarray,
        cells: int,
    ) -> None:
        self.regions = regions
        self.aggregates = aggregates
        self.counts = counts
        self.cells = cells


class ColumnarView:
    """A row selection of a :class:`ColumnarStore` (QuantileSource).

    Holds only a reference to the parent store and an integer row-index
    array; per-metric sorted value arrays and quantile answers are
    materialized on first use and cached for the life of the view.
    Views covering exactly one (region, dataset) pair additionally know
    their pair slot, so their sorted values are shared slices of the
    store-wide metric planes.
    """

    __slots__ = ("_store", "_rows", "_sorted", "_quantiles", "_pair")

    def __init__(
        self,
        store: "ColumnarStore",
        rows: np.ndarray,
        pair: Optional[int] = None,
    ) -> None:
        self._store = store
        self._rows = rows
        self._sorted: Dict[Metric, np.ndarray] = {}
        self._quantiles: Dict[Tuple[Metric, float], Optional[float]] = {}
        self._pair = pair

    def __len__(self) -> int:
        return int(self._rows.size)

    def __repr__(self) -> str:
        return f"ColumnarView({self._rows.size} rows)"

    def sorted_values(self, metric: Metric) -> np.ndarray:
        """Sorted non-missing values of ``metric`` in this view (cached).

        Pair views slice the store's shared per-metric plane (sorted
        once store-wide); ad-hoc views fall back to a per-view sort.
        """
        cached = self._sorted.get(metric)
        if cached is None:
            if self._pair is not None:
                plane = self._store._pair_plane(metric)
                start = int(plane.starts[self._pair])
                stop = start + int(plane.counts[self._pair])
                cached = plane.values[start:stop]
            else:
                _SORTS.inc()
                column = self._store.column(metric)
                values = column[self._rows] if self._rows.size else column[:0]
                values = values[~np.isnan(values)]
                values.sort()
                cached = values
            self._sorted[metric] = cached
        return cached

    def values(self, metric: Metric) -> np.ndarray:
        """Non-missing values of ``metric``, in record order (ndarray).

        Returns the float64 array directly — this sits on the scoring
        hot path. Callers that need a Python list (serialization,
        ``==`` against literals) should use :meth:`value_list`.
        """
        column = self._store.column(metric)
        selected = column[self._rows] if self._rows.size else column[:0]
        return selected[~np.isnan(selected)]

    def value_list(self, metric: Metric) -> List[float]:
        """:meth:`values` as a plain Python list (compat shim)."""
        return self.values(metric).tolist()

    # -- QuantileSource protocol ------------------------------------------

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Memoized percentile over the view's sorted column."""
        key = (metric, percentile)
        if key in self._quantiles:
            _HITS.inc()
            return self._quantiles[key]
        _MISSES.inc()
        values = self.sorted_values(metric)
        answer: Optional[float]
        if values.size == 0:
            answer = None
        else:
            answer = percentile_of(values, percentile, assume_sorted=True)
        self._quantiles[key] = answer
        return answer

    def sample_count(self, metric: Metric) -> int:
        """Observation count for the metric (QuantileSource)."""
        return int(self.sorted_values(metric).size)


class ColumnarStore:
    """Per-metric columns + group indexes over one measurement batch.

    Construction is O(records); every column, index, plane, and view is
    built lazily on first request and shared thereafter. The record
    list is adopted as-is when a list is passed (the store never
    mutates it).
    """

    #: Native quantile plane (kernel provenance): exact sorted columns.
    QUANTILE_SOURCE = "exact"

    def __init__(self, records: Iterable[Measurement] = ()) -> None:
        self._records: List[Measurement] = (
            records if isinstance(records, list) else list(records)
        )
        self._columns: Dict[Metric, np.ndarray] = {}
        self._indexes: Dict[str, Dict[str, np.ndarray]] = {}
        self._pair_index: Optional[Dict[Tuple[str, str], np.ndarray]] = None
        self._pair_keys: Optional[Tuple[Tuple[str, str], ...]] = None
        self._pair_slots: Optional[Dict[Tuple[str, str], int]] = None
        self._pair_ids: Optional[np.ndarray] = None
        self._planes: Dict[Metric, _MetricPlane] = {}
        self._cubes: Dict[
            Tuple[Tuple[str, ...], Tuple[float, ...]], AggregateCube
        ] = {}
        self._all_view: Optional[ColumnarView] = None
        self._axis_views: Dict[Tuple[str, str], ColumnarView] = {}
        self._pair_views: Dict[Tuple[str, str], ColumnarView] = {}
        self._by_region: Optional[Dict[str, Dict[str, ColumnarView]]] = None
        # Adopted lists belong to the caller until the first append
        # copies them (the store promises never to mutate its input).
        self._owns_records = not isinstance(records, list)
        self._sketch = None  # type: Optional["SketchPlane"]
        self.generation = 0

    @classmethod
    def from_measurements(
        cls, records: Iterable[Measurement]
    ) -> "ColumnarStore":
        """Build a store from any record iterable (incl. MeasurementSet)."""
        return cls(list(records))

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"ColumnarStore({len(self._records)} records)"

    def records(self) -> Tuple[Measurement, ...]:
        """The underlying records (row order preserved)."""
        return tuple(self._records)

    # -- streaming ingest --------------------------------------------------

    def append(self, records: Iterable[Measurement]) -> None:
        """Adopt new records: a batch boundary for the exact plane.

        Every derived artifact (columns, indexes, sorted planes, cubes,
        views) is dropped — views handed out before the append are
        frozen snapshots of the old batch and must be re-fetched — but
        the attached sketch plane (see :meth:`sketch_plane`) is fed
        *incrementally*, O(1) amortized per record, which is what lets
        the streaming scoring path re-score after an append without the
        O(n log n) exact-plane rebuild.

        Each non-empty call also bumps :attr:`generation` — but only
        *after* the records are adopted, the stale caches dropped, and
        the sketch plane fed, so a reader that observes the new stamp
        is guaranteed a fully consistent plane. Generation-keyed caches
        (the serving layer's score cache) invalidate on a single
        integer compare.
        """
        new = records if isinstance(records, list) else list(records)
        if not new:
            return
        if not self._owns_records:
            self._records = list(self._records)
            self._owns_records = True
        self._records.extend(new)
        self._columns.clear()
        self._indexes.clear()
        self._pair_index = None
        self._pair_keys = None
        self._pair_slots = None
        self._pair_ids = None
        self._planes.clear()
        self._cubes.clear()
        self._all_view = None
        self._axis_views.clear()
        self._pair_views.clear()
        self._by_region = None
        if self._sketch is not None:
            # The plane's own add() notifies the health monitor per
            # record; notifying here too would double-count arrivals.
            self._sketch.extend(new)
        else:
            from repro.obs.health import get_health_monitor

            health = get_health_monitor()
            if health is not None:
                for record in new:
                    health.record_arrival(
                        record.region, record.source, record.timestamp
                    )
        # Bumped last: the plane is fully consistent (records adopted,
        # caches dropped, sketch fed) before the stamp moves, so a
        # stamp can never name a partially-appended batch.
        self.generation += 1

    def sketch_plane(self, delta: Optional[int] = None) -> "SketchPlane":
        """The store's attached sketch plane, built lazily and kept fed.

        The first call sketches the current records in one pass;
        afterwards :meth:`append` streams new records straight into the
        plane, so re-reading it is free. ``delta`` only takes effect on
        the first call (the plane is built once); later calls with a
        different delta raise rather than silently answer at the wrong
        compression.
        """
        from .sketchplane import SketchPlane
        from .tdigest import DEFAULT_DELTA

        if self._sketch is None:
            self._sketch = SketchPlane(
                delta=delta if delta is not None else DEFAULT_DELTA
            )
            self._sketch.extend(self._records)
        elif delta is not None and delta != self._sketch.delta:
            raise ValueError(
                f"store sketch plane already built at delta="
                f"{self._sketch.delta}; requested {delta}"
            )
        return self._sketch

    # -- columns & indexes -------------------------------------------------

    def column(self, metric: Metric) -> np.ndarray:
        """The full value column for ``metric`` (NaN where unobserved)."""
        cached = self._columns.get(metric)
        if cached is None:
            field = metric.field_name
            cached = np.array(
                [
                    value if value is not None else np.nan
                    for value in (
                        getattr(record, field) for record in self._records
                    )
                ],
                dtype=np.float64,
            )
            self._columns[metric] = cached
        return cached

    def index(self, axis: str) -> Dict[str, np.ndarray]:
        """Group index for one axis: key → row-index array.

        Axes are ``"region"``, ``"source"``, ``"isp"``. The ISP index
        excludes empty ISP names, matching ``MeasurementSet.isps``.
        """
        if axis not in AXES:
            raise KeyError(f"unknown group axis: {axis!r} (have {AXES})")
        cached = self._indexes.get(axis)
        if cached is None:
            buckets: Dict[str, List[int]] = {}
            for row, record in enumerate(self._records):
                key = getattr(record, axis)
                if not key:
                    continue
                buckets.setdefault(key, []).append(row)
            cached = {
                key: np.asarray(rows, dtype=np.intp)
                for key, rows in buckets.items()
            }
            self._indexes[axis] = cached
        return cached

    def regions(self) -> Tuple[str, ...]:
        """Distinct regions, sorted."""
        return tuple(sorted(self.index("region")))

    def sources(self) -> Tuple[str, ...]:
        """Distinct dataset names, sorted."""
        return tuple(sorted(self.index("source")))

    def isps(self) -> Tuple[str, ...]:
        """Distinct ISPs, sorted (empty names excluded)."""
        return tuple(sorted(self.index("isp")))

    # -- pair planes (store-wide one-sort-per-metric layout) ---------------

    def _ensure_pairs(self) -> None:
        """Build the (region, dataset) pair index, slots, and row → slot map."""
        if self._pair_slots is not None:
            return
        if self._pair_index is None:
            buckets: Dict[Tuple[str, str], List[int]] = {}
            for row, record in enumerate(self._records):
                buckets.setdefault(
                    (record.region, record.source), []
                ).append(row)
            self._pair_index = {
                key: np.asarray(rows, dtype=np.intp)
                for key, rows in buckets.items()
            }
        self._pair_keys = tuple(sorted(self._pair_index))
        self._pair_slots = {
            key: slot for slot, key in enumerate(self._pair_keys)
        }
        ids = np.empty(len(self._records), dtype=np.intp)
        for key, rows in self._pair_index.items():
            ids[rows] = self._pair_slots[key]
        self._pair_ids = ids

    def _pair_plane(self, metric: Metric) -> _MetricPlane:
        """The metric's column grouped by pair and sorted, built once.

        One ``lexsort`` replaces a sort per (region, dataset) view: the
        column is ordered by pair slot first, value second, and every
        pair's segment is located by the prefix-sum offsets.
        """
        plane = self._planes.get(metric)
        if plane is None:
            self._ensure_pairs()
            _SORTS.inc()
            column = self.column(metric)
            valid = ~np.isnan(column)
            values = column[valid]
            ids = self._pair_ids[valid]
            order = np.lexsort((values, ids))
            counts = np.bincount(ids, minlength=len(self._pair_keys))
            starts = np.cumsum(counts) - counts
            plane = _MetricPlane(values[order], starts, counts)
            self._planes[metric] = plane
        return plane

    def aggregate_cube(
        self,
        datasets: Sequence[str],
        percentiles: Sequence[float],
    ) -> AggregateCube:
        """Percentile aggregates for every (region, dataset, metric) cell.

        Args:
            datasets: dataset axis of the cube, in order (typically the
                config's sorted dataset names); batch datasets not
                listed are dropped, listed datasets without data yield
                NaN cells.
            percentiles: the percentile to evaluate per metric, aligned
                with :meth:`Metric.ordered` (direction-resolved by the
                caller's aggregation policy).

        Every cell is computed with the vectorized equivalent of
        :func:`~repro.core.aggregation._interpolate_sorted` — the same
        floor/lerp branch structure, so answers are bit-identical to
        ``ColumnarView.quantile`` on the pair's sorted values. Cubes
        are cached per (datasets, percentiles) key; the cache counters
        mirror the per-view memoization they replace (one miss per
        non-empty cell on build, the same number of hits on reuse).
        """
        key = (tuple(datasets), tuple(float(p) for p in percentiles))
        cached = self._cubes.get(key)
        if cached is not None:
            _HITS.inc(cached.cells)
            return cached
        self._ensure_pairs()
        metrics = Metric.ordered()
        if len(key[1]) != len(metrics):
            raise ValueError(
                f"aggregate_cube needs one percentile per metric "
                f"({len(metrics)}), got {len(key[1])}"
            )
        regions = self.regions()
        region_slot = {name: g for g, name in enumerate(regions)}
        dataset_slot = {name: d for d, name in enumerate(key[0])}
        shape = (len(regions), len(key[0]), len(metrics))
        aggregates = np.full(shape, np.nan, dtype=np.float64)
        counts = np.zeros(shape, dtype=np.int64)
        # Pairs that land in the cube: their plane slot and (g, d) cell.
        slots: List[int] = []
        g_idx: List[int] = []
        d_idx: List[int] = []
        for slot, (region, source) in enumerate(self._pair_keys or ()):
            d = dataset_slot.get(source)
            if d is None:
                continue
            slots.append(slot)
            g_idx.append(region_slot[region])
            d_idx.append(d)
        if slots:
            slot_arr = np.asarray(slots, dtype=np.intp)
            g_arr = np.asarray(g_idx, dtype=np.intp)
            d_arr = np.asarray(d_idx, dtype=np.intp)
            for r, metric in enumerate(metrics):
                plane = self._pair_plane(metric)
                n = plane.counts[slot_arr]
                counts[g_arr, d_arr, r] = n
                nz = n > 0
                if not nz.any():
                    continue
                ns = n[nz].astype(np.float64)
                seg_starts = plane.starts[slot_arr][nz]
                pos = (key[1][r] / 100.0) * (ns - 1.0)
                lo = np.floor(pos)
                hi = np.minimum(lo + 1.0, ns - 1.0)
                gamma = pos - lo
                a = plane.values[seg_starts + lo.astype(np.intp)]
                b = plane.values[seg_starts + hi.astype(np.intp)]
                aggregates[g_arr[nz], d_arr[nz], r] = np.where(
                    gamma >= 0.5,
                    b - (b - a) * (1.0 - gamma),
                    a + (b - a) * gamma,
                )
        cube = AggregateCube(
            regions=regions,
            aggregates=aggregates,
            counts=counts,
            cells=int(np.count_nonzero(counts)),
        )
        _MISSES.inc(cube.cells)
        self._cubes[key] = cube
        return cube

    # -- views -------------------------------------------------------------

    def view(
        self,
        region: Optional[str] = None,
        source: Optional[str] = None,
        isp: Optional[str] = None,
    ) -> ColumnarView:
        """A QuantileSource over the selected rows.

        With no arguments, the whole store; with one argument the cached
        per-group view; with several, the intersection of the group
        indexes (row order preserved). (region, source) selections are
        cached pair views sharing the store-wide sorted planes.
        """
        if region is not None and source is not None and isp is None:
            return self._pair_view(region, source)
        selected = [
            (axis, key)
            for axis, key in (
                ("region", region),
                ("source", source),
                ("isp", isp),
            )
            if key is not None
        ]
        if not selected:
            if self._all_view is None:
                self._all_view = ColumnarView(
                    self, np.arange(len(self._records), dtype=np.intp)
                )
            return self._all_view
        if len(selected) == 1:
            axis, key = selected[0]
            cache_key = (axis, key)
            view = self._axis_views.get(cache_key)
            if view is None:
                rows = self.index(axis).get(
                    key, np.empty(0, dtype=np.intp)
                )
                view = ColumnarView(self, rows)
                self._axis_views[cache_key] = view
            return view
        rows: Optional[np.ndarray] = None
        for axis, key in selected:
            axis_rows = self.index(axis).get(key, np.empty(0, dtype=np.intp))
            rows = (
                axis_rows
                if rows is None
                else np.intersect1d(rows, axis_rows, assume_unique=True)
            )
        return ColumnarView(self, rows)

    def _pair_view(self, region: str, source: str) -> ColumnarView:
        """The cached plane-backed view of one (region, dataset) pair."""
        key = (region, source)
        view = self._pair_views.get(key)
        if view is None:
            self._ensure_pairs()
            assert self._pair_index is not None  # _ensure_pairs built it
            rows = self._pair_index.get(key)
            if rows is None:
                view = ColumnarView(self, np.empty(0, dtype=np.intp))
            else:
                view = ColumnarView(
                    self, rows, pair=self._pair_slots[key]
                )
            self._pair_views[key] = view
        return view

    def sources_by_region(self) -> Dict[str, Dict[str, ColumnarView]]:
        """region → dataset → QuantileSource, grouped in one pass.

        This is the batch-scoring plane: the mapping plugs straight into
        :func:`repro.core.scoring.score_region` per region (or, better,
        :func:`repro.core.scoring.score_regions` consumes it wholesale).
        Views are cached pair views, so repeated scoring shares every
        plane-sorted column.
        """
        if self._by_region is None:
            self._ensure_pairs()
            grouped: Dict[str, Dict[str, ColumnarView]] = {}
            for region, source in self._pair_keys or ():
                grouped.setdefault(region, {})[source] = self._pair_view(
                    region, source
                )
            self._by_region = grouped
        return {region: dict(views) for region, views in self._by_region.items()}

    # -- whole-store QuantileSource ---------------------------------------

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Percentile over every record in the store (QuantileSource)."""
        return self.view().quantile(metric, percentile)

    def sample_count(self, metric: Metric) -> int:
        """Store-wide observation count for the metric (QuantileSource)."""
        return self.view().sample_count(metric)
