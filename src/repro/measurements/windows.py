"""Time windowing of measurement sets.

A barometer is tracked over time: daily scores, prime-time vs off-peak
contrasts, month-over-month trends. This module slices a
:class:`~repro.measurements.collection.MeasurementSet` along its
timestamps:

* :func:`time_buckets` — fixed-width windows (e.g. daily);
* :func:`by_hour_of_day` — fold the campaign onto the 24-hour clock;
* :func:`peak_split` — the prime-time / off-peak partition (the
  contrast that congestion-sensitive metrics live or die by).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.timeutil import hour_of_day

from .collection import MeasurementSet

#: The evening window regulators and ISPs both call "peak".
PEAK_START_HOUR = 18.0
PEAK_END_HOUR = 23.0


@dataclass(frozen=True)
class TimeBucket:
    """One fixed-width window of a campaign."""

    start: float
    end: float
    records: MeasurementSet

    @property
    def midpoint(self) -> float:
        """Centre timestamp, convenient for plotting/trend fits."""
        return (self.start + self.end) / 2.0


def time_buckets(
    records: MeasurementSet,
    width_seconds: float,
    start: Optional[float] = None,
) -> List[TimeBucket]:
    """Slice records into consecutive fixed-width windows.

    Interior windows are half-open ``[start, start+width)``; the final
    window is closed, ``[start, start+width]``, so a last timestamp
    landing exactly on a boundary belongs to the window it ends rather
    than spawning a spurious trailing window that starts *at* the last
    record. Every record lands in exactly one window, and the windows
    cover the full timestamp span; empty interior windows are
    preserved (a monitoring gap is information, not something to
    silently squeeze out).

    Raises:
        ValueError: for a non-positive width or an empty record set.
    """
    if width_seconds <= 0:
        raise ValueError(f"width_seconds must be positive: {width_seconds}")
    if len(records) == 0:
        raise ValueError("cannot bucket an empty measurement set")
    timestamps = [record.timestamp for record in records]
    first = min(timestamps) if start is None else start
    last = max(timestamps)
    buckets: List[TimeBucket] = []
    window_start = first
    while True:
        window_end = window_start + width_seconds
        final = window_end >= last
        if final:
            window = records.filter(
                lambda r: window_start <= r.timestamp <= window_end
            )
        else:
            window = records.between(window_start, window_end)
        buckets.append(
            TimeBucket(start=window_start, end=window_end, records=window)
        )
        if final:
            return buckets
        window_start = window_end


def by_hour_of_day(
    records: MeasurementSet, bin_hours: float = 1.0
) -> Dict[float, MeasurementSet]:
    """Fold a campaign onto the 24-hour clock.

    Returns {bin start hour → records}, with every bin present (possibly
    empty) so diurnal plots have a complete x-axis.

    Raises:
        ValueError: when ``bin_hours`` does not divide 24.
    """
    if bin_hours <= 0 or (24.0 / bin_hours) != int(24.0 / bin_hours):
        raise ValueError(f"bin_hours must evenly divide 24: {bin_hours}")
    bins: Dict[float, List] = {
        i * bin_hours: [] for i in range(int(24.0 / bin_hours))
    }
    for record in records:
        hour = hour_of_day(record.timestamp)
        bin_start = (hour // bin_hours) * bin_hours
        bins[bin_start].append(record)
    return {start: MeasurementSet(items) for start, items in bins.items()}


def peak_split(
    records: MeasurementSet,
    peak_start: float = PEAK_START_HOUR,
    peak_end: float = PEAK_END_HOUR,
) -> Tuple[MeasurementSet, MeasurementSet]:
    """Partition records into (peak, off_peak) by local hour.

    The peak window is ``[peak_start, peak_end)`` and must not wrap
    midnight (the canonical 18:00-23:00 window does not).
    """
    if not 0.0 <= peak_start < peak_end <= 24.0:
        raise ValueError(
            f"invalid peak window: [{peak_start}, {peak_end})"
        )
    peak = records.filter(
        lambda r: peak_start <= hour_of_day(r.timestamp) < peak_end
    )
    off_peak = records.filter(
        lambda r: not peak_start <= hour_of_day(r.timestamp) < peak_end
    )
    return peak, off_peak
