"""Pre-aggregated dataset tables (the Ookla-style code path).

Ookla's open data is published only as regional aggregates, not raw
tests. IQB must therefore answer "what is the 95th percentile of this
region?" from a handful of *published quantile knots* rather than from
raw values. :class:`AggregateTable` models exactly that: per metric it
stores a small monotone set of (percentile, value) knots plus the test
count, and answers arbitrary percentile queries by piecewise-linear
interpolation between knots (clamped to the outermost knots beyond the
published range — a documented bias of aggregate-only datasets that the
corroboration bench makes visible).

:func:`aggregate_measurements` plays the role of the publisher: it
reduces a raw :class:`~repro.measurements.collection.MeasurementSet`
to the aggregate form, the same way Ookla reduces its raw tests before
releasing them.

AggregateTable implements the QuantileSource protocol, so scoring code
cannot tell (and must not care) whether a dataset arrived raw or
pre-aggregated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric

from .collection import MeasurementSet

#: Quantile knots a typical aggregate publication carries.
DEFAULT_PUBLISHED_PERCENTILES: Tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)


@dataclass(frozen=True)
class MetricAggregate:
    """Published summary of one metric: quantile knots + sample count."""

    knots: Tuple[Tuple[float, float], ...]
    count: int

    def __post_init__(self) -> None:
        if not self.knots:
            raise SchemaError("aggregate needs at least one quantile knot")
        if self.count <= 0:
            raise SchemaError(f"aggregate count must be positive: {self.count}")
        percentiles = [p for p, _ in self.knots]
        if percentiles != sorted(percentiles):
            raise SchemaError(f"quantile knots not sorted: {percentiles}")
        if len(set(percentiles)) != len(percentiles):
            raise SchemaError(f"duplicate quantile knots: {percentiles}")
        for p, _ in self.knots:
            if not 0.0 <= p <= 100.0:
                raise SchemaError(f"knot percentile out of range: {p}")
        values = [v for _, v in self.knots]
        if values != sorted(values):
            raise SchemaError(
                f"knot values must be non-decreasing in percentile: {values}"
            )

    def quantile(self, percentile: float) -> float:
        """Interpolated percentile; clamped outside the published knots."""
        knots = self.knots
        if percentile <= knots[0][0]:
            return knots[0][1]
        if percentile >= knots[-1][0]:
            return knots[-1][1]
        for (p_lo, v_lo), (p_hi, v_hi) in zip(knots, knots[1:]):
            if p_lo <= percentile <= p_hi:
                if p_hi == p_lo:
                    return v_lo
                frac = (percentile - p_lo) / (p_hi - p_lo)
                return v_lo + frac * (v_hi - v_lo)
        return knots[-1][1]  # unreachable; defensive


class AggregateTable:
    """A region's published aggregates across metrics (QuantileSource)."""

    def __init__(
        self,
        region: str,
        source: str,
        metrics: Mapping[Metric, MetricAggregate],
    ) -> None:
        if not metrics:
            raise SchemaError("aggregate table carries no metrics")
        self.region = region
        self.source = source
        self._metrics: Dict[Metric, MetricAggregate] = dict(metrics)
        # The scorer asks the same (metric, percentile) up to once per
        # use case; knots never change after construction, so answers
        # are memoized for the life of the table.
        self._quantile_cache: Dict[Tuple[Metric, float], Optional[float]] = {}

    def metrics(self) -> Tuple[Metric, ...]:
        """Metrics this table publishes, in canonical order."""
        return tuple(m for m in Metric.ordered() if m in self._metrics)

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        """Interpolated percentile (QuantileSource protocol, memoized)."""
        key = (metric, percentile)
        if key in self._quantile_cache:
            return self._quantile_cache[key]
        aggregate = self._metrics.get(metric)
        answer = None if aggregate is None else aggregate.quantile(percentile)
        self._quantile_cache[key] = answer
        return answer

    def sample_count(self, metric: Metric) -> int:
        """Published test count behind the metric (QuantileSource)."""
        aggregate = self._metrics.get(metric)
        return 0 if aggregate is None else aggregate.count

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "region": self.region,
            "source": self.source,
            "metrics": {
                metric.value: {
                    "count": aggregate.count,
                    "knots": [list(knot) for knot in aggregate.knots],
                }
                for metric, aggregate in self._metrics.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "AggregateTable":
        """Rebuild from :meth:`to_dict` output."""
        try:
            metrics = {
                Metric(name): MetricAggregate(
                    knots=tuple(
                        (float(p), float(v)) for p, v in entry["knots"]
                    ),
                    count=int(entry["count"]),
                )
                for name, entry in doc["metrics"].items()
            }
            return cls(
                region=str(doc["region"]),
                source=str(doc["source"]),
                metrics=metrics,
            )
        except SchemaError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed aggregate document: {exc}") from exc


def aggregate_measurements(
    records: MeasurementSet,
    region: str,
    source: str,
    percentiles: Sequence[float] = DEFAULT_PUBLISHED_PERCENTILES,
    metrics: Optional[Sequence[Metric]] = None,
) -> AggregateTable:
    """Reduce raw measurements to the published aggregate form.

    This simulates the dataset publisher's own aggregation step: for each
    metric present in the records, compute the knot percentiles and the
    test count, drop everything else.

    Raises:
        SchemaError: when the records contain none of the requested
            metrics for the region.
    """
    import numpy as np

    subset = records.for_region(region).for_source(source)
    wanted = tuple(metrics) if metrics is not None else Metric.ordered()
    table: Dict[Metric, MetricAggregate] = {}
    for metric in wanted:
        values = subset.values(metric)
        if not values:
            continue
        # Sort once per metric; every knot interpolates off the same array.
        ordered = np.asarray(values, dtype=np.float64)
        ordered.sort()
        knots = tuple(
            (float(p), _percentile(ordered, p, assume_sorted=True))
            for p in sorted(percentiles)
        )
        table[metric] = MetricAggregate(knots=knots, count=len(values))
    if not table:
        raise SchemaError(
            f"no records for region={region!r} source={source!r} "
            f"carry any requested metric"
        )
    return AggregateTable(region=region, source=source, metrics=table)


def _percentile(
    values: Sequence[float], percentile: float, assume_sorted: bool = False
) -> float:
    from repro.core.aggregation import percentile_of

    return percentile_of(values, percentile, assume_sorted=assume_sorted)
