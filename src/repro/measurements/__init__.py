"""Measurement-data substrate: records, collections, IO, aggregates."""

from .aggregates import (
    DEFAULT_PUBLISHED_PERCENTILES,
    AggregateTable,
    MetricAggregate,
    aggregate_measurements,
)
from .adapters import (
    cloudflare_row_to_measurement,
    flatten_nested,
    ingest_cloudflare,
    ingest_ndt,
    ndt_row_to_measurement,
    ookla_tiles_to_aggregate,
)
from .calibration import (
    BiasModel,
    CalibratedSource,
    estimate_biases,
)
from .collection import MeasurementSet
from .columnar import ColumnarStore, ColumnarView
from .io import (
    IngestStats,
    csv_row_to_measurement,
    iter_csv,
    iter_jsonl,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)
from .quantile import ExactQuantiles, P2Quantile
from .sketchplane import SketchPlane, SketchView, sketch_records
from .tdigest import TDigest
from .record import Measurement
from .windows import (
    PEAK_END_HOUR,
    PEAK_START_HOUR,
    TimeBucket,
    by_hour_of_day,
    peak_split,
    time_buckets,
)

__all__ = [
    "AggregateTable",
    "BiasModel",
    "CalibratedSource",
    "ColumnarStore",
    "ColumnarView",
    "DEFAULT_PUBLISHED_PERCENTILES",
    "ExactQuantiles",
    "IngestStats",
    "Measurement",
    "MeasurementSet",
    "MetricAggregate",
    "P2Quantile",
    "PEAK_END_HOUR",
    "PEAK_START_HOUR",
    "SketchPlane",
    "SketchView",
    "TDigest",
    "TimeBucket",
    "aggregate_measurements",
    "sketch_records",
    "by_hour_of_day",
    "cloudflare_row_to_measurement",
    "csv_row_to_measurement",
    "estimate_biases",
    "flatten_nested",
    "ingest_cloudflare",
    "ingest_ndt",
    "ndt_row_to_measurement",
    "ookla_tiles_to_aggregate",
    "iter_csv",
    "iter_jsonl",
    "peak_split",
    "read_csv",
    "read_jsonl",
    "time_buckets",
    "write_csv",
    "write_jsonl",
]
