"""Quantile estimation: exact and streaming (P²).

The IQB pipeline is percentile-centric — the whole scoring rule hinges
on "the 95th percentile of a region's measurements" — so quantiles get
their own module:

* :class:`ExactQuantiles` keeps all values and answers any percentile
  exactly (linear interpolation, matching ``numpy.percentile``);
* :class:`P2Quantile` is the classic Jain & Chlamtac (1985) P² streaming
  estimator: O(1) memory per tracked quantile, suitable for the probing
  runner's long-lived sinks where holding every raw test is wasteful.

Property-based tests assert P² converges to the exact estimator on
well-behaved streams.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aggregation import percentile_of
from repro.core.exceptions import AggregationError


class ExactQuantiles:
    """Exact percentile answers over an accumulated value list.

    Quantile answers are memoized over a lazily-sorted copy of the
    values; :meth:`add` and :meth:`extend` invalidate both caches, so a
    query after a mutation is always answered fresh.
    """

    def __init__(self, values: Sequence[float] = ()) -> None:
        self._values: List[float] = []
        self._sorted: Optional[np.ndarray] = None
        self._memo: Dict[float, float] = {}
        self.extend(values)

    def _invalidate(self) -> None:
        self._sorted = None
        self._memo.clear()

    def add(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._invalidate()

    def extend(self, values: Sequence[float]) -> None:
        """Record many observations.

        Accepts any array-like wholesale (lists, tuples, generators,
        numpy arrays of any shape) via one ``np.asarray`` conversion
        instead of a per-element ``float()`` round-trip.
        """
        array = np.asarray(
            list(values) if not hasattr(values, "__len__") else values,
            dtype=np.float64,
        )
        if array.size:
            self._values.extend(array.ravel().tolist())
            self._invalidate()

    def __len__(self) -> int:
        return len(self._values)

    def quantile(self, percentile: float) -> float:
        """Exact percentile (linear interpolation, memoized).

        Raises:
            AggregationError: when no values have been recorded.
        """
        if not self._values:
            raise AggregationError("cannot take a percentile of no values")
        cached = self._memo.get(percentile)
        if cached is not None:
            return cached
        if self._sorted is None:
            self._sorted = np.asarray(self._values, dtype=np.float64)
            self._sorted.sort()
        answer = percentile_of(self._sorted, percentile, assume_sorted=True)
        self._memo[percentile] = answer
        return answer


class P2Quantile:
    """Streaming quantile estimation via the P² algorithm.

    Tracks a single quantile ``q`` (as a fraction in (0, 1)) using five
    markers whose heights approximate the quantile curve. Until five
    observations have arrived, answers are exact.

    Reference: Jain & Chlamtac, "The P² algorithm for dynamic
    calculation of quantiles and histograms without storing
    observations", CACM 1985.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise AggregationError(f"P2 quantile fraction must be in (0,1): {q!r}")
        self.q = q
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        """Feed one observation to the estimator."""
        value = float(value)
        self._count += 1
        if len(self._heights) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._bootstrap()
            return
        self._update(value)

    def _bootstrap(self) -> None:
        self._initial.sort()
        q = self.q
        self._heights = list(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0,
            1.0 + 2.0 * q,
            1.0 + 4.0 * q,
            3.0 + 2.0 * q,
            5.0,
        ]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._initial = []

    def _update(self, value: float) -> None:
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            for i in range(4):
                if heights[i] <= value < heights[i + 1]:
                    cell = i
                    break
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            step_up = positions[i + 1] - positions[i]
            step_down = positions[i - 1] - positions[i]
            if (delta >= 1.0 and step_up > 1.0) or (
                delta <= -1.0 and step_down < -1.0
            ):
                direction = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        step = int(direction)
        return h[i] + direction * (h[i + step] - h[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """Current quantile estimate.

        Raises:
            AggregationError: when no values have been recorded.
        """
        if self._count == 0:
            raise AggregationError("P2 estimator has seen no values")
        if self._heights:
            return self._heights[2]
        return percentile_of(self._initial, self.q * 100.0)

    def value_or_none(self) -> Optional[float]:
        """Like :meth:`value` but None instead of raising when empty."""
        return None if self._count == 0 else self.value()
