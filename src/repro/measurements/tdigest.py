"""A merging t-digest for distributed quantile collection.

The P² estimator (:mod:`.quantile`) is O(1) per tracked quantile but
has a hard limitation for real deployments: two P² states cannot be
combined, so a fleet of collectors (M-Lab runs hundreds of sites)
cannot shard the work. The t-digest (Dunning & Ertl) can: centroids are
mergeable, accuracy concentrates at the tails — exactly where the IQB's
95th-percentile rule lives — and memory stays bounded by the
compression parameter.

This is the *merging* variant: incoming values buffer and periodically
merge into the centroid list under a size bound of
``4 · total · q(1−q) / δ`` per centroid (the classic q(1−q) bound),
which keeps tail centroids tiny and mid-range centroids coarse.

Accuracy is property-tested against the exact estimator; shard-merge
equivalence is exercised by the distributed-collection integration
test.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Tuple

from repro.core.exceptions import AggregationError

#: Default compression: ~2x delta centroids retained.
DEFAULT_DELTA = 100


class TDigest:
    """Mergeable streaming quantile sketch.

    Thread-safe: every operation that touches centroid state holds a
    per-instance lock (the same discipline ``Timer`` uses for its
    latency digest), so a monitor thread ``add``-ing while a scorer
    calls ``quantile`` cannot corrupt the centroid list. ``quantile``
    still compacts the buffer — keeping reads amortized O(1) — but the
    compaction happens entirely under the lock, so it is invisible to
    concurrent callers.
    """

    def __init__(self, delta: int = DEFAULT_DELTA) -> None:
        if delta < 10:
            raise AggregationError(f"delta must be >= 10: {delta}")
        self.delta = delta
        #: (mean, weight) centroids, kept sorted by mean after merges.
        self._centroids: List[Tuple[float, float]] = []
        self._buffer: List[Tuple[float, float]] = []
        self._count = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    # -- ingestion ----------------------------------------------------------

    def add(self, value: float, weight: float = 1.0) -> None:
        """Add one observation (optionally weighted)."""
        if weight <= 0:
            raise AggregationError(f"weight must be positive: {weight}")
        value = float(value)
        with self._lock:
            self._buffer.append((value, float(weight)))
            self._count += weight
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._buffer) >= 4 * self.delta:
                self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "TDigest") -> "TDigest":
        """A new digest summarizing both inputs (inputs unchanged).

        The combined centroids are handed straight to one compression
        pass under the merged digest's (smaller) delta — *not* replayed
        through :meth:`add` — so the merged count is exactly
        ``self._count + other._count`` and the extremes are the true
        observed extremes of both inputs, independent of buffering
        thresholds or float re-accumulation order.
        """
        own_points, own_count, own_min, own_max = self._snapshot()
        other_points, other_count, other_min, other_max = other._snapshot()
        merged = TDigest(delta=min(self.delta, other.delta))
        merged._buffer = own_points + other_points
        merged._count = own_count + other_count
        merged._min = _opt_min(own_min, other_min)
        merged._max = _opt_max(own_max, other_max)
        merged._compress()
        return merged

    def _all_centroids(self) -> List[Tuple[float, float]]:
        return self._centroids + self._buffer

    def _snapshot(
        self,
    ) -> Tuple[List[Tuple[float, float]], float, Optional[float], Optional[float]]:
        """A consistent (centroids, count, min, max) view, under the lock."""
        with self._lock:
            return self._all_centroids(), self._count, self._min, self._max

    # -- mergeable state (cross-process shipping) ---------------------------

    def to_state(self) -> dict:
        """JSON-compatible mergeable state (centroids plus extremes).

        The state round-trips through :meth:`from_state` with sketch
        accuracy preserved: centroids carry their weights, and the true
        observed min/max travel alongside (centroid means alone would
        understate the extremes). This is what lets a worker process
        ship its timer digests back to a parent registry.
        """
        points, count, minimum, maximum = self._snapshot()
        return {
            "delta": self.delta,
            "count": count,
            "centroids": [[mean, weight] for mean, weight in points],
            "min": minimum,
            "max": maximum,
        }

    @classmethod
    def from_state(cls, state: dict) -> "TDigest":
        """Rebuild a digest exported by :meth:`to_state`.

        Centroids are restored directly (one compression pass) rather
        than replayed through :meth:`add`: replaying re-derives the
        extremes from centroid *means* and re-accumulates the count in
        a different float order, both of which drift from the exported
        digest. The state's recorded count and min/max are
        authoritative; older states without a ``count`` key fall back
        to summing centroid weights.
        """
        digest = cls(delta=int(state.get("delta", DEFAULT_DELTA)))
        points = [
            (float(mean), float(weight))
            for mean, weight in state.get("centroids", [])
        ]
        digest._buffer = points
        count = state.get("count")
        digest._count = (
            float(count)
            if count is not None
            else sum(weight for _, weight in points)
        )
        minimum = state.get("min")
        maximum = state.get("max")
        if minimum is not None:
            digest._min = float(minimum)
        elif points:
            digest._min = min(mean for mean, _ in points)
        if maximum is not None:
            digest._max = float(maximum)
        elif points:
            digest._max = max(mean for mean, _ in points)
        if len(digest._buffer) >= 4 * digest.delta:
            digest._compress()
        return digest

    def _compress(self) -> None:
        points = sorted(self._all_centroids())
        self._buffer = []
        if not points:
            self._centroids = []
            return
        total = sum(weight for _, weight in points)
        compressed: List[Tuple[float, float]] = []
        current_mean, current_weight = points[0]
        cumulative = 0.0
        for mean, weight in points[1:]:
            q = (cumulative + current_weight / 2.0) / total
            limit = max(1.0, 4.0 * total * q * (1.0 - q) / self.delta)
            if current_weight + weight <= limit:
                merged_weight = current_weight + weight
                current_mean = (
                    current_mean * current_weight + mean * weight
                ) / merged_weight
                current_weight = merged_weight
            else:
                compressed.append((current_mean, current_weight))
                cumulative += current_weight
                current_mean, current_weight = mean, weight
        compressed.append((current_mean, current_weight))
        self._centroids = compressed

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return int(self._count)

    @property
    def centroid_count(self) -> int:
        """Current sketch size (memory proxy)."""
        with self._lock:
            return len(self._all_centroids())

    def quantile(self, percentile: float) -> float:
        """Estimate the percentile in [0, 100].

        Safe to call concurrently with :meth:`add`: the buffer
        compaction a read triggers happens under the instance lock, so
        callers can treat this as a const query.

        Raises:
            AggregationError: on an empty digest or bad percentile.
        """
        if not 0.0 <= percentile <= 100.0:
            raise AggregationError(
                f"percentile out of [0, 100]: {percentile!r}"
            )
        with self._lock:
            if self._count == 0:
                raise AggregationError("t-digest has seen no values")
            if self._buffer:
                self._compress()
            centroids = self._centroids
            count = self._count
            minimum = self._min
            maximum = self._max
        assert minimum is not None and maximum is not None
        if percentile == 0.0:
            return minimum
        if percentile == 100.0:
            return maximum
        target = percentile / 100.0 * count
        cumulative = 0.0
        previous_mean = minimum
        previous_cum = 0.0
        for mean, weight in centroids:
            centre = cumulative + weight / 2.0
            if target <= centre:
                span = centre - previous_cum
                if span <= 0:
                    return mean
                frac = (target - previous_cum) / span
                return previous_mean + frac * (mean - previous_mean)
            previous_mean = mean
            previous_cum = centre
            cumulative += weight
        return maximum

    def quantile_or_none(self, percentile: float) -> Optional[float]:
        """Like :meth:`quantile` but None when empty."""
        return None if self._count == 0 else self.quantile(percentile)


def _opt_min(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)
