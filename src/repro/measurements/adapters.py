"""Ingest adapters for the real datasets' published shapes.

The simulator produces canonical records directly, but a downstream
user of this library will arrive holding actual exports: M-Lab NDT
rows from BigQuery, Cloudflare speed-test CSV extracts, Ookla open-data
tile rows. Each adapter maps one external row shape onto the canonical
:class:`~repro.measurements.record.Measurement` (or, for Ookla tiles,
onto an :class:`~repro.measurements.aggregates.AggregateTable`), doing
the unit conversions at the boundary so nothing downstream ever sees
kbit/s again.

Field names follow the public schemas:

* **NDT** (BigQuery `ndt.unified_downloads` / `_uploads` style):
  ``a.MeanThroughputMbps``, ``a.MinRTT`` (ms), ``a.LossRate``,
  ``client.Geo.Region``, ``date``;
* **Cloudflare** (speed.cloudflare.com aggregated CSV style):
  ``download_mbps``/``upload_mbps`` in Mbit/s already, ``latency_ms``,
  ``packet_loss_pct`` in percent;
* **Ookla open data** (fixed/mobile tiles): ``avg_d_kbps``,
  ``avg_u_kbps``, ``avg_lat_ms``, ``tests`` — pre-aggregated per tile,
  so rows become aggregate knots, not raw records.

All adapters are strict about required fields and tolerant about
extras, and raise :class:`~repro.core.exceptions.SchemaError` naming
the offending field.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric

from .aggregates import AggregateTable, MetricAggregate
from .collection import MeasurementSet
from .record import Measurement


def _require(row: Mapping[str, Any], field: str, adapter: str) -> Any:
    try:
        return row[field]
    except KeyError:
        raise SchemaError(f"{adapter}: row is missing field {field!r}")


def _float(value: Any, field: str, adapter: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise SchemaError(
            f"{adapter}: field {field!r} is not numeric: {value!r}"
        )


def ndt_row_to_measurement(row: Mapping[str, Any]) -> Measurement:
    """Convert one M-Lab NDT unified-view row (flattened JSON).

    Expected fields: ``a.MeanThroughputMbps``, ``a.MinRTT``,
    ``a.LossRate``, ``client.Geo.Region``, ``test_time`` (POSIX
    seconds), and direction via ``direction`` ("download"/"upload").
    """
    adapter = "ndt"
    direction = str(_require(row, "direction", adapter))
    if direction not in ("download", "upload"):
        raise SchemaError(f"{adapter}: unknown direction {direction!r}")
    throughput = _float(
        _require(row, "a.MeanThroughputMbps", adapter),
        "a.MeanThroughputMbps",
        adapter,
    )
    return Measurement(
        region=str(_require(row, "client.Geo.Region", adapter)),
        source="ndt",
        timestamp=_float(
            _require(row, "test_time", adapter), "test_time", adapter
        ),
        download_mbps=throughput if direction == "download" else None,
        upload_mbps=throughput if direction == "upload" else None,
        latency_ms=_float(
            _require(row, "a.MinRTT", adapter), "a.MinRTT", adapter
        ),
        packet_loss=min(
            1.0,
            max(
                0.0,
                _float(
                    _require(row, "a.LossRate", adapter), "a.LossRate", adapter
                ),
            ),
        ),
        isp=str(row.get("client.Network.ASName", "")),
        meta={"uuid": row["id"]} if "id" in row else {},
    )


def cloudflare_row_to_measurement(row: Mapping[str, Any]) -> Measurement:
    """Convert one Cloudflare speed-test CSV row.

    Expected fields: ``region``, ``timestamp``, ``download_mbps``,
    ``upload_mbps``, ``latency_ms``, ``packet_loss_pct`` (percent).
    """
    adapter = "cloudflare"
    loss_pct = _float(
        _require(row, "packet_loss_pct", adapter), "packet_loss_pct", adapter
    )
    if not 0.0 <= loss_pct <= 100.0:
        raise SchemaError(
            f"{adapter}: packet_loss_pct out of range: {loss_pct}"
        )
    return Measurement(
        region=str(_require(row, "region", adapter)),
        source="cloudflare",
        timestamp=_float(
            _require(row, "timestamp", adapter), "timestamp", adapter
        ),
        download_mbps=_float(
            _require(row, "download_mbps", adapter), "download_mbps", adapter
        ),
        upload_mbps=_float(
            _require(row, "upload_mbps", adapter), "upload_mbps", adapter
        ),
        latency_ms=_float(
            _require(row, "latency_ms", adapter), "latency_ms", adapter
        ),
        packet_loss=loss_pct / 100.0,
        isp=str(row.get("asn_name", "")),
    )


def ingest_ndt(rows: Iterable[Mapping[str, Any]]) -> MeasurementSet:
    """Ingest many NDT rows into a MeasurementSet."""
    return MeasurementSet(ndt_row_to_measurement(row) for row in rows)


def ingest_cloudflare(rows: Iterable[Mapping[str, Any]]) -> MeasurementSet:
    """Ingest many Cloudflare rows into a MeasurementSet."""
    return MeasurementSet(cloudflare_row_to_measurement(row) for row in rows)


def ookla_tiles_to_aggregate(
    rows: Iterable[Mapping[str, Any]],
    region: str,
) -> AggregateTable:
    """Convert Ookla open-data tile rows for one region into aggregates.

    Tile rows carry kbit/s *averages* plus test counts — no quantiles.
    The adapter treats the test-count-weighted distribution of tile
    averages as the region's distribution and publishes its quantile
    knots. That is exactly the information loss a real Ookla-based IQB
    deployment lives with (DESIGN.md §2), now made explicit in code.

    Expected fields per row: ``avg_d_kbps``, ``avg_u_kbps``,
    ``avg_lat_ms``, ``tests``.

    Raises:
        SchemaError: on missing fields or an empty row set.
    """
    adapter = "ookla"
    downs: list = []
    ups: list = []
    lats: list = []
    for row in rows:
        tests = int(_float(_require(row, "tests", adapter), "tests", adapter))
        if tests <= 0:
            raise SchemaError(f"{adapter}: tile has non-positive tests: {tests}")
        down = _float(
            _require(row, "avg_d_kbps", adapter), "avg_d_kbps", adapter
        ) / 1000.0
        up = _float(
            _require(row, "avg_u_kbps", adapter), "avg_u_kbps", adapter
        ) / 1000.0
        lat = _float(
            _require(row, "avg_lat_ms", adapter), "avg_lat_ms", adapter
        )
        downs.extend([down] * tests)
        ups.extend([up] * tests)
        lats.extend([lat] * tests)
    if not downs:
        raise SchemaError(f"{adapter}: no tile rows for region {region!r}")
    percentiles = (5.0, 25.0, 50.0, 75.0, 95.0)

    def knots(values: list) -> MetricAggregate:
        from repro.core.aggregation import percentile_of

        ordered = sorted(values)
        return MetricAggregate(
            knots=tuple(
                (p, percentile_of(ordered, p)) for p in percentiles
            ),
            count=len(values),
        )

    return AggregateTable(
        region=region,
        source="ookla",
        metrics={
            Metric.DOWNLOAD: knots(downs),
            Metric.UPLOAD: knots(ups),
            Metric.LATENCY: knots(lats),
        },
    )


def flatten_nested(row: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts into dotted keys (BigQuery JSON exports).

    >>> flatten_nested({"a": {"MinRTT": 12}, "id": "x"})
    {'a.MinRTT': 12, 'id': 'x'}
    """
    flat: Dict[str, Any] = {}
    for key, value in row.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_nested(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat
