"""The canonical per-test measurement record.

Every dataset in the IQB pipeline — simulated NDT, Cloudflare, Ookla, or
user-supplied real data — reduces to a stream of :class:`Measurement`
records: one speed-test-like observation from one vantage point at one
time. The IQB scorer only ever consumes these fields, which is exactly
what makes the simulator a faithful substitute for live vantage points
(DESIGN.md §2).

Units are canonical throughout: Mbit/s, milliseconds, loss as a fraction
in [0, 1]. Timestamps are POSIX seconds (float) to stay
timezone-agnostic and cheap to generate in bulk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.core.exceptions import SchemaError
from repro.core.metrics import Metric


@dataclass(frozen=True)
class Measurement:
    """One network measurement from one vantage point.

    Optional metric fields are ``None`` when the originating methodology
    does not observe them (e.g. Ookla-style records carry no packet
    loss). At least one metric must be present.
    """

    region: str
    source: str
    timestamp: float
    download_mbps: Optional[float] = None
    upload_mbps: Optional[float] = None
    latency_ms: Optional[float] = None
    packet_loss: Optional[float] = None
    isp: str = ""
    access_tech: str = ""
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.region:
            raise SchemaError("measurement requires a region")
        if not self.source:
            raise SchemaError("measurement requires a source dataset name")
        if all(self.value(m) is None for m in Metric):
            raise SchemaError("measurement carries no metric values")
        for metric in (Metric.DOWNLOAD, Metric.UPLOAD):
            value = self.value(metric)
            if value is not None and value < 0:
                raise SchemaError(f"negative {metric.value}: {value}")
        latency = self.value(Metric.LATENCY)
        if latency is not None and latency <= 0:
            raise SchemaError(f"non-positive latency_ms: {latency}")
        loss = self.value(Metric.PACKET_LOSS)
        if loss is not None and not 0.0 <= loss <= 1.0:
            raise SchemaError(f"packet_loss outside [0, 1]: {loss}")

    def value(self, metric: Metric) -> Optional[float]:
        """The stored value for ``metric`` (None when unobserved)."""
        return getattr(self, metric.field_name)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (used by the JSONL writer)."""
        doc: Dict[str, Any] = {
            "region": self.region,
            "source": self.source,
            "timestamp": self.timestamp,
        }
        for metric in Metric:
            value = self.value(metric)
            if value is not None:
                doc[metric.field_name] = value
        if self.isp:
            doc["isp"] = self.isp
        if self.access_tech:
            doc["access_tech"] = self.access_tech
        if self.meta:
            doc["meta"] = dict(self.meta)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Measurement":
        """Rebuild a record from :meth:`to_dict` output.

        Raises:
            SchemaError: on missing required fields or bad types.
        """
        try:
            return cls(
                region=str(doc["region"]),
                source=str(doc["source"]),
                timestamp=float(doc["timestamp"]),
                download_mbps=_opt_float(doc.get("download_mbps")),
                upload_mbps=_opt_float(doc.get("upload_mbps")),
                latency_ms=_opt_float(doc.get("latency_ms")),
                packet_loss=_opt_float(doc.get("packet_loss")),
                isp=str(doc.get("isp", "")),
                access_tech=str(doc.get("access_tech", "")),
                meta=dict(doc.get("meta", {})),
            )
        except SchemaError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"malformed measurement document: {exc}") from exc


def _opt_float(value: Any) -> Optional[float]:
    return None if value is None else float(value)
