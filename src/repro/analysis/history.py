"""Score archives: the barometer's own history, persisted.

A production barometer keeps every period's full breakdowns, because
next quarter someone will ask "what changed, exactly?". The archive is
an append-only JSONL of (period, region, breakdown) documents built on
:meth:`~repro.core.scoring.ScoreBreakdown.to_dict`, and
:meth:`ScoreArchive.compare` answers the what-changed question with the
exact attribution machinery — across periods instead of regions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.compare import Attribution, attribute_difference
from repro.core.exceptions import DataError, SchemaError
from repro.core.scoring import ScoreBreakdown


class ScoreArchive:
    """Append-only archive of scored periods, one JSONL file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: Dict[Tuple[str, str], ScoreBreakdown] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                    key = (str(document["period"]), str(document["region"]))
                    self._entries[key] = ScoreBreakdown.from_dict(
                        document["breakdown"]
                    )
                except (json.JSONDecodeError, KeyError, DataError) as exc:
                    raise SchemaError(
                        f"{self.path}:{lineno}: bad archive entry: {exc}"
                    ) from exc

    # -- writing -----------------------------------------------------------

    def append(
        self, period: str, region: str, breakdown: ScoreBreakdown
    ) -> None:
        """Record one (period, region) breakdown, durably.

        Raises:
            DataError: when the (period, region) pair already exists —
                archives are append-only and immutable per cell.
        """
        key = (period, region)
        if key in self._entries:
            raise DataError(
                f"archive already holds {region!r} for period {period!r}"
            )
        document = {
            "period": period,
            "region": region,
            "breakdown": breakdown.to_dict(),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True))
            handle.write("\n")
        self._entries[key] = breakdown

    # -- reading -----------------------------------------------------------

    def periods(self) -> Tuple[str, ...]:
        """Distinct periods, sorted lexicographically (use sortable ids)."""
        return tuple(sorted({period for period, _ in self._entries}))

    def regions(self, period: Optional[str] = None) -> Tuple[str, ...]:
        """Regions archived (optionally within one period)."""
        return tuple(
            sorted(
                {
                    region
                    for p, region in self._entries
                    if period is None or p == period
                }
            )
        )

    def get(self, period: str, region: str) -> ScoreBreakdown:
        """One archived breakdown.

        Raises:
            DataError: when the cell is absent.
        """
        try:
            return self._entries[(period, region)]
        except KeyError:
            raise DataError(
                f"archive has no entry for {region!r} in period {period!r}"
            )

    def series(self, region: str) -> List[Tuple[str, float]]:
        """(period, score) history of one region, period-sorted."""
        return [
            (period, self._entries[(period, region)].value)
            for period in self.periods()
            if (period, region) in self._entries
        ]

    # -- analysis ----------------------------------------------------------

    def compare(
        self, region: str, period_a: str, period_b: str
    ) -> Attribution:
        """Exact attribution of a region's change between two periods."""
        return attribute_difference(
            self.get(period_a, region), self.get(period_b, region)
        )

    def __len__(self) -> int:
        return len(self._entries)
