"""Region report builder.

Assembles everything a decision-maker would want for one region into a
single plain-text document: the composite score and grade, per-use-case
scores, requirement-level detail with dataset corroboration, data
volumes, dataset disagreements, and top improvement opportunities.
Used by the CLI's ``report`` command and the regional examples.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import IQBConfig, paper_config
from repro.core.explain import disagreements, improvement_opportunities
from repro.core.metrics import Metric
from repro.core.scoring import ScoreBreakdown, score_region, score_regions
from repro.measurements.collection import MeasurementSet

from .tables import render_table


def region_report(
    records: MeasurementSet,
    region: str,
    config: Optional[IQBConfig] = None,
) -> str:
    """Full plain-text report for one region of a measurement set."""
    config = config or paper_config()
    subset = records.for_region(region)
    sources = subset.group_by_source()
    breakdown = score_region(sources, config)
    lines: List[str] = [
        f"=== IQB report: {region} ===",
        "",
        f"IQB score : {breakdown.value:.3f}",
        f"Grade     : {breakdown.grade}",
        f"Credit    : {breakdown.credit}/850",
        f"Records   : {len(subset)} across {len(sources)} datasets "
        f"({', '.join(sorted(sources))})",
        "",
        "Use-case scores",
        render_table(
            ["Use case", "S_u", "Weight"],
            [
                (entry.use_case.display_name, entry.value, entry.weight)
                for entry in breakdown.use_cases
            ],
            indent="  ",
        ),
        "",
        "Requirement detail",
        _requirement_table(breakdown),
    ]
    lines.extend(_disagreement_section(breakdown))
    lines.extend(_opportunity_section(breakdown))
    return "\n".join(lines)


def _requirement_table(breakdown: ScoreBreakdown) -> str:
    rows = []
    for entry in breakdown.use_cases:
        for req in entry.requirements:
            verdicts = (
                " ".join(
                    f"{v.dataset}:{'P' if v.passed else 'F'}"
                    for v in req.verdicts
                )
                or "(no data)"
            )
            rows.append(
                (
                    entry.use_case.value,
                    req.metric.value,
                    "skip" if req.value is None else f"{req.value:.2f}",
                    f"{req.threshold:.3g}",
                    verdicts,
                )
            )
    return render_table(
        ["Use case", "Requirement", "S_u,r", "Threshold", "Datasets"],
        rows,
        indent="  ",
    )


def _disagreement_section(breakdown: ScoreBreakdown) -> List[str]:
    findings = disagreements(breakdown)
    if not findings:
        return ["", "Dataset corroboration: all datasets agree on every requirement."]
    lines = ["", "Dataset disagreements (corroboration weak here):"]
    for finding in findings:
        lines.append(
            f"  {finding.use_case.value}/{finding.metric.value}: "
            f"S={finding.agreement:.2f} [{finding.detail}]"
        )
    return lines


def _opportunity_section(breakdown: ScoreBreakdown) -> List[str]:
    gaps = improvement_opportunities(breakdown)
    if not gaps:
        return ["", "No improvement opportunities: every requirement fully met."]
    lines = ["", "Top improvement opportunities:"]
    for opportunity in gaps[:5]:
        lines.append(
            f"  +{opportunity.iqb_gain:.3f} IQB — "
            f"{opportunity.use_case.value}/{opportunity.metric.value} "
            f"(currently {opportunity.current_agreement:.2f})"
        )
    return lines


def comparison_report(
    records: MeasurementSet,
    config: Optional[IQBConfig] = None,
    workers: int = 1,
    kernel: str = "vectorized",
    quantiles: Optional[str] = None,
) -> str:
    """Side-by-side score table for every region in a measurement set.

    ``workers > 1`` shards the batch scoring across a worker pool,
    ``kernel`` selects the batch-scoring kernel (identical table either
    way), and ``quantiles`` overrides the config's exact/sketch
    quantile-plane policy.
    """
    config = config or paper_config()
    # Batch fast path: group once, score every region off shared columns.
    # An empty set renders as an empty table, matching the old loop.
    breakdowns = (
        score_regions(
            records,
            config,
            workers=workers,
            kernel=kernel,
            quantiles=quantiles,
        )
        if len(records)
        else {}
    )
    rows = []
    for region, breakdown in breakdowns.items():
        rows.append(
            (
                region,
                breakdown.value,
                breakdown.grade,
                breakdown.credit,
                _region_tests(records, region),
            )
        )
    rows.sort(key=lambda row: -float(row[1]))
    return render_table(
        ["Region", "IQB", "Grade", "Credit", "Tests"], rows
    )


def _region_tests(records: object, region: str) -> int:
    """One region's observation count, for any scoreable store.

    Record-backed stores expose ``for_region``; sketch planes (the
    ``--from-cache`` path) only carry per-view sample tallies, so fall
    back to summing those.
    """
    for_region = getattr(records, "for_region", None)
    if for_region is not None:
        return len(for_region(region))
    views = records.sources_by_region().get(region, {})
    return sum(len(view) for view in views.values())
