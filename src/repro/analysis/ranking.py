"""Region rankings and rank-agreement statistics.

A barometer's consumers mostly use it ordinally — which regions are
worst, who improved past whom — so rank agreement is the right lens for
comparing scoring methods. Kendall's tau and Spearman's rho are
implemented directly (exact, no ties-handling surprises hidden in a
library call) and validated against scipy in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple


def rank_regions(scores: Mapping[str, float]) -> List[Tuple[str, float]]:
    """(region, score) best-first; ties break alphabetically."""
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))


def ranks(scores: Mapping[str, float]) -> Dict[str, float]:
    """Fractional ranks (1 = best); ties share the average rank."""
    ordered = sorted(scores.items(), key=lambda item: -item[1])
    out: Dict[str, float] = {}
    i = 0
    while i < len(ordered):
        j = i
        while j + 1 < len(ordered) and ordered[j + 1][1] == ordered[i][1]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            out[ordered[k][0]] = average
        i = j + 1
    return out


def _paired(
    a: Mapping[str, float], b: Mapping[str, float]
) -> Tuple[List[float], List[float]]:
    keys = sorted(set(a) & set(b))
    if len(keys) < 2:
        raise ValueError(
            f"need at least 2 shared keys to correlate, got {len(keys)}"
        )
    return [a[k] for k in keys], [b[k] for k in keys]


def kendall_tau(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Kendall's tau-b between two score mappings (ties-adjusted)."""
    xs, ys = _paired(a, b)
    n = len(xs)
    concordant = discordant = 0
    ties_x = ties_y = 0
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            if dx == 0 and dy == 0:
                continue
            if dx == 0:
                ties_x += 1
            elif dy == 0:
                ties_y += 1
            elif (dx > 0) == (dy > 0):
                concordant += 1
            else:
                discordant += 1
    denom_x = concordant + discordant + ties_x
    denom_y = concordant + discordant + ties_y
    if denom_x == 0 or denom_y == 0:
        return 0.0
    return (concordant - discordant) / (denom_x * denom_y) ** 0.5


def spearman_rho(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Spearman's rho: Pearson correlation of fractional ranks."""
    keys = sorted(set(a) & set(b))
    if len(keys) < 2:
        raise ValueError(
            f"need at least 2 shared keys to correlate, got {len(keys)}"
        )
    ranks_a = ranks({k: a[k] for k in keys})
    ranks_b = ranks({k: b[k] for k in keys})
    xs = [ranks_a[k] for k in keys]
    ys = [ranks_b[k] for k in keys]
    return pearson(xs, ys)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Plain Pearson correlation of two equal-length sequences."""
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least 2 points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def pairwise_flips(
    a: Mapping[str, float], b: Mapping[str, float]
) -> List[Tuple[str, str]]:
    """Region pairs ordered differently by the two scores.

    Each tuple (x, y) means: ``a`` ranks x above y but ``b`` ranks y
    above x. These are the disagreements a decision-maker would actually
    notice when switching barometers.
    """
    keys = sorted(set(a) & set(b))
    flips: List[Tuple[str, str]] = []
    for i, x in enumerate(keys):
        for y in keys[i + 1 :]:
            da = a[x] - a[y]
            db = b[x] - b[y]
            if da * db < 0:
                flips.append((x, y) if da > 0 else (y, x))
    return flips
