"""National (multi-region) aggregation of the barometer.

Real barometers publish one headline number per country plus a regional
drill-down. The natural aggregate is a *population-weighted* mean of
regional scores — a region's score speaks for its subscribers, so
regions weigh by how many people live behind them.

Alongside the headline number, :func:`national_score` reports each
region's **shortfall contribution**: how much of the distance to a
perfect national score each region is responsible for
(``weight × (1 − score)``, summing exactly to ``1 − national``). That
is the quantity an infrastructure-funding decision actually allocates
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import DataError
from repro.obs import counter, span

_NATIONAL_ROLLUPS = counter("national.rollups")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import IQBConfig
    from repro.core.scoring import ScoreBreakdown
    from repro.measurements.collection import MeasurementSet


@dataclass(frozen=True)
class RegionalShare:
    """One region's role in the national score."""

    region: str
    score: float
    population: float
    weight: float

    @property
    def shortfall_contribution(self) -> float:
        """Share of ``1 − national`` this region is responsible for."""
        return self.weight * (1.0 - self.score)


@dataclass(frozen=True)
class NationalScore:
    """Population-weighted national IQB with per-region attribution."""

    value: float
    regions: Tuple[RegionalShare, ...]

    @property
    def shortfall(self) -> float:
        """Distance to a perfect national score."""
        return 1.0 - self.value

    def ranked_by_shortfall(self) -> List[RegionalShare]:
        """Regions by how much fixing them would move the nation."""
        return sorted(
            self.regions,
            key=lambda share: (-share.shortfall_contribution, share.region),
        )

    def check(self) -> float:
        """Residual of the shortfall decomposition (≈ 0)."""
        return self.shortfall - sum(
            share.shortfall_contribution for share in self.regions
        )


def national_score(
    regional_scores: Mapping[str, float],
    populations: Mapping[str, float],
) -> NationalScore:
    """Aggregate regional IQB scores into a national score.

    Args:
        regional_scores: region → IQB score in [0, 1].
        populations: region → population (any consistent unit). Every
            scored region must have a positive population; extra
            population entries are ignored.

    Raises:
        DataError: on empty input, missing populations, or scores
            outside [0, 1].
    """
    if not regional_scores:
        raise DataError("national_score needs at least one region")
    missing = sorted(set(regional_scores) - set(populations))
    if missing:
        raise DataError(f"regions without population figures: {missing}")
    total_population = 0.0
    for region in regional_scores:
        population = populations[region]
        if population <= 0:
            raise DataError(
                f"population must be positive for {region!r}: {population}"
            )
        score = regional_scores[region]
        if not 0.0 <= score <= 1.0:
            raise DataError(f"score outside [0, 1] for {region!r}: {score}")
        total_population += population
    shares = tuple(
        RegionalShare(
            region=region,
            score=regional_scores[region],
            population=populations[region],
            weight=populations[region] / total_population,
        )
        for region in sorted(regional_scores)
    )
    value = sum(share.weight * share.score for share in shares)
    return NationalScore(value=value, regions=shares)


def national_breakdown(
    records: "MeasurementSet",
    populations: Mapping[str, float],
    config: Optional["IQBConfig"] = None,
    workers: int = 1,
    kernel: str = "vectorized",
) -> Tuple[NationalScore, Dict[str, "ScoreBreakdown"]]:
    """Score a whole national measurement batch and roll it up.

    The columnar fast path for barometer refreshes: the batch is grouped
    once (via :func:`repro.core.scoring.score_regions`, which shares
    sorted per-metric columns across regions) instead of re-filtering
    the record stream once per region, then the regional scores are
    population-weighted into the national headline.

    Returns:
        ``(national, breakdowns)`` — the roll-up plus every region's
        full :class:`~repro.core.scoring.ScoreBreakdown` for drill-down.

    Args:
        workers: forwarded to :func:`repro.core.scoring.score_regions`;
            ``> 1`` shards the regional scoring across a worker pool
            with bit-identical results.
        kernel: batch-scoring kernel, likewise forwarded (identical
            roll-up either way).

    Raises:
        DataError: on empty input or missing populations (see
            :func:`national_score`).
    """
    from repro.core.config import paper_config
    from repro.core.scoring import score_regions

    with span("national_breakdown") as stage:
        breakdowns = score_regions(
            records, config or paper_config(), workers=workers,
            kernel=kernel,
        )
        with span("rollup"):
            national = national_score(
                {region: b.value for region, b in breakdowns.items()},
                populations,
            )
        stage.annotate(regions=len(breakdowns))
        _NATIONAL_ROLLUPS.inc()
    return national, breakdowns


def render_national(national: NationalScore, top: int = 5) -> str:
    """Plain-text national summary, biggest shortfall contributors first."""
    lines = [
        f"National IQB: {national.value:.3f} "
        f"(shortfall {national.shortfall:.3f})"
    ]
    for share in national.ranked_by_shortfall()[:top]:
        lines.append(
            f"  {share.region}: score {share.score:.3f}, "
            f"{share.weight:.1%} of population, "
            f"contributes {share.shortfall_contribution:.3f} of the shortfall"
        )
    return "\n".join(lines)
