"""Score-vs-ground-truth evaluation.

The decisive question for any composite quality metric: does it order
regions the way *experienced quality* orders them? This module runs
that comparison for the IQB score and each baseline against the QoE
ground truth of :mod:`repro.qoe`, producing the data behind the
``ext-qoe`` bench (the reproduction's stand-in for the evaluation the
poster defers to its full report).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.baselines.speed import median_speed_score
from repro.core.aggregation import QuantileSource
from repro.core.config import IQBConfig, paper_config
from repro.core.scoring import score_region
from repro.netsim.population import RegionProfile
from repro.netsim.simulator import CampaignConfig, simulate_region
from repro.qoe.composite import region_qoe

from .ranking import kendall_tau, pairwise_flips, spearman_rho


@dataclass(frozen=True)
class MethodEvaluation:
    """Agreement of one scoring method with the QoE ground truth."""

    method: str
    scores: Mapping[str, float]
    spearman: float
    kendall: float
    flips: int


@dataclass(frozen=True)
class EvaluationResult:
    """Full IQB-vs-baselines evaluation over a set of regions."""

    qoe: Mapping[str, float]
    methods: Mapping[str, MethodEvaluation]

    def winner(self) -> str:
        """Method with the highest Spearman agreement with QoE."""
        return max(self.methods.values(), key=lambda m: m.spearman).method


def evaluate_methods(
    profiles: Mapping[str, RegionProfile],
    seed: int,
    config: Optional[IQBConfig] = None,
    campaign: Optional[CampaignConfig] = None,
    subscribers_for_qoe: int = 150,
) -> EvaluationResult:
    """Score every region with IQB and the speed baseline; compare to QoE.

    For each region: simulate a measurement campaign, compute (a) the
    IQB score from the measurements and (b) the speed-only baseline
    from the same measurements, then compute ground-truth QoE from the
    underlying population. Agreement statistics are over regions.
    """
    config = config or paper_config()
    iqb_scores: Dict[str, float] = {}
    speed_scores: Dict[str, float] = {}
    qoe_scores: Dict[str, float] = {}
    for name, profile in profiles.items():
        records = simulate_region(profile, seed=seed, config=campaign)
        sources: Dict[str, QuantileSource] = records.group_by_source()
        iqb_scores[name] = score_region(sources, config).value
        speed_scores[name] = median_speed_score(sources)
        qoe_scores[name] = region_qoe(
            profile,
            seed=seed,
            subscribers=subscribers_for_qoe,
            weights=config.use_case_weights,
        ).overall
    methods = {
        "iqb": _evaluate("iqb", iqb_scores, qoe_scores),
        "speed_only": _evaluate("speed_only", speed_scores, qoe_scores),
    }
    return EvaluationResult(qoe=qoe_scores, methods=methods)


def _evaluate(
    name: str,
    scores: Mapping[str, float],
    qoe: Mapping[str, float],
) -> MethodEvaluation:
    return MethodEvaluation(
        method=name,
        scores=dict(scores),
        spearman=spearman_rho(scores, qoe),
        kendall=kendall_tau(scores, qoe),
        flips=len(pairwise_flips(scores, qoe)),
    )
