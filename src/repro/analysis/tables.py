"""Plain-text and Markdown table rendering.

Every bench and report in this repository prints aligned monospace
tables (paper-style rows) through these two functions, so the output
format is uniform and trivially diffable across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

Cell = object  # anything with a sensible str()


def _stringify(rows: Iterable[Sequence[Cell]]) -> List[List[str]]:
    return [[_format(cell) for cell in row] for row in rows]


def _format(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    indent: str = "",
) -> str:
    """Aligned monospace table.

    Floats render with three decimals; everything else via ``str``.

    Raises:
        ValueError: when a row's width differs from the header's.
    """
    body = _stringify(rows)
    for row in body:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


#: Eight-level block characters for sparklines.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[Optional[float]],
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> str:
    """A one-line unicode sparkline; None values render as spaces.

    Values are scaled into [low, high] (defaulting to the data range).
    Useful for showing an IQB time series inline in CLI output.

    >>> sparkline([0.0, 0.5, 1.0])
    '▁▅█'
    """
    present = [v for v in values if v is not None]
    if not present:
        return " " * len(values)
    lo = min(present) if low is None else low
    hi = max(present) if high is None else high
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_BLOCKS[-1])
            continue
        index = int((value - lo) / span * (len(_SPARK_BLOCKS) - 1) + 0.5)
        chars.append(_SPARK_BLOCKS[min(max(index, 0), len(_SPARK_BLOCKS) - 1)])
    return "".join(chars)


def render_markdown(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> str:
    """GitHub-flavoured Markdown table with the same cell formatting."""
    body = _stringify(rows)
    for row in body:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}: {row}"
            )
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
