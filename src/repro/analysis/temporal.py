"""Temporal analysis: the barometer over time.

Turns a time-stamped measurement set into:

* a per-window IQB time series (:func:`score_time_series`);
* the prime-time vs off-peak contrast (:func:`peak_vs_offpeak`) — the
  quantity that separates congestion problems (evening-only) from
  provisioning problems (all-day);
* a least-squares trend over the series (:func:`trend`), for "is this
  region improving?" questions.

Windows without enough data score ``None`` rather than pretending; the
minimum sample count is explicit because a 95th percentile of five
tests is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import IQBConfig
from repro.core.exceptions import DataError
from repro.core.scoring import score_region
from repro.measurements.collection import MeasurementSet
from repro.measurements.windows import peak_split, time_buckets

#: Fewer tests than this per window → the window's score is None.
MIN_SAMPLES_PER_WINDOW = 20


@dataclass(frozen=True)
class ScorePoint:
    """One window of the IQB time series."""

    start: float
    end: float
    score: Optional[float]
    samples: int


def _score_or_none(
    records: MeasurementSet, config: IQBConfig, min_samples: int
) -> Optional[float]:
    if len(records) < min_samples:
        return None
    try:
        return score_region(records.group_by_source(), config).value
    except DataError:
        return None


def score_time_series(
    records: MeasurementSet,
    region: str,
    config: IQBConfig,
    window_seconds: float = 86400.0,
    min_samples: int = MIN_SAMPLES_PER_WINDOW,
) -> List[ScorePoint]:
    """IQB score per fixed-width window for one region.

    Raises:
        DataError: when the region has no records at all.
    """
    subset = records.for_region(region)
    if len(subset) == 0:
        raise DataError(f"no measurements for region {region!r}")
    points: List[ScorePoint] = []
    for bucket in time_buckets(subset, window_seconds):
        points.append(
            ScorePoint(
                start=bucket.start,
                end=bucket.end,
                score=_score_or_none(bucket.records, config, min_samples),
                samples=len(bucket.records),
            )
        )
    return points


@dataclass(frozen=True)
class PeakContrast:
    """Prime-time vs off-peak scores for one region."""

    peak_score: Optional[float]
    off_peak_score: Optional[float]
    peak_samples: int
    off_peak_samples: int

    @property
    def degradation(self) -> Optional[float]:
        """Off-peak minus peak score (positive = evenings are worse)."""
        if self.peak_score is None or self.off_peak_score is None:
            return None
        return self.off_peak_score - self.peak_score


def peak_vs_offpeak(
    records: MeasurementSet,
    region: str,
    config: IQBConfig,
    min_samples: int = MIN_SAMPLES_PER_WINDOW,
) -> PeakContrast:
    """Score a region separately from its peak and off-peak tests.

    Raises:
        DataError: when the region has no records at all.
    """
    subset = records.for_region(region)
    if len(subset) == 0:
        raise DataError(f"no measurements for region {region!r}")
    peak, off_peak = peak_split(subset)
    return PeakContrast(
        peak_score=_score_or_none(peak, config, min_samples),
        off_peak_score=_score_or_none(off_peak, config, min_samples),
        peak_samples=len(peak),
        off_peak_samples=len(off_peak),
    )


def weekend_vs_weekday(
    records: MeasurementSet,
    region: str,
    config: IQBConfig,
    min_samples: int = MIN_SAMPLES_PER_WINDOW,
) -> PeakContrast:
    """Score a region separately from weekend and weekday tests.

    Returns a :class:`PeakContrast` with the *weekend* playing the
    "peak" role (``degradation`` positive ⇒ weekends are worse). The
    simulator's calendar starts on a Monday; day indices 5 and 6 are
    the weekend.

    Raises:
        DataError: when the region has no records at all.
    """
    from repro.timeutil import is_weekend

    subset = records.for_region(region)
    if len(subset) == 0:
        raise DataError(f"no measurements for region {region!r}")
    weekend = subset.filter(lambda r: is_weekend(r.timestamp))
    weekday = subset.filter(lambda r: not is_weekend(r.timestamp))
    return PeakContrast(
        peak_score=_score_or_none(weekend, config, min_samples),
        off_peak_score=_score_or_none(weekday, config, min_samples),
        peak_samples=len(weekend),
        off_peak_samples=len(weekday),
    )


@dataclass(frozen=True)
class AnomalyWindow:
    """One window flagged as an abrupt quality drop."""

    start: float
    end: float
    score: float
    baseline: float

    @property
    def drop(self) -> float:
        """How far below the trailing baseline the window fell."""
        return self.baseline - self.score


def detect_drops(
    points: List[ScorePoint],
    min_drop: float = 0.1,
    trailing: int = 3,
) -> List[AnomalyWindow]:
    """Flag windows whose score collapses below the recent baseline.

    The baseline for each window is the median of the previous
    ``trailing`` *scored* windows; a window is flagged when its score
    falls more than ``min_drop`` below that. Simple trailing-median
    change detection is deliberately chosen over anything smarter: a
    barometer's alert must be explainable in one sentence.

    Windows without a score never alarm (no data is a monitoring gap,
    not an outage), and the first ``trailing`` scored windows cannot
    alarm (no baseline yet).

    Raises:
        ValueError: for non-positive ``min_drop`` or ``trailing``.
    """
    if min_drop <= 0:
        raise ValueError(f"min_drop must be positive: {min_drop}")
    if trailing < 1:
        raise ValueError(f"trailing must be >= 1: {trailing}")
    anomalies: List[AnomalyWindow] = []
    history: List[float] = []
    for point in points:
        if point.score is None:
            continue
        if len(history) >= trailing:
            recent = sorted(history[-trailing:])
            baseline = recent[len(recent) // 2]
            if point.score < baseline - min_drop:
                anomalies.append(
                    AnomalyWindow(
                        start=point.start,
                        end=point.end,
                        score=point.score,
                        baseline=baseline,
                    )
                )
                # An alarmed window does not enter the baseline: a long
                # outage should stay alarmed, not become the new normal.
                continue
        history.append(point.score)
    return anomalies


def trend(points: List[ScorePoint]) -> Tuple[float, float]:
    """Least-squares (slope per day, intercept) over scored windows.

    Windows whose score is None are excluded. The slope is per *day*
    regardless of the window width, so trends are comparable across
    windowings.

    Raises:
        DataError: with fewer than two scored windows.
    """
    scored = [(p.start + p.end) / 2.0 for p in points if p.score is not None]
    values = [p.score for p in points if p.score is not None]
    if len(scored) < 2:
        raise DataError(
            f"need >= 2 scored windows for a trend, have {len(scored)}"
        )
    days = [t / 86400.0 for t in scored]
    n = len(days)
    mean_x = sum(days) / n
    mean_y = sum(values) / n
    var_x = sum((x - mean_x) ** 2 for x in days)
    if var_x == 0:
        return 0.0, mean_y
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(days, values)
    ) / var_x
    intercept = mean_y - slope * mean_x
    return slope, intercept
