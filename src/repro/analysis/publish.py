"""Publication builder: the periodic barometer report as Markdown.

A deployed barometer publishes a document, not a dict: headline
national score, the regional table, per-region drill-downs (grades,
failing requirements, improvement targets), and data provenance. This
module assembles that document from a measurement set so `iqb publish`
(and any scheduled job wrapping it) is one call.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.config import IQBConfig, paper_config
from repro.core.scoring import ScoreBreakdown, score_regions
from repro.core.targets import metric_targets
from repro.measurements.collection import MeasurementSet
from repro.obs import span

from .national import national_score
from .ranking import rank_regions
from .tables import render_markdown


def build_publication(
    records: MeasurementSet,
    config: Optional[IQBConfig] = None,
    populations: Optional[Mapping[str, float]] = None,
    title: str = "Internet Quality Barometer report",
    workers: int = 1,
    breakdowns: Optional[Mapping[str, ScoreBreakdown]] = None,
    kernel: str = "vectorized",
) -> str:
    """Assemble the full Markdown publication for a measurement set.

    Args:
        records: the reporting period's measurements (all regions).
        config: scoring config (default: the paper's).
        populations: region → population; when provided, a national
            roll-up section is included.
        workers: forwarded to the batch scorer; ``> 1`` shards regional
            scoring across a worker pool (identical document).
        breakdowns: pre-computed per-region breakdowns; when given the
            batch scorer is skipped (callers that already scored —
            e.g. to register degraded regions in a run manifest —
            publish without paying for a second pass).
        kernel: batch-scoring kernel forwarded to the scorer when
            ``breakdowns`` is not supplied (identical document).

    Raises:
        DataError: when the measurement set is empty (nothing to
            publish) — via the underlying scorers.
    """
    config = config or paper_config()
    with span("publish", measurements=len(records)) as stage:
        # Batch fast path: one grouping pass + shared columns for all
        # regions.
        if breakdowns is None:
            breakdowns = score_regions(
                records, config, workers=workers, kernel=kernel
            )
        stage.annotate(regions=len(breakdowns))

        with span("publish_render"):
            sections: List[str] = [f"# {title}", ""]
            sections.extend(_headline_section(breakdowns, populations))
            sections.extend(_regional_table(records, breakdowns))
            for region, _ in rank_regions(
                {name: b.value for name, b in breakdowns.items()}
            ):
                sections.extend(_region_section(region, breakdowns[region]))
            sections.extend(_provenance_section(records, config))
    return "\n".join(sections)


def _headline_section(
    breakdowns: Mapping[str, ScoreBreakdown],
    populations: Optional[Mapping[str, float]],
) -> List[str]:
    if not populations:
        return []
    national = national_score(
        {region: b.value for region, b in breakdowns.items()}, populations
    )
    lines = [
        "## National headline",
        "",
        f"**National IQB: {national.value:.3f}** "
        f"(grade-equivalent spread below; shortfall {national.shortfall:.3f})",
        "",
        "Largest shortfall contributors:",
        "",
    ]
    for share in national.ranked_by_shortfall()[:3]:
        lines.append(
            f"- **{share.region}** — score {share.score:.3f}, "
            f"{share.weight:.1%} of population, "
            f"{share.shortfall_contribution:.3f} of the shortfall"
        )
    lines.append("")
    return lines


def _regional_table(
    records: MeasurementSet,
    breakdowns: Mapping[str, ScoreBreakdown],
) -> List[str]:
    rows = []
    degraded_notes: List[str] = []
    for region, score in rank_regions(
        {name: b.value for name, b in breakdowns.items()}
    ):
        breakdown = breakdowns[region]
        label = region
        if breakdown.degraded:
            label = f"{region} \\*"
            degraded_notes.append(
                f"- \\* **{region}**: scored without "
                f"{', '.join(breakdown.degraded_datasets)} "
                f"(degraded data coverage)"
            )
        rows.append(
            (
                label,
                f"{score:.3f}",
                breakdown.grade,
                breakdown.credit,
                len(records.for_region(region)),
            )
        )
    lines = [
        "## Regional scores",
        "",
        render_markdown(
            ["Region", "IQB", "Grade", "Credit", "Tests"], rows
        ),
        "",
    ]
    if degraded_notes:
        lines.extend(degraded_notes)
        lines.append("")
    return lines


def _region_section(region: str, breakdown: ScoreBreakdown) -> List[str]:
    lines = [
        f"## {region}",
        "",
        f"Score **{breakdown.value:.3f}** (grade {breakdown.grade}).",
        "",
    ]
    if breakdown.degraded:
        lines.extend(
            [
                f"> **Degraded:** no usable measurements from "
                f"{', '.join(breakdown.degraded_datasets)}; the score "
                f"rests on the remaining datasets (Eq. 1 renormalized).",
                "",
            ]
        )
    lines.extend([
        render_markdown(
            ["Use case", "Score"],
            [
                (entry.use_case.display_name, f"{entry.value:.2f}")
                for entry in breakdown.use_cases
            ],
        ),
        "",
    ])
    targets = metric_targets(breakdown)
    if targets:
        lines.append("Improvement needed to clear every failing bar:")
        lines.append("")
        for metric, value in sorted(
            targets.items(), key=lambda kv: kv[0].value
        ):
            lines.append(f"- {metric.display_name}: {value:.3g} {metric.unit}")
        lines.append("")
    else:
        lines.append("Every requirement threshold is met.")
        lines.append("")
    return lines


def _provenance_section(
    records: MeasurementSet, config: IQBConfig
) -> List[str]:
    sources = ", ".join(records.sources())
    return [
        "## Methodology & provenance",
        "",
        f"- {len(records)} measurements from: {sources}",
        f"- Aggregation: p{config.aggregation.percentile:g} "
        f"({config.aggregation.semantics.value} semantics)",
        f"- Quality level: {config.quality_level.value}; "
        f"score mode: {config.score_mode.value}",
        "- Scoring per the IQB framework (Fig. 2 thresholds, Table 1 "
        "weights unless overridden).",
        "",
    ]
