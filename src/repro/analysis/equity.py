"""Equity analysis: who inside a region gets the quality?

A region-level IQB score can hide a stark internal divide — a fiber
core scoring A while DSL pockets score E. This module breaks a region's
score down by subscriber group (ISP or access technology) and
summarizes the spread, the lens the paper's digital-inclusion audience
(footnote 1 lists digital inclusion advocates among the experts) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.config import IQBConfig
from repro.core.exceptions import DataError
from repro.core.scoring import score_region
from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement

#: Groups with fewer tests than this are reported but not scored.
MIN_SAMPLES_PER_GROUP = 30


@dataclass(frozen=True)
class GroupScore:
    """One subscriber group's score within a region."""

    group: str
    score: Optional[float]
    samples: int


@dataclass(frozen=True)
class EquityBreakdown:
    """A region's score decomposed over subscriber groups."""

    region: str
    dimension: str
    overall: float
    groups: List[GroupScore]

    def scored_groups(self) -> List[GroupScore]:
        """Groups with enough data to carry a score, best first."""
        scored = [g for g in self.groups if g.score is not None]
        return sorted(scored, key=lambda g: (-g.score, g.group))

    @property
    def gap(self) -> Optional[float]:
        """Best-minus-worst group score (the headline divide number)."""
        scored = self.scored_groups()
        if len(scored) < 2:
            return None
        return scored[0].score - scored[-1].score

    @property
    def worst_group(self) -> Optional[GroupScore]:
        """The group the region-level score hides, if any."""
        scored = self.scored_groups()
        return scored[-1] if scored else None


def _breakdown(
    records: MeasurementSet,
    region: str,
    config: IQBConfig,
    dimension: str,
    key: Callable[[Measurement], str],
    min_samples: int,
) -> EquityBreakdown:
    subset = records.for_region(region)
    if len(subset) == 0:
        raise DataError(f"no measurements for region {region!r}")
    overall = score_region(subset.group_by_source(), config).value
    names = sorted({key(r) for r in subset if key(r)})
    groups: List[GroupScore] = []
    for name in names:
        group_records = subset.filter(lambda r, n=name: key(r) == n)
        if len(group_records) < min_samples:
            groups.append(
                GroupScore(group=name, score=None, samples=len(group_records))
            )
            continue
        try:
            value = score_region(group_records.group_by_source(), config).value
        except DataError:
            value = None
        groups.append(
            GroupScore(group=name, score=value, samples=len(group_records))
        )
    return EquityBreakdown(
        region=region, dimension=dimension, overall=overall, groups=groups
    )


def scores_by_isp(
    records: MeasurementSet,
    region: str,
    config: IQBConfig,
    min_samples: int = MIN_SAMPLES_PER_GROUP,
) -> EquityBreakdown:
    """Per-ISP IQB scores within one region.

    Raises:
        DataError: when the region has no records.
    """
    return _breakdown(
        records, region, config, "isp", lambda r: r.isp, min_samples
    )


def scores_by_technology(
    records: MeasurementSet,
    region: str,
    config: IQBConfig,
    min_samples: int = MIN_SAMPLES_PER_GROUP,
) -> EquityBreakdown:
    """Per-access-technology IQB scores within one region.

    Raises:
        DataError: when the region has no records.
    """
    return _breakdown(
        records, region, config, "access_tech", lambda r: r.access_tech,
        min_samples,
    )


def equity_table(breakdown: EquityBreakdown) -> List[Dict[str, object]]:
    """Row dicts (group, score, samples, delta vs overall) for rendering."""
    rows: List[Dict[str, object]] = []
    for group in breakdown.groups:
        rows.append(
            {
                "group": group.group,
                "score": group.score,
                "samples": group.samples,
                "delta_vs_region": (
                    None
                    if group.score is None
                    else group.score - breakdown.overall
                ),
            }
        )
    rows.sort(
        key=lambda row: (
            row["score"] is None,
            -(row["score"] or 0.0),
            row["group"],
        )
    )
    return rows
