"""Consumer scorecards: the broadband-label presentation of IQB.

The IQB use-case taxonomy comes from Cranor et al.'s consumer broadband
-label study (the paper's reference [2]); this module closes that loop
by rendering a region's IQB breakdown as the kind of label a consumer
(or a regulator's comparison site) would actually read: an overall
grade, per-use-case grades with plain-language verdicts, and the one
thing most worth fixing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import IQBConfig, paper_config
from repro.core.explain import improvement_opportunities
from repro.core.quality import credit_scale, grade
from repro.core.scoring import ScoreBreakdown, score_region, score_regions
from repro.core.usecases import UseCase
from repro.measurements.collection import MeasurementSet

#: Plain-language verdicts per letter grade.
VERDICTS = {
    "A": "works great",
    "B": "works well",
    "C": "usable with issues",
    "D": "frequently frustrating",
    "E": "effectively broken",
}


@dataclass(frozen=True)
class UseCaseLine:
    """One use-case row of the label."""

    use_case: UseCase
    score: float
    grade: str
    verdict: str


@dataclass(frozen=True)
class Scorecard:
    """Everything the rendered label contains, as data."""

    region: str
    score: float
    grade: str
    credit: int
    lines: Tuple[UseCaseLine, ...]
    fix_first: Optional[str]
    tests: int
    datasets: Tuple[str, ...]
    #: Configured datasets that contributed nothing to this region's
    #: score (degraded-mode scoring); empty for full coverage.
    degraded_datasets: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """True when the label rests on less data than configured."""
        return bool(self.degraded_datasets)


def build_scorecard(
    records: MeasurementSet,
    region: str,
    config: Optional[IQBConfig] = None,
) -> Scorecard:
    """Build a consumer scorecard for one region of a measurement set."""
    config = config or paper_config()
    subset = records.for_region(region)
    sources = subset.group_by_source()
    breakdown = score_region(sources, config)
    return scorecard_from_breakdown(
        breakdown,
        region=region,
        tests=len(subset),
        datasets=tuple(sorted(sources)),
    )


def build_scorecards(
    records: MeasurementSet,
    config: Optional[IQBConfig] = None,
    kernel: str = "vectorized",
) -> Dict[str, Scorecard]:
    """Scorecards for every region of a batch, off shared columns.

    The comparison-site workload: one national measurement batch in,
    one label per region out. Grouping and quantile aggregation are
    shared across regions via :func:`repro.core.scoring.score_regions`
    (``kernel`` selects its batch kernel; identical labels either way).
    """
    config = config or paper_config()
    breakdowns = score_regions(records, config, kernel=kernel)
    by_region = records.group_by_region()
    return {
        region: scorecard_from_breakdown(
            breakdown,
            region=region,
            tests=len(by_region[region]),
            datasets=by_region[region].sources(),
        )
        for region, breakdown in breakdowns.items()
    }


def scorecard_from_breakdown(
    breakdown: ScoreBreakdown,
    region: str,
    tests: int = 0,
    datasets: Tuple[str, ...] = (),
) -> Scorecard:
    """Build the scorecard from an already-computed breakdown."""
    lines = tuple(
        UseCaseLine(
            use_case=entry.use_case,
            score=entry.value,
            grade=grade(entry.value),
            verdict=VERDICTS[grade(entry.value)],
        )
        for entry in breakdown.use_cases
    )
    opportunities = improvement_opportunities(breakdown)
    fix_first = None
    if opportunities:
        top = opportunities[0]
        fix_first = (
            f"{top.metric.display_name.lower()} for "
            f"{top.use_case.display_name.lower()} (+{top.iqb_gain:.2f})"
        )
    return Scorecard(
        region=region,
        score=breakdown.value,
        grade=breakdown.grade,
        credit=credit_scale(breakdown.value),
        lines=lines,
        fix_first=fix_first,
        tests=tests,
        datasets=datasets,
        degraded_datasets=breakdown.degraded_datasets,
    )


def render_scorecard(card: Scorecard, width: int = 68) -> str:
    """ASCII broadband-label rendering of a scorecard."""
    inner = width - 2

    def row(text: str = "") -> str:
        return "|" + text.ljust(inner)[:inner] + "|"

    rule = "+" + "-" * inner + "+"
    lines: List[str] = [
        rule,
        row(f" INTERNET QUALITY BAROMETER  -  {card.region}"),
        rule,
        row(
            f" Overall: grade {card.grade}   "
            f"score {card.score:.2f}   {card.credit}/850"
        ),
        rule,
    ]
    for line in card.lines:
        bar = "#" * round(line.score * 10)
        lines.append(
            row(
                f" {line.use_case.display_name:<19}"
                f"{line.grade}  {bar:<10} {line.verdict}"
            )
        )
    lines.append(rule)
    if card.fix_first:
        lines.append(row(" Fix first: " + card.fix_first))
    source = ", ".join(card.datasets) if card.datasets else "n/a"
    lines.append(row(f" Based on {card.tests} tests from: {source}"))
    if card.degraded:
        missing = ", ".join(card.degraded_datasets)
        lines.append(row(f" DEGRADED: no usable data from {missing}"))
    lines.append(rule)
    return "\n".join(lines)
