"""Reporting, ranking, and score-vs-QoE evaluation."""

from .correlation import (
    EvaluationResult,
    MethodEvaluation,
    evaluate_methods,
)
from .equity import (
    EquityBreakdown,
    GroupScore,
    equity_table,
    scores_by_isp,
    scores_by_technology,
)
from .temporal import (
    AnomalyWindow,
    PeakContrast,
    ScorePoint,
    detect_drops,
    peak_vs_offpeak,
    score_time_series,
    trend,
    weekend_vs_weekday,
)
from .history import ScoreArchive
from .national import (
    NationalScore,
    RegionalShare,
    national_breakdown,
    national_score,
    render_national,
)
from .ranking import (
    kendall_tau,
    pairwise_flips,
    pearson,
    rank_regions,
    ranks,
    spearman_rho,
)
from .publish import build_publication
from .report import comparison_report, region_report
from .scorecard import (
    Scorecard,
    UseCaseLine,
    build_scorecard,
    build_scorecards,
    render_scorecard,
    scorecard_from_breakdown,
)
from .tables import render_markdown, render_table, sparkline

__all__ = [
    "AnomalyWindow",
    "EquityBreakdown",
    "EvaluationResult",
    "GroupScore",
    "MethodEvaluation",
    "NationalScore",
    "PeakContrast",
    "RegionalShare",
    "Scorecard",
    "ScoreArchive",
    "ScorePoint",
    "UseCaseLine",
    "build_publication",
    "build_scorecard",
    "build_scorecards",
    "comparison_report",
    "detect_drops",
    "equity_table",
    "evaluate_methods",
    "kendall_tau",
    "national_breakdown",
    "national_score",
    "pairwise_flips",
    "peak_vs_offpeak",
    "pearson",
    "rank_regions",
    "ranks",
    "region_report",
    "render_markdown",
    "render_national",
    "render_scorecard",
    "render_table",
    "scorecard_from_breakdown",
    "score_time_series",
    "scores_by_isp",
    "scores_by_technology",
    "sparkline",
    "spearman_rho",
    "trend",
    "weekend_vs_weekday",
]
