"""Lightweight spans: timed, nested pipeline stages.

A span is a context manager marking one pipeline stage — "ingest",
"score_regions", "national.rollup" — recording its wall-clock duration
into the metrics registry (timer ``span.<name>``) and, at DEBUG level,
logging a structured enter/exit pair. Spans nest: each thread keeps a
span stack, and a span knows its slash-joined ``path`` and ``depth``,
so a JSONL log of a pipeline run reconstructs the stage tree.

Cost model: an enabled span is two ``perf_counter`` calls, one id
draw, one digest insert, and (only when DEBUG logging is on) two log
records. There is deliberately no sampling machinery — this is stage
timing for a batch pipeline — but every span does carry a minimal
trace context (``trace_id`` / ``span_id`` / ``parent_id``): a root
span starts a new trace, children inherit it from the stack, and a
worker process can adopt its parent's context via
:func:`set_remote_parent` so ``run_sharded`` shards nest under the
fan-out span in trace exports. A span's duration lands in the
``span.<name>`` timer with the span id as its *exemplar*, so the
slowest observation points straight back at its trace slice.

Usage::

    from repro.obs import span

    with span("score", regions=len(batch)):
        with span("group"):
            ...
        with span("quantiles"):
            ...
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .logs import get_logger
from .registry import counter, timer

_logger = get_logger("repro.obs.span")

_state = threading.local()

#: Out-of-order span exits repaired by popping stale stack entries (see
#: :meth:`Span.__exit__`). A non-zero value means some code path holds
#: spans across generator/coroutine suspension points.
_MISMATCH = counter("span.stack.mismatch")

#: The process-wide trace recorder, or None when tracing is off. A
#: single ``is None`` check per span exit is the entire cost of the
#: disabled path.
_trace_recorder: Optional["TraceRecorder"] = None


def _stack() -> List["Span"]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


def _new_id() -> str:
    """A fresh 64-bit hex id (trace and span ids share the format)."""
    return os.urandom(8).hex()


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def set_remote_parent(
    trace_id: Optional[str], span_id: Optional[str]
) -> None:
    """Adopt a parent trace context from another process/thread.

    The next *root* span opened on this thread joins ``trace_id`` as a
    child of ``span_id`` instead of starting a new trace — how a forked
    ``run_sharded`` worker nests its shard spans under the parent's
    fan-out span. Pass ``(None, None)`` to clear.
    """
    if trace_id is None or span_id is None:
        _state.remote_parent = None
    else:
        _state.remote_parent = (trace_id, span_id)


def current_trace_context() -> Optional[Tuple[str, str]]:
    """The (trace_id, span_id) children would attach to, if any.

    The innermost active span wins; with no span open, an adopted
    remote parent (see :func:`set_remote_parent`) is returned.
    """
    stack = _stack()
    if stack:
        active = stack[-1]
        return (active.trace_id, active.span_id)
    return getattr(_state, "remote_parent", None)


class Span:
    """One timed pipeline stage (use via :func:`span`)."""

    __slots__ = (
        "name",
        "fields",
        "path",
        "depth",
        "duration",
        "trace_id",
        "span_id",
        "parent_id",
        "_start",
    )

    def __init__(self, name: str, fields: Dict[str, object]) -> None:
        self.name = name
        self.fields = fields
        self.path = name  # finalized on __enter__ from the active stack
        self.depth = 0
        #: Wall-clock seconds, populated on exit (None while running).
        self.duration: Optional[float] = None
        #: Trace context, finalized on __enter__: the root span of a
        #: thread mints a new trace id (or joins a remote parent);
        #: nested spans inherit the parent's.
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self._start = 0.0

    def annotate(self, **fields: object) -> None:
        """Attach extra fields mid-flight (shown on the exit event)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            remote = getattr(_state, "remote_parent", None)
            if remote is not None:
                self.trace_id, self.parent_id = remote
            else:
                self.trace_id = _new_id()
        self.span_id = _new_id()
        stack.append(self)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "span enter",
                extra={"ctx": {"span": self.path, **self.fields}},
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:
            # Out-of-order exit: a span held across a suspended (and
            # never resumed) generator or an abandoned context left
            # stale entries above us. Leaving them would silently
            # corrupt path/depth for every later span on this thread,
            # so pop down to and including self, counting each stale
            # entry repaired; if self is not on the stack at all (its
            # frame was already swept), count one mismatch and leave
            # the stack alone.
            position = next(
                (
                    index
                    for index in range(len(stack) - 1, -1, -1)
                    if stack[index] is self
                ),
                None,
            )
            if position is None:
                _MISMATCH.inc()
            else:
                _MISMATCH.inc(len(stack) - position - 1)
                del stack[position:]
        timer(f"span.{self.name}").observe(self.duration, exemplar=self.span_id)
        recorder = _trace_recorder
        if recorder is not None:
            recorder.record(self)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            ctx: Dict[str, object] = {
                "span": self.path,
                "seconds": round(self.duration, 6),
                **self.fields,
            }
            if exc_type is not None:
                ctx["error"] = getattr(exc_type, "__name__", str(exc_type))
            _logger.debug("span exit", extra={"ctx": ctx})
        # Exceptions always propagate (context manager returns None).


def span(name: str, **fields: object) -> Span:
    """A new span context manager for the named pipeline stage."""
    return Span(name, dict(fields))


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as captured by a :class:`TraceRecorder`.

    ``start_s`` is seconds since the recorder's own epoch (the moment
    it was constructed), which keeps every record on one monotonic
    timeline regardless of thread; spans that were already running when
    the recorder was installed clamp to 0.
    """

    name: str
    path: str
    depth: int
    start_s: float
    duration_s: float
    thread_id: int
    thread_name: str
    fields: Dict[str, object] = field(default_factory=dict)
    #: Trace context (defaults keep pre-context records loadable).
    trace_id: str = ""
    span_id: str = ""
    parent_id: Optional[str] = None


class TraceRecorder:
    """Collects every completed span for post-run trace export.

    Installed per-run via :func:`install_trace_recorder` (the CLI does
    this for ``--trace-out``); recording is thread-safe and append-only,
    so a multi-threaded pipeline interleaves safely. The recorder sees
    spans on *exit* — a span still running at export time is simply
    absent, which is the right semantics for a run-scoped dump.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._epoch = time.perf_counter()
        self.started_unix = time.time()

    def record(self, completed: Span) -> None:
        """Capture one completed span (called from ``Span.__exit__``)."""
        current = threading.current_thread()
        entry = SpanRecord(
            name=completed.name,
            path=completed.path,
            depth=completed.depth,
            start_s=max(0.0, completed._start - self._epoch),
            duration_s=completed.duration or 0.0,
            thread_id=current.ident or 0,
            thread_name=current.name,
            fields=dict(completed.fields),
            trace_id=completed.trace_id,
            span_id=completed.span_id,
            parent_id=completed.parent_id,
        )
        with self._lock:
            self._records.append(entry)

    def adopt(
        self,
        started_unix: float,
        records: Iterable[Mapping[str, object]],
    ) -> int:
        """Merge span records captured by another process's recorder.

        ``run_sharded`` workers run their shards under a private
        recorder and ship its records (as dicts) home with the shard
        result; the parent folds them in here. ``started_unix`` is the
        *worker* recorder's wall-clock epoch — ``perf_counter`` epochs
        are per-process, so worker start offsets are re-based onto this
        recorder's timeline via the wall-clock delta between the two
        epochs. Returns the number of records adopted.
        """
        offset = float(started_unix) - self.started_unix
        adopted = 0
        entries: List[SpanRecord] = []
        for record in records:
            fields = record.get("fields")
            entries.append(
                SpanRecord(
                    name=str(record.get("name", "")),
                    path=str(record.get("path", "")),
                    depth=int(record.get("depth", 0)),  # type: ignore[arg-type]
                    start_s=max(
                        0.0,
                        float(record.get("start_s", 0.0))  # type: ignore[arg-type]
                        + offset,
                    ),
                    duration_s=float(record.get("duration_s", 0.0)),  # type: ignore[arg-type]
                    thread_id=int(record.get("thread_id", 0)),  # type: ignore[arg-type]
                    thread_name=str(record.get("thread_name", "")),
                    fields=dict(fields) if isinstance(fields, dict) else {},
                    trace_id=str(record.get("trace_id", "")),
                    span_id=str(record.get("span_id", "")),
                    parent_id=(
                        None
                        if record.get("parent_id") is None
                        else str(record.get("parent_id"))
                    ),
                )
            )
            adopted += 1
        with self._lock:
            self._records.extend(entries)
        return adopted

    def records(self) -> Tuple[SpanRecord, ...]:
        """Everything recorded so far, in completion order."""
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def install_trace_recorder(recorder: TraceRecorder) -> None:
    """Make ``recorder`` the process-wide span sink (replaces any)."""
    global _trace_recorder
    _trace_recorder = recorder


def uninstall_trace_recorder() -> Optional[TraceRecorder]:
    """Stop recording spans; returns the recorder that was active."""
    global _trace_recorder
    recorder = _trace_recorder
    _trace_recorder = None
    return recorder


def get_trace_recorder() -> Optional[TraceRecorder]:
    """The active trace recorder, if any."""
    return _trace_recorder
