"""Lightweight spans: timed, nested pipeline stages.

A span is a context manager marking one pipeline stage — "ingest",
"score_regions", "national.rollup" — recording its wall-clock duration
into the metrics registry (timer ``span.<name>``) and, at DEBUG level,
logging a structured enter/exit pair. Spans nest: each thread keeps a
span stack, and a span knows its slash-joined ``path`` and ``depth``,
so a JSONL log of a pipeline run reconstructs the stage tree.

Cost model: an enabled span is two ``perf_counter`` calls, one digest
insert, and (only when DEBUG logging is on) two log records. There is
deliberately no sampling or id-generation machinery — this is stage
timing for a batch pipeline, not distributed tracing.

Usage::

    from repro.obs import span

    with span("score", regions=len(batch)):
        with span("group"):
            ...
        with span("quantiles"):
            ...
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .logs import get_logger
from .registry import counter, timer

_logger = get_logger("repro.obs.span")

_state = threading.local()

#: Out-of-order span exits repaired by popping stale stack entries (see
#: :meth:`Span.__exit__`). A non-zero value means some code path holds
#: spans across generator/coroutine suspension points.
_MISMATCH = counter("span.stack.mismatch")

#: The process-wide trace recorder, or None when tracing is off. A
#: single ``is None`` check per span exit is the entire cost of the
#: disabled path.
_trace_recorder: Optional["TraceRecorder"] = None


def _stack() -> List["Span"]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed pipeline stage (use via :func:`span`)."""

    __slots__ = ("name", "fields", "path", "depth", "duration", "_start")

    def __init__(self, name: str, fields: Dict[str, object]) -> None:
        self.name = name
        self.fields = fields
        self.path = name  # finalized on __enter__ from the active stack
        self.depth = 0
        #: Wall-clock seconds, populated on exit (None while running).
        self.duration: Optional[float] = None
        self._start = 0.0

    def annotate(self, **fields: object) -> None:
        """Attach extra fields mid-flight (shown on the exit event)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "span enter",
                extra={"ctx": {"span": self.path, **self.fields}},
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:
            # Out-of-order exit: a span held across a suspended (and
            # never resumed) generator or an abandoned context left
            # stale entries above us. Leaving them would silently
            # corrupt path/depth for every later span on this thread,
            # so pop down to and including self, counting each stale
            # entry repaired; if self is not on the stack at all (its
            # frame was already swept), count one mismatch and leave
            # the stack alone.
            position = next(
                (
                    index
                    for index in range(len(stack) - 1, -1, -1)
                    if stack[index] is self
                ),
                None,
            )
            if position is None:
                _MISMATCH.inc()
            else:
                _MISMATCH.inc(len(stack) - position - 1)
                del stack[position:]
        timer(f"span.{self.name}").observe(self.duration)
        recorder = _trace_recorder
        if recorder is not None:
            recorder.record(self)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            ctx: Dict[str, object] = {
                "span": self.path,
                "seconds": round(self.duration, 6),
                **self.fields,
            }
            if exc_type is not None:
                ctx["error"] = getattr(exc_type, "__name__", str(exc_type))
            _logger.debug("span exit", extra={"ctx": ctx})
        # Exceptions always propagate (context manager returns None).


def span(name: str, **fields: object) -> Span:
    """A new span context manager for the named pipeline stage."""
    return Span(name, dict(fields))


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as captured by a :class:`TraceRecorder`.

    ``start_s`` is seconds since the recorder's own epoch (the moment
    it was constructed), which keeps every record on one monotonic
    timeline regardless of thread; spans that were already running when
    the recorder was installed clamp to 0.
    """

    name: str
    path: str
    depth: int
    start_s: float
    duration_s: float
    thread_id: int
    thread_name: str
    fields: Dict[str, object] = field(default_factory=dict)


class TraceRecorder:
    """Collects every completed span for post-run trace export.

    Installed per-run via :func:`install_trace_recorder` (the CLI does
    this for ``--trace-out``); recording is thread-safe and append-only,
    so a multi-threaded pipeline interleaves safely. The recorder sees
    spans on *exit* — a span still running at export time is simply
    absent, which is the right semantics for a run-scoped dump.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._epoch = time.perf_counter()
        self.started_unix = time.time()

    def record(self, completed: Span) -> None:
        """Capture one completed span (called from ``Span.__exit__``)."""
        current = threading.current_thread()
        entry = SpanRecord(
            name=completed.name,
            path=completed.path,
            depth=completed.depth,
            start_s=max(0.0, completed._start - self._epoch),
            duration_s=completed.duration or 0.0,
            thread_id=current.ident or 0,
            thread_name=current.name,
            fields=dict(completed.fields),
        )
        with self._lock:
            self._records.append(entry)

    def records(self) -> Tuple[SpanRecord, ...]:
        """Everything recorded so far, in completion order."""
        with self._lock:
            return tuple(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def install_trace_recorder(recorder: TraceRecorder) -> None:
    """Make ``recorder`` the process-wide span sink (replaces any)."""
    global _trace_recorder
    _trace_recorder = recorder


def uninstall_trace_recorder() -> Optional[TraceRecorder]:
    """Stop recording spans; returns the recorder that was active."""
    global _trace_recorder
    recorder = _trace_recorder
    _trace_recorder = None
    return recorder


def get_trace_recorder() -> Optional[TraceRecorder]:
    """The active trace recorder, if any."""
    return _trace_recorder
