"""Lightweight spans: timed, nested pipeline stages.

A span is a context manager marking one pipeline stage — "ingest",
"score_regions", "national.rollup" — recording its wall-clock duration
into the metrics registry (timer ``span.<name>``) and, at DEBUG level,
logging a structured enter/exit pair. Spans nest: each thread keeps a
span stack, and a span knows its slash-joined ``path`` and ``depth``,
so a JSONL log of a pipeline run reconstructs the stage tree.

Cost model: an enabled span is two ``perf_counter`` calls, one digest
insert, and (only when DEBUG logging is on) two log records. There is
deliberately no sampling or id-generation machinery — this is stage
timing for a batch pipeline, not distributed tracing.

Usage::

    from repro.obs import span

    with span("score", regions=len(batch)):
        with span("group"):
            ...
        with span("quantiles"):
            ...
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from .logs import get_logger
from .registry import timer

_logger = get_logger("repro.obs.span")

_state = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


def current_span() -> Optional["Span"]:
    """The innermost active span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed pipeline stage (use via :func:`span`)."""

    __slots__ = ("name", "fields", "path", "depth", "duration", "_start")

    def __init__(self, name: str, fields: Dict[str, object]) -> None:
        self.name = name
        self.fields = fields
        self.path = name  # finalized on __enter__ from the active stack
        self.depth = 0
        #: Wall-clock seconds, populated on exit (None while running).
        self.duration: Optional[float] = None
        self._start = 0.0

    def annotate(self, **fields: object) -> None:
        """Attach extra fields mid-flight (shown on the exit event)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            _logger.debug(
                "span enter",
                extra={"ctx": {"span": self.path, **self.fields}},
            )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self._start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        timer(f"span.{self.name}").observe(self.duration)
        if _logger.isEnabledFor(10):  # logging.DEBUG
            ctx: Dict[str, object] = {
                "span": self.path,
                "seconds": round(self.duration, 6),
                **self.fields,
            }
            if exc_type is not None:
                ctx["error"] = getattr(exc_type, "__name__", str(exc_type))
            _logger.debug("span exit", extra={"ctx": ctx})
        # Exceptions always propagate (context manager returns None).


def span(name: str, **fields: object) -> Span:
    """A new span context manager for the named pipeline stage."""
    return Span(name, dict(fields))
