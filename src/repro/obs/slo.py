"""Declarative SLOs over the barometer's own health signals.

The paper's framework only means something while the measurement
pipelines feeding it are themselves healthy — Feamster & Livingood's
point that measurement *infrastructure* must be continuously validated
before its numbers are trusted. This module turns that into the
standard SRE machinery: a rule file declares objectives over the
pipeline's data-quality signals, and a multi-window burn-rate engine
turns violations into OK/WARN/PAGE verdicts.

Four signal kinds are understood, matching what
:class:`~repro.obs.health.HealthMonitor` tracks:

* ``freshness``    — seconds since the last accepted measurement per
  (region, dataset) cell, judged against ``threshold_s``;
* ``completeness`` — observed vs expected sample counts per closed
  window, judged against ``min_ratio``;
* ``error_rate``   — the per-tick delta of a bad/total counter pair
  from the metrics registry (e.g. skipped ingest lines over read
  lines), judged against the rule's error budget ``1 - target``;
* ``latency``      — a registry timer's percentile (e.g. scoring
  latency) judged against ``threshold_s``.

**Burn-rate math.** Every evaluation tick contributes one good/bad
sample per rule. Over a sliding window, ``burn = bad_fraction /
(1 - target)`` — how many times faster than "just meets the SLO" the
error budget is being spent (burn 1.0 exhausts the budget exactly at
the window's end; burn 10 exhausts it 10x early). Two windows are
evaluated per rule — a *fast* one (default 1h) that reacts quickly and
a *slow* one (default 6h) that filters blips — and the state is taken
from the **smaller** of the two burns: PAGE needs both windows burning
at ``page_burn``, WARN both at ``warn_burn``, so a transient spike
(fast high, slow low) stays quiet and recovery (fast drains first) is
prompt. The engine is driven entirely by the timestamps handed to
:meth:`SLOEvaluator.sample` / :meth:`SLOEvaluator.statuses`, so tests
inject clocks and replays are deterministic — there is no hidden
``time.time()`` anywhere in the evaluation path.

Rule files are JSON first (always available); YAML loads through an
optional ``pyyaml`` import and fails with a clear error when the
dependency is absent.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .registry import gauge

#: Ordered severity scale: index = numeric severity (exported as the
#: ``iqb_slo_state`` gauge value).
STATES: Tuple[str, ...] = ("ok", "warn", "page")

SIGNALS: Tuple[str, ...] = (
    "freshness",
    "completeness",
    "error_rate",
    "latency",
)

#: Default sliding windows (seconds): 1h fast / 6h slow.
DEFAULT_FAST_WINDOW_S = 3600.0
DEFAULT_SLOW_WINDOW_S = 21600.0


def worst_state(states: Sequence[str]) -> str:
    """The most severe of the given states (``"ok"`` when empty)."""
    if not states:
        return STATES[0]
    return STATES[max(STATES.index(state) for state in states)]


@dataclass(frozen=True)
class SLORule:
    """One declarative objective over a pipeline health signal.

    Args:
        name: unique rule name (labels the ``slo.burn_rate.<name>``
            gauge and every report entry).
        signal: one of :data:`SIGNALS`.
        target: the fraction of evaluation ticks that must find the
            signal healthy; the error budget is ``1 - target``.
        dataset / region: optional selectors narrowing freshness and
            completeness rules to one dataset and/or region (``None``
            matches all).
        threshold_s: the freshness age limit, or the latency budget,
            in seconds (required for those signals).
        min_ratio: the completeness floor (observed/expected).
        bad_counter / total_counter: registry counter names whose
            per-tick delta ratio drives an ``error_rate`` rule.
        timer: registry timer name for a ``latency`` rule.
        percentile: which percentile of the timer to judge.
        fast_window_s / slow_window_s: the two burn-rate windows.
        warn_burn / page_burn: burn thresholds for WARN and PAGE.
    """

    name: str
    signal: str
    target: float = 0.99
    dataset: Optional[str] = None
    region: Optional[str] = None
    threshold_s: Optional[float] = None
    min_ratio: float = 0.9
    bad_counter: Optional[str] = None
    total_counter: Optional[str] = None
    timer: Optional[str] = None
    percentile: float = 95.0
    fast_window_s: float = DEFAULT_FAST_WINDOW_S
    slow_window_s: float = DEFAULT_SLOW_WINDOW_S
    warn_burn: float = 2.0
    page_burn: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO rule requires a name")
        if self.signal not in SIGNALS:
            raise ValueError(
                f"unknown SLO signal {self.signal!r} (have {SIGNALS})"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"target must be in (0, 1): {self.target} ({self.name})"
            )
        if self.signal in ("freshness", "latency"):
            if self.threshold_s is None or self.threshold_s <= 0:
                raise ValueError(
                    f"{self.signal} rule {self.name!r} requires a "
                    f"positive threshold_s"
                )
        if self.signal == "completeness" and not 0.0 < self.min_ratio <= 1.0:
            raise ValueError(
                f"min_ratio must be in (0, 1]: {self.min_ratio} "
                f"({self.name})"
            )
        if self.signal == "error_rate" and (
            not self.bad_counter or not self.total_counter
        ):
            raise ValueError(
                f"error_rate rule {self.name!r} requires bad_counter "
                f"and total_counter"
            )
        if self.signal == "latency" and not self.timer:
            raise ValueError(
                f"latency rule {self.name!r} requires a timer name"
            )
        if not 0.0 < self.fast_window_s <= self.slow_window_s:
            raise ValueError(
                f"windows must satisfy 0 < fast <= slow: "
                f"{self.fast_window_s} / {self.slow_window_s} ({self.name})"
            )
        if not 0.0 < self.warn_burn <= self.page_burn:
            raise ValueError(
                f"burns must satisfy 0 < warn <= page: "
                f"{self.warn_burn} / {self.page_burn} ({self.name})"
            )

    @property
    def error_budget(self) -> float:
        """The allowed bad fraction (floored away from zero)."""
        return max(1.0 - self.target, 1e-9)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (round-trips through :func:`rule_from_dict`)."""
        document: Dict[str, Any] = {
            "name": self.name,
            "signal": self.signal,
            "target": self.target,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "warn_burn": self.warn_burn,
            "page_burn": self.page_burn,
        }
        for key in (
            "dataset",
            "region",
            "threshold_s",
            "bad_counter",
            "total_counter",
            "timer",
        ):
            value = getattr(self, key)
            if value is not None:
                document[key] = value
        if self.signal == "completeness":
            document["min_ratio"] = self.min_ratio
        if self.signal == "latency":
            document["percentile"] = self.percentile
        return document


_RULE_FIELDS = frozenset(
    (
        "name",
        "signal",
        "target",
        "dataset",
        "region",
        "threshold_s",
        "min_ratio",
        "bad_counter",
        "total_counter",
        "timer",
        "percentile",
        "fast_window_s",
        "slow_window_s",
        "warn_burn",
        "page_burn",
    )
)


def rule_from_dict(document: Mapping[str, Any]) -> SLORule:
    """Build one :class:`SLORule` from a rule-file entry.

    Raises:
        repro.core.exceptions.SchemaError: on unknown keys, so a typo
            in a rule file fails loudly instead of silently relaxing
            the objective.
    """
    from repro.core.exceptions import SchemaError

    unknown = sorted(set(document) - _RULE_FIELDS)
    if unknown:
        raise SchemaError(
            f"unknown SLO rule key(s): {', '.join(unknown)} "
            f"(rule {document.get('name', '?')!r})"
        )
    try:
        return SLORule(**dict(document))
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"invalid SLO rule: {exc}") from exc


def load_rules(path: str) -> Tuple[SLORule, ...]:
    """Load SLO rules from a JSON (or, with pyyaml, YAML) file.

    The document is either a bare list of rule objects or a mapping
    with a top-level ``"rules"`` list. JSON needs nothing beyond the
    stdlib; ``.yaml``/``.yml`` files import pyyaml lazily and raise a
    :class:`~repro.core.exceptions.SchemaError` naming the missing
    dependency when it is not installed.
    """
    from repro.core.exceptions import SchemaError

    text = open(path, "r", encoding="utf-8").read()
    lowered = str(path).lower()
    if lowered.endswith((".yaml", ".yml")):
        try:
            import yaml  # type: ignore[import-untyped]
        except ImportError as exc:  # pragma: no cover - env dependent
            raise SchemaError(
                f"YAML rule file {path} requires pyyaml; install it or "
                f"use the JSON rule format"
            ) from exc
        document = yaml.safe_load(text)
    else:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"invalid JSON rule file {path}: {exc}") from exc
    if isinstance(document, Mapping):
        entries = document.get("rules")
    else:
        entries = document
    if not isinstance(entries, list):
        raise SchemaError(
            f"rule file {path} must be a list of rules or "
            f'{{"rules": [...]}}'
        )
    rules = tuple(rule_from_dict(entry) for entry in entries)
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        dupes = sorted({name for name in names if names.count(name) > 1})
        raise SchemaError(f"duplicate SLO rule name(s): {', '.join(dupes)}")
    return rules


class _BurnSeries:
    """Ring of (timestamp, bad) evaluation samples for one rule.

    Samples older than the slow window are pruned on insert, so memory
    is bounded by tick rate x slow window regardless of campaign
    length.
    """

    __slots__ = ("_samples",)

    def __init__(self) -> None:
        self._samples: Deque[Tuple[float, bool]] = deque()

    def add(self, at: float, bad: bool, horizon_s: float) -> None:
        samples = self._samples
        samples.append((float(at), bool(bad)))
        cutoff = at - horizon_s
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def window(self, at: float, window_s: float) -> Tuple[int, int]:
        """(total, bad) sample counts inside ``[at - window_s, at]``."""
        cutoff = at - window_s
        total = bad = 0
        for when, was_bad in self._samples:
            if cutoff <= when <= at:
                total += 1
                if was_bad:
                    bad += 1
        return total, bad


@dataclass(frozen=True)
class SLOStatus:
    """One rule's deterministic verdict at an evaluation instant."""

    name: str
    signal: str
    state: str
    burn_fast: float
    burn_slow: float
    samples: int
    bad: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "signal": self.signal,
            "state": self.state,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "samples": self.samples,
            "bad": self.bad,
            "detail": self.detail,
        }


class SLOEvaluator:
    """Multi-window burn-rate evaluation over a fixed rule set.

    :meth:`sample` records one good/bad observation per rule (the
    health monitor calls it every tick); :meth:`statuses` folds the
    sample history into per-rule verdicts at an explicit instant and
    publishes ``slo.burn_rate.<rule>`` / ``slo.state.<rule>`` gauges.
    Both are pure functions of the timestamps given — no wall clock.
    """

    def __init__(self, rules: Sequence[SLORule]) -> None:
        self.rules: Tuple[SLORule, ...] = tuple(rules)
        self._by_name: Dict[str, SLORule] = {
            rule.name: rule for rule in self.rules
        }
        self._series: Dict[str, _BurnSeries] = {
            rule.name: _BurnSeries() for rule in self.rules
        }
        self._details: Dict[str, str] = {}

    def sample(
        self, name: str, bad: bool, at: float, detail: str = ""
    ) -> None:
        """Record one evaluation tick's verdict for rule ``name``."""
        rule = self._by_name.get(name)
        if rule is None:
            raise KeyError(f"unknown SLO rule: {name!r}")
        self._series[name].add(at, bad, rule.slow_window_s)
        self._details[name] = detail

    def statuses(self, at: float) -> Tuple[SLOStatus, ...]:
        """Every rule's verdict at instant ``at``, sorted by rule name."""
        out: List[SLOStatus] = []
        for rule in sorted(self.rules, key=lambda r: r.name):
            series = self._series[rule.name]
            fast_total, fast_bad = series.window(at, rule.fast_window_s)
            slow_total, slow_bad = series.window(at, rule.slow_window_s)
            burn_fast = self._burn(fast_total, fast_bad, rule)
            burn_slow = self._burn(slow_total, slow_bad, rule)
            effective = min(burn_fast, burn_slow)
            if effective >= rule.page_burn:
                state = "page"
            elif effective >= rule.warn_burn:
                state = "warn"
            else:
                state = "ok"
            gauge(f"slo.burn_rate.{rule.name}").set(
                burn_fast if math.isfinite(burn_fast) else 1e9
            )
            gauge(f"slo.state.{rule.name}").set(float(STATES.index(state)))
            out.append(
                SLOStatus(
                    name=rule.name,
                    signal=rule.signal,
                    state=state,
                    burn_fast=burn_fast,
                    burn_slow=burn_slow,
                    samples=slow_total,
                    bad=slow_bad,
                    detail=self._details.get(rule.name, ""),
                )
            )
        return tuple(out)

    @staticmethod
    def _burn(total: int, bad: int, rule: SLORule) -> float:
        if total == 0:
            return 0.0
        return (bad / total) / rule.error_budget


@dataclass(frozen=True)
class HealthReport:
    """The deterministic end-to-end health verdict.

    What ``/slo``, ``/quality``, ``iqb health --json`` and the run
    manifest all serialize: an overall state (the worst rule verdict),
    per-rule burn-rate statuses, the data-quality section (freshness /
    completeness / stale cells), and recent score-drift events. The
    dictionary form is fully sorted, so two evaluations over the same
    inputs byte-compare equal.
    """

    generated_at: float
    status: str
    rules: Tuple[SLOStatus, ...]
    quality: Mapping[str, Any] = field(default_factory=dict)
    drift: Tuple[Dict[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "generated_at": self.generated_at,
            "status": self.status,
            "rules": [status.to_dict() for status in self.rules],
            "quality": _sorted_deep(self.quality),
            "drift": [dict(event) for event in self.drift],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "HealthReport":
        return cls(
            generated_at=float(document.get("generated_at", 0.0)),
            status=str(document.get("status", "ok")),
            rules=tuple(
                SLOStatus(
                    name=str(entry["name"]),
                    signal=str(entry["signal"]),
                    state=str(entry["state"]),
                    burn_fast=float(entry.get("burn_fast", 0.0)),
                    burn_slow=float(entry.get("burn_slow", 0.0)),
                    samples=int(entry.get("samples", 0)),
                    bad=int(entry.get("bad", 0)),
                    detail=str(entry.get("detail", "")),
                )
                for entry in document.get("rules", ())
            ),
            quality=dict(document.get("quality", {})),
            drift=tuple(dict(e) for e in document.get("drift", ())),
        )


def _sorted_deep(value: Any) -> Any:
    """Recursively key-sort mappings for byte-stable serialization."""
    if isinstance(value, Mapping):
        return {key: _sorted_deep(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_sorted_deep(item) for item in value]
    return value
