"""The telemetry endpoint: live metrics over HTTP for long-running runs.

A deployed barometer campaign (``iqb monitor``/``iqb adaptive`` with
``--telemetry-port``, or any embedding application) serves its own
operational state so the measurement *infrastructure* is observable
with the same rigor as the measurements:

* ``GET /metrics``      — Prometheus text exposition (scrape target),
  including the labeled per-(region, dataset) health families when a
  :class:`~repro.obs.health.HealthMonitor` is active, and the labeled
  per-(path, status) ``iqb_http_requests_total`` family;
* ``GET /metrics.json`` — the registry snapshot as JSON (the same
  document ``iqb metrics`` prints);
* ``GET /healthz``      — liveness JSON: uptime, cycle progress, alert
  and unscorable-window counts; HTTP 503 once the pipeline looks
  stalled (no completed cycle within ``stalled_after_s``) or once the
  SLO verdict reaches PAGE;
* ``GET /slo``          — the deterministic ``HealthReport`` (overall
  state, per-rule burn rates, drift events) as JSON;
* ``GET /quality``      — the data-quality section alone: freshness,
  completeness, and stale (region, dataset) cells.

Routing lives on the *server object* (:meth:`TelemetryServer.dispatch`
returns a :class:`Response`), not in the handler, so subclasses — the
scoring service's :class:`~repro.serve.http.ServeServer` — extend the
route table by overriding one method. The handler contributes the
transport-level guarantees around every dispatch:

* a handler exception becomes a well-formed 500 JSON body (correct
  ``Content-Length``, so clients never hang on a truncated response)
  and bumps the ``http.errors`` counter;
* every request is counted per (route, status) and timed into an
  ``http.latency.<route>`` registry timer — the p50/p99 source for
  serve SLO latency rules;
* in-flight requests are tracked, so :meth:`TelemetryServer.drain`
  can wait them out before a graceful shutdown.

The server is a daemon-threaded stdlib ``http.server`` — it never
blocks pipeline work or process exit, and serving a scrape costs one
registry snapshot. Binding port 0 picks an ephemeral port (the bound
port is returned from :meth:`TelemetryServer.start`), which is also how
the integration tests run against a live campaign.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, NamedTuple, Optional, Tuple

from .exposition import CONTENT_TYPE as _PROM_CONTENT_TYPE
from .exposition import escape_help, format_labels, prometheus_name
from .health import HealthMonitor, get_health_monitor
from .logs import get_logger
from .registry import REGISTRY, MetricsRegistry, counter

_logger = get_logger(__name__)

_REQUESTS = counter("telemetry.http.requests")
_NOT_FOUND = counter("telemetry.http.not_found")

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Route label for paths outside the route table. One shared bucket —
#: per-endpoint metrics must not grow a series per scanned URL.
UNKNOWN_ROUTE = "(unknown)"

_EMPTY_HEADERS: Mapping[str, str] = {}


class Response(NamedTuple):
    """One dispatched response, ready for the handler to write.

    ``route`` is the *label* the request is accounted under (the
    route-table entry, e.g. ``/v1/scores/:region`` — never the raw
    concrete path, which would be unbounded-cardinality).
    """

    status: int
    content_type: str
    body: str
    headers: Mapping[str, str] = _EMPTY_HEADERS
    route: str = UNKNOWN_ROUTE


def json_response(
    status: int,
    document: Mapping[str, object],
    route: str,
    headers: Mapping[str, str] = _EMPTY_HEADERS,
) -> Response:
    """A JSON :class:`Response` (sorted keys, trailing newline)."""
    body = json.dumps(document, indent=2, sort_keys=True) + "\n"
    return Response(status, JSON_CONTENT_TYPE, body, headers, route)


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Transport shim: dispatch on the server object, reply safely."""

    server: "_TelemetryHTTPServer"

    # Silence the default stderr access log; scrapes are periodic and
    # the request counter already accounts for them.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        _REQUESTS.inc()
        telemetry = self.server.telemetry
        path = self.path.split("?", 1)[0]
        telemetry._request_started()
        started = time.perf_counter()
        try:
            try:
                response = telemetry.dispatch(path, self.headers)
            except Exception as exc:  # noqa: BLE001 - the 500 boundary
                response = telemetry.internal_error(path, exc)
            if response.status == 404:
                _NOT_FOUND.inc()
            telemetry.observe_request(
                response.route,
                response.status,
                time.perf_counter() - started,
            )
            self._reply(response)
        finally:
            telemetry._request_finished()

    def _reply(self, response: Response) -> None:
        payload = response.body.encode("utf-8")
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            # A 304 carries headers only (RFC 9110 §15.4.5); the
            # Content-Length above is 0 for the empty body.
            if payload and response.status != 304:
                self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-write. Nothing to salvage, and
            # it is not a server failure — don't let http.server spray
            # a traceback from the worker thread.
            pass


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    telemetry: "TelemetryServer"


class TelemetryServer:
    """Serves a registry's metrics and a health verdict over HTTP.

    Usage::

        server = TelemetryServer(port=0)       # ephemeral port
        port = server.start()
        ...                                    # run the campaign
        server.drain()                         # graceful: finish work
        server.stop()

    Args:
        registry: metrics source (default: the process registry).
            Per-endpoint latency timers are observed into it, so SLO
            latency rules (which read the process registry) see serve
            traffic when the default is used.
        host: bind address (default loopback; bind explicitly to
            expose beyond the machine).
        port: TCP port; 0 asks the OS for an ephemeral one.
        stalled_after_s: when set, ``/healthz`` reports 503 once the
            ``monitor.last_cycle_unix`` gauge is older than this many
            seconds (a campaign that stopped completing cycles is down
            even though the process is up). ``None`` disables the
            check; :meth:`mark_stalled` forces a 503 either way.
        health: an explicit :class:`~repro.obs.health.HealthMonitor`
            to serve from ``/slo`` and ``/quality``; by default the
            process-installed monitor (if any) is picked up at request
            time, so installing one after :meth:`start` still works.
    """

    #: The base route table; subclasses extend via :meth:`routes`.
    BASE_ROUTES: Tuple[str, ...] = (
        "/metrics",
        "/metrics.json",
        "/healthz",
        "/slo",
        "/quality",
    )

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stalled_after_s: Optional[float] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.host = host
        self.stalled_after_s = stalled_after_s
        self._health_monitor = health
        self._requested_port = port
        self._server: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_unix: Optional[float] = None
        self._stalled_reason: Optional[str] = None
        # Per-(route, status) request counts for the labeled family,
        # and the in-flight count drain() waits on — one lock for both.
        self._http_lock = threading.Lock()
        self._http_counts: Dict[Tuple[str, int], int] = {}
        self._inflight = 0
        self._idle = threading.Condition(self._http_lock)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        server = _TelemetryHTTPServer(
            (self.host, self._requested_port), _TelemetryHandler
        )
        server.telemetry = self
        self._server = server
        self._started_unix = time.time()
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="iqb-telemetry",
            daemon=True,
        )
        self._thread.start()
        _logger.info(
            "telemetry endpoint up",
            extra={"ctx": {"host": self.host, "port": self.port}},
        )
        return self.port

    def stop(self) -> None:
        """Shut the listener down (idempotent).

        Does not wait for in-flight requests — call :meth:`drain`
        first for a graceful shutdown.
        """
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until no request is mid-dispatch; True when drained.

        New connections are still accepted while draining (the
        listener is up until :meth:`stop`); the graceful-shutdown
        sequence is therefore *drain then stop*, bounded by
        ``timeout`` seconds so a wedged handler cannot hold the
        process exit hostage.
        """
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- routing ------------------------------------------------------------

    def routes(self) -> Tuple[str, ...]:
        """The served route labels (404 bodies and metric hygiene)."""
        return self.BASE_ROUTES

    def route_label(self, path: str) -> str:
        """The accounting label for a concrete request path."""
        return path if path in self.routes() else UNKNOWN_ROUTE

    def dispatch(self, path: str, headers: Mapping[str, str]) -> Response:
        """Route one GET; subclasses extend and fall back to super()."""
        if path == "/metrics":
            body = self.registry.render_prometheus()
            monitor = self.health_monitor()
            if monitor is not None:
                body += monitor.render_prometheus()
            body += self.render_http_prometheus()
            return Response(200, _PROM_CONTENT_TYPE, body, route="/metrics")
        if path == "/metrics.json":
            body = self.registry.render_json() + "\n"
            return Response(
                200, JSON_CONTENT_TYPE, body, route="/metrics.json"
            )
        if path == "/healthz":
            status, document = self.health()
            return json_response(status, document, "/healthz")
        if path == "/slo":
            status, document = self.slo()
            return json_response(status, document, "/slo")
        if path == "/quality":
            status, document = self.quality()
            return json_response(status, document, "/quality")
        return self.not_found(path)

    def not_found(self, path: str) -> Response:
        """The 404 response, naming every served route."""
        return Response(
            404,
            "text/plain; charset=utf-8",
            f"not found; try {', '.join(self.routes())}\n",
            route=self.route_label(path),
        )

    def internal_error(self, path: str, exc: BaseException) -> Response:
        """A dispatch exception as a well-formed 500 JSON response.

        The body is built *before* any byte is written, so the client
        always gets a complete response with a correct Content-Length
        instead of a hung connection; the ``http.errors`` counter makes
        the failure visible to scrapes.
        """
        self.registry.counter("http.errors").inc()
        _logger.error(
            "telemetry handler error",
            extra={"ctx": {"path": path, "error": repr(exc)}},
        )
        document = {
            "error": "internal server error",
            "exception": type(exc).__name__,
            "detail": str(exc),
            "path": path,
        }
        return json_response(500, document, self.route_label(path))

    # -- per-endpoint observability -----------------------------------------

    def observe_request(
        self, route: str, status: int, seconds: float
    ) -> None:
        """Account one finished request under its route label.

        Feeds both halves of the per-endpoint story: the labeled
        ``http.requests{path,status}`` family (instance state, rendered
        by :meth:`render_http_prometheus` — the registry's unlabeled
        namespace cannot hold it without colliding families) and the
        ``http.latency.<route>`` registry timer whose p50/p99 the SLO
        latency rules and ``/metrics`` summaries read.
        """
        with self._http_lock:
            key = (route, int(status))
            self._http_counts[key] = self._http_counts.get(key, 0) + 1
        self.registry.timer(f"http.latency.{route}").observe(seconds)

    def request_count(self) -> int:
        """Total requests accounted so far (all routes and statuses)."""
        with self._http_lock:
            return sum(self._http_counts.values())

    def render_http_prometheus(self) -> str:
        """The labeled per-(path, status) request-count family.

        Escaped through the standard 0.0.4 helpers; empty until the
        first request finishes, so a fresh server's ``/metrics`` body
        is exactly the registry exposition.
        """
        with self._http_lock:
            counts = sorted(self._http_counts.items())
        if not counts:
            return ""
        name = prometheus_name("http.requests") + "_total"
        help_text = escape_help(
            "IQB counter http.requests (by path and status)"
        )
        lines = [f"# HELP {name} {help_text}", f"# TYPE {name} counter"]
        for (route, status), value in counts:
            labels = format_labels({"path": route, "status": str(status)})
            lines.append(f"{name}{labels} {value}")
        return "\n".join(lines) + "\n"

    # -- in-flight accounting (drain support) --------------------------------

    def _request_started(self) -> None:
        with self._idle:
            self._inflight += 1

    def _request_finished(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    # -- introspection ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._server.server_address[1] if self._server else 0

    @property
    def address(self) -> str:
        """``host:port`` of the live listener."""
        return f"{self.host}:{self.port}"

    def url(self, path: str = "/metrics") -> str:
        """Absolute URL for one of the served paths."""
        return f"http://{self.address}{path}"

    def mark_stalled(self, reason: str) -> None:
        """Force ``/healthz`` to 503 with an explicit reason."""
        self._stalled_reason = reason

    def clear_stalled(self) -> None:
        """Drop a previous :meth:`mark_stalled` verdict."""
        self._stalled_reason = None

    def health_monitor(self) -> Optional[HealthMonitor]:
        """The health monitor to serve from (explicit, else installed)."""
        if self._health_monitor is not None:
            return self._health_monitor
        return get_health_monitor()

    def slo(self) -> Tuple[int, Dict[str, object]]:
        """The ``/slo`` verdict: the full HealthReport document.

        Always HTTP 200 — the report's ``status`` field carries the
        verdict (``/healthz`` is where PAGE turns into a 503, for
        load-balancer consumption). With no monitor installed the
        endpoint says so instead of 404ing, so dashboards can probe it
        unconditionally.
        """
        monitor = self.health_monitor()
        if monitor is None:
            return 200, {"status": "disabled", "rules": [], "drift": []}
        return 200, monitor.evaluate().to_dict()

    def quality(self) -> Tuple[int, Dict[str, object]]:
        """The ``/quality`` document: freshness/completeness/staleness."""
        monitor = self.health_monitor()
        if monitor is None:
            return 200, {"status": "disabled"}
        report = monitor.evaluate()
        document: Dict[str, object] = {"status": report.status}
        document.update(report.to_dict()["quality"])
        return 200, document

    def health(self) -> Tuple[int, Dict[str, object]]:
        """The ``/healthz`` verdict: ``(http_status, document)``.

        Liveness fields come straight from the registry gauges the
        probing layer maintains (``monitor.cycles``,
        ``monitor.last_cycle_unix``) and the alert/unscorable counters,
        so batch runs and live campaigns report through one vocabulary.
        With a health monitor active the document also carries the SLO
        verdict, and a PAGE state is a 503 — a load balancer should
        stop trusting a barometer whose own SLOs are burning.
        """
        now = time.time()
        snap = self.registry.snapshot()
        gauges = snap["gauges"]
        counters = snap["counters"]
        last_cycle = gauges.get("monitor.last_cycle_unix", 0.0) or None
        reason = self._stalled_reason
        if (
            reason is None
            and self.stalled_after_s is not None
            and last_cycle is not None
            and now - last_cycle > self.stalled_after_s
        ):
            reason = (
                f"no cycle completed in {now - last_cycle:.1f}s "
                f"(threshold {self.stalled_after_s:g}s)"
            )
        document: Dict[str, object] = {
            "status": "stalled" if reason else "ok",
            "uptime_s": round(now - (self._started_unix or now), 3),
            "last_cycle_unix": last_cycle,
            "cycles": gauges.get("monitor.cycles", 0.0),
            "alerts": counters.get("monitor.alerts", 0),
            "unscorable_windows": counters.get(
                "monitor.windows.unscorable", 0
            ),
            # Resilience visibility: datasets currently black-holed by
            # circuit breakers, and regions last scored with a dataset
            # missing — degraded operation is "ok" but must be seen.
            "open_breakers": gauges.get("probe.circuit.open", 0.0),
            "degraded_regions": gauges.get("score.degraded.regions", 0.0),
        }
        monitor = self.health_monitor()
        if monitor is not None:
            slo_state = monitor.evaluate().status
            document["slo"] = slo_state
            if reason is None and slo_state == "page":
                reason = "slo burn rate at page severity"
                document["status"] = "page"
        if reason:
            document["reason"] = reason
        return (503 if reason else 200), document
