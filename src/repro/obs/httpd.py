"""The telemetry endpoint: live metrics over HTTP for long-running runs.

A deployed barometer campaign (``iqb monitor``/``iqb adaptive`` with
``--telemetry-port``, or any embedding application) serves its own
operational state so the measurement *infrastructure* is observable
with the same rigor as the measurements:

* ``GET /metrics``      — Prometheus text exposition (scrape target),
  including the labeled per-(region, dataset) health families when a
  :class:`~repro.obs.health.HealthMonitor` is active;
* ``GET /metrics.json`` — the registry snapshot as JSON (the same
  document ``iqb metrics`` prints);
* ``GET /healthz``      — liveness JSON: uptime, cycle progress, alert
  and unscorable-window counts; HTTP 503 once the pipeline looks
  stalled (no completed cycle within ``stalled_after_s``) or once the
  SLO verdict reaches PAGE;
* ``GET /slo``          — the deterministic ``HealthReport`` (overall
  state, per-rule burn rates, drift events) as JSON;
* ``GET /quality``      — the data-quality section alone: freshness,
  completeness, and stale (region, dataset) cells.

The server is a daemon-threaded stdlib ``http.server`` — it never
blocks pipeline work or process exit, and serving a scrape costs one
registry snapshot. Binding port 0 picks an ephemeral port (the bound
port is returned from :meth:`TelemetryServer.start`), which is also how
the integration tests run against a live campaign.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .exposition import CONTENT_TYPE as _PROM_CONTENT_TYPE
from .health import HealthMonitor, get_health_monitor
from .logs import get_logger
from .registry import REGISTRY, MetricsRegistry, counter

_logger = get_logger(__name__)

_REQUESTS = counter("telemetry.http.requests")
_NOT_FOUND = counter("telemetry.http.not_found")


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes the three telemetry endpoints; everything else is 404."""

    server: "_TelemetryHTTPServer"

    # Silence the default stderr access log; scrapes are periodic and
    # the request counter already accounts for them.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        _REQUESTS.inc()
        telemetry = self.server.telemetry
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = telemetry.registry.render_prometheus()
            monitor = telemetry.health_monitor()
            if monitor is not None:
                body += monitor.render_prometheus()
            self._reply(200, _PROM_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = telemetry.registry.render_json() + "\n"
            self._reply(200, "application/json; charset=utf-8", body)
        elif path == "/healthz":
            status, document = telemetry.health()
            body = json.dumps(document, indent=2, sort_keys=True) + "\n"
            self._reply(status, "application/json; charset=utf-8", body)
        elif path == "/slo":
            status, document = telemetry.slo()
            body = json.dumps(document, indent=2, sort_keys=True) + "\n"
            self._reply(status, "application/json; charset=utf-8", body)
        elif path == "/quality":
            status, document = telemetry.quality()
            body = json.dumps(document, indent=2, sort_keys=True) + "\n"
            self._reply(status, "application/json; charset=utf-8", body)
        else:
            _NOT_FOUND.inc()
            self._reply(
                404,
                "text/plain; charset=utf-8",
                "not found; try /metrics, /metrics.json, /healthz, "
                "/slo, /quality\n",
            )

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    telemetry: "TelemetryServer"


class TelemetryServer:
    """Serves a registry's metrics and a health verdict over HTTP.

    Usage::

        server = TelemetryServer(port=0)       # ephemeral port
        port = server.start()
        ...                                    # run the campaign
        server.stop()

    Args:
        registry: metrics source (default: the process registry).
        host: bind address (default loopback; bind explicitly to
            expose beyond the machine).
        port: TCP port; 0 asks the OS for an ephemeral one.
        stalled_after_s: when set, ``/healthz`` reports 503 once the
            ``monitor.last_cycle_unix`` gauge is older than this many
            seconds (a campaign that stopped completing cycles is down
            even though the process is up). ``None`` disables the
            check; :meth:`mark_stalled` forces a 503 either way.
        health: an explicit :class:`~repro.obs.health.HealthMonitor`
            to serve from ``/slo`` and ``/quality``; by default the
            process-installed monitor (if any) is picked up at request
            time, so installing one after :meth:`start` still works.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        stalled_after_s: Optional[float] = None,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.host = host
        self.stalled_after_s = stalled_after_s
        self._health_monitor = health
        self._requested_port = port
        self._server: Optional[_TelemetryHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_unix: Optional[float] = None
        self._stalled_reason: Optional[str] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> int:
        """Bind and serve in a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        server = _TelemetryHTTPServer(
            (self.host, self._requested_port), _TelemetryHandler
        )
        server.telemetry = self
        self._server = server
        self._started_unix = time.time()
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="iqb-telemetry",
            daemon=True,
        )
        self._thread.start()
        _logger.info(
            "telemetry endpoint up",
            extra={"ctx": {"host": self.host, "port": self.port}},
        )
        return self.port

    def stop(self) -> None:
        """Shut the listener down (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- introspection ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._server.server_address[1] if self._server else 0

    @property
    def address(self) -> str:
        """``host:port`` of the live listener."""
        return f"{self.host}:{self.port}"

    def url(self, path: str = "/metrics") -> str:
        """Absolute URL for one of the served paths."""
        return f"http://{self.address}{path}"

    def mark_stalled(self, reason: str) -> None:
        """Force ``/healthz`` to 503 with an explicit reason."""
        self._stalled_reason = reason

    def clear_stalled(self) -> None:
        """Drop a previous :meth:`mark_stalled` verdict."""
        self._stalled_reason = None

    def health_monitor(self) -> Optional[HealthMonitor]:
        """The health monitor to serve from (explicit, else installed)."""
        if self._health_monitor is not None:
            return self._health_monitor
        return get_health_monitor()

    def slo(self) -> Tuple[int, Dict[str, object]]:
        """The ``/slo`` verdict: the full HealthReport document.

        Always HTTP 200 — the report's ``status`` field carries the
        verdict (``/healthz`` is where PAGE turns into a 503, for
        load-balancer consumption). With no monitor installed the
        endpoint says so instead of 404ing, so dashboards can probe it
        unconditionally.
        """
        monitor = self.health_monitor()
        if monitor is None:
            return 200, {"status": "disabled", "rules": [], "drift": []}
        return 200, monitor.evaluate().to_dict()

    def quality(self) -> Tuple[int, Dict[str, object]]:
        """The ``/quality`` document: freshness/completeness/staleness."""
        monitor = self.health_monitor()
        if monitor is None:
            return 200, {"status": "disabled"}
        report = monitor.evaluate()
        document: Dict[str, object] = {"status": report.status}
        document.update(report.to_dict()["quality"])
        return 200, document

    def health(self) -> Tuple[int, Dict[str, object]]:
        """The ``/healthz`` verdict: ``(http_status, document)``.

        Liveness fields come straight from the registry gauges the
        probing layer maintains (``monitor.cycles``,
        ``monitor.last_cycle_unix``) and the alert/unscorable counters,
        so batch runs and live campaigns report through one vocabulary.
        With a health monitor active the document also carries the SLO
        verdict, and a PAGE state is a 503 — a load balancer should
        stop trusting a barometer whose own SLOs are burning.
        """
        now = time.time()
        snap = self.registry.snapshot()
        gauges = snap["gauges"]
        counters = snap["counters"]
        last_cycle = gauges.get("monitor.last_cycle_unix", 0.0) or None
        reason = self._stalled_reason
        if (
            reason is None
            and self.stalled_after_s is not None
            and last_cycle is not None
            and now - last_cycle > self.stalled_after_s
        ):
            reason = (
                f"no cycle completed in {now - last_cycle:.1f}s "
                f"(threshold {self.stalled_after_s:g}s)"
            )
        document: Dict[str, object] = {
            "status": "stalled" if reason else "ok",
            "uptime_s": round(now - (self._started_unix or now), 3),
            "last_cycle_unix": last_cycle,
            "cycles": gauges.get("monitor.cycles", 0.0),
            "alerts": counters.get("monitor.alerts", 0),
            "unscorable_windows": counters.get(
                "monitor.windows.unscorable", 0
            ),
            # Resilience visibility: datasets currently black-holed by
            # circuit breakers, and regions last scored with a dataset
            # missing — degraded operation is "ok" but must be seen.
            "open_breakers": gauges.get("probe.circuit.open", 0.0),
            "degraded_regions": gauges.get("score.degraded.regions", 0.0),
        }
        monitor = self.health_monitor()
        if monitor is not None:
            slo_state = monitor.evaluate().status
            document["slo"] = slo_state
            if reason is None and slo_state == "page":
                reason = "slo burn rate at page severity"
                document["status"] = "page"
        if reason:
            document["reason"] = reason
        return (503 if reason else 200), document
