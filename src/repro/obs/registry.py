"""Process-wide metrics registry: counters, gauges, timers.

Operational telemetry for the barometer pipeline. The registry is the
single place every subsystem reports into — probe retries, skipped
ingest lines, quantile-cache hits — so an operator (or the ``iqb
metrics`` subcommand) can snapshot the whole pipeline's health in one
call, the way Feamster & Livingood argue measurement *infrastructure*
health must ship alongside the measurements themselves.

Design constraints, in order:

1. **Near-zero cost on hot paths.** Instruments are plain objects with
   ``__slots__``; ``Counter.inc`` is one attribute add. Callers bind
   instruments once at module import time and hold the reference —
   :meth:`MetricsRegistry.reset` zeroes instruments *in place* rather
   than replacing them, so module-level bindings never go stale.
2. **No mandatory configuration.** The default registry exists at
   import; counting is always on (it is cheaper than checking a flag).
   Only *logging* has an enable/disable story (see :mod:`.logs`).
3. **Rich timers without new dependencies.** :class:`Timer` feeds a
   :class:`~repro.measurements.tdigest.TDigest`, so snapshots report
   p50/p95/max latency from bounded memory (the digest import is lazy
   to keep ``repro.obs`` free of import cycles).

Instrument names are dotted paths, coarse-to-fine:
``<subsystem>.<object>.<event>`` — e.g. ``probe.runner.retried``,
``ingest.jsonl.skipped``, ``quantile_cache.columnar.hits``. The full
naming scheme is documented in ``docs/methodology.md``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measurements.tdigest import TDigest


class Counter:
    """A monotonically increasing count (resettable to zero)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def reset(self) -> None:
        """Zero the count in place (the instrument object survives)."""
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge upward."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the gauge downward."""
        self.value -= amount

    def reset(self) -> None:
        """Zero the gauge in place."""
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Timer:
    """A duration/size histogram backed by a mergeable t-digest.

    ``observe`` takes seconds (or any non-negative magnitude); the
    snapshot reports count, total, and p50/p95/max from the digest.
    Observing zero is fine; the digest is created lazily on the first
    observation so building a registry costs nothing.

    Unlike counter/gauge updates, digest operations are guarded by a
    per-timer lock: the t-digest *mutates* internal centroid lists on
    both insert and quantile (it compresses lazily), so a telemetry
    scrape snapshotting quantiles while a pipeline thread observes
    would otherwise race on shared list state. Timers fire per stage or
    per probe — orders of magnitude rarer than counter ticks — so the
    lock is off every per-record path.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "max_value",
        "exemplar",
        "_digest",
        "_digest_lock",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        #: Largest observation so far (None before any observation).
        self.max_value: Optional[float] = None
        #: Trace context of the largest observation — the span id a
        #: caller attached via ``observe(..., exemplar=...)`` — so a
        #: slow outlier in a timer points straight at its slice in the
        #: Chrome trace export. None until an exemplar-bearing
        #: observation sets the maximum.
        self.exemplar: Optional[str] = None
        self._digest: Optional["TDigest"] = None
        self._digest_lock = threading.Lock()

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        """Record one observation (seconds for latency timers).

        ``exemplar`` optionally attaches a span id to the observation;
        the timer keeps the exemplar of its largest observation (the
        slow-shard pointer an operator actually wants).
        """
        self.count += 1
        self.total += value
        if self.max_value is None or value >= self.max_value:
            self.max_value = value
            if exemplar is not None:
                self.exemplar = exemplar
        with self._digest_lock:
            if self._digest is None:
                # Lazy: repro.obs must not import repro.measurements at
                # module load (measurements.io imports repro.obs back).
                from repro.measurements.tdigest import TDigest

                self._digest = TDigest()
            # The digest rejects non-positive weights, not values; but
            # a zero-duration stage is a legitimate observation, so
            # clamp nothing and add the value directly.
            self._digest.add(value)

    def time(self) -> "_TimerContext":
        """Context manager recording the block's wall-clock duration."""
        return _TimerContext(self)

    def quantile(self, percentile: float) -> Optional[float]:
        """Estimated percentile of the observations (None when empty)."""
        with self._digest_lock:
            if self._digest is None:
                return None
            return self._digest.quantile_or_none(percentile)

    def digest_state(self) -> Optional[dict]:
        """Mergeable digest state, or None before any observation.

        The state is what :meth:`merge_from` (and therefore
        :meth:`MetricsRegistry.merge`) consumes to fold one process's
        latency distribution into another's without losing quantiles.
        """
        with self._digest_lock:
            if self._digest is None:
                return None
            return self._digest.to_state()

    def merge_from(
        self,
        count: int,
        total: float,
        digest_state: Optional[dict] = None,
        max_value: Optional[float] = None,
        exemplar: Optional[str] = None,
    ) -> None:
        """Fold another timer's observations into this one.

        ``count``/``total`` add; when ``digest_state`` (from
        :meth:`digest_state`) is provided the centroid sketches merge,
        so quantiles over the union stay truthful. Without it only the
        count/total/mean are combined. The larger of the two maxima
        keeps its exemplar, so a merged registry still points at the
        globally slowest span.
        """
        self.count += int(count)
        self.total += float(total)
        if max_value is not None and (
            self.max_value is None or max_value >= self.max_value
        ):
            self.max_value = float(max_value)
            if exemplar is not None:
                self.exemplar = exemplar
        if not digest_state:
            return
        from repro.measurements.tdigest import TDigest

        incoming = TDigest.from_state(digest_state)
        with self._digest_lock:
            if self._digest is None:
                self._digest = incoming
            else:
                self._digest = self._digest.merge(incoming)

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the observations (None when empty)."""
        return self.total / self.count if self.count else None

    def reset(self) -> None:
        """Drop all observations in place."""
        self.count = 0
        self.total = 0.0
        self.max_value = None
        self.exemplar = None
        with self._digest_lock:
            self._digest = None

    def __repr__(self) -> str:
        return f"Timer({self.name}: n={self.count}, total={self.total:.6f}s)"


class _TimerContext:
    """``with timer.time():`` — observes the elapsed wall clock."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        import time

        self._timer.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Get-or-create home for every instrument in the process.

    Instrument creation is locked (idempotent across threads); the
    increment/observe paths are lock-free — a racing ``+=`` can at
    worst lose a tick, which is the standard trade for not serializing
    every hot-path event through a mutex.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instrument access (get-or-create, stable identity) ----------------

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first request)."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first request)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def timer(self, name: str) -> Timer:
        """The timer named ``name`` (created on first request)."""
        instrument = self._timers.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._timers.setdefault(name, Timer(name))
        return instrument

    def __iter__(self) -> Iterator[str]:
        yield from sorted(self._counters)
        yield from sorted(self._gauges)
        yield from sorted(self._timers)

    # -- snapshot / reset ---------------------------------------------------

    def snapshot(
        self, include_digests: bool = False
    ) -> Dict[str, Dict[str, object]]:
        """JSON-compatible dump of every instrument's current state.

        The instrument maps are materialized under the creation lock so
        a snapshot racing a get-or-create on another thread never
        iterates a mutating dict; individual values are then read
        lock-free (a torn counter read costs at most one tick, the same
        trade the increment path makes).

        ``include_digests=True`` additionally embeds each observed
        timer's raw t-digest state under a ``"digest"`` key, making the
        snapshot losslessly mergeable via :meth:`merge` — the form a
        worker process ships back to its parent. Renderers ignore the
        extra key, so a digest-bearing snapshot is a strict superset of
        the plain one.
        """
        with self._lock:
            counter_items = sorted(self._counters.items())
            gauge_items = sorted(self._gauges.items())
            timer_items = sorted(self._timers.items())
        counters = {
            name: instrument.value for name, instrument in counter_items
        }
        gauges = {
            name: instrument.value for name, instrument in gauge_items
        }
        timers: Dict[str, object] = {}
        for name, instrument in timer_items:
            entry: Dict[str, object] = {
                "count": instrument.count,
                "total_s": instrument.total,
            }
            if instrument.count:
                entry["mean_s"] = instrument.mean
                entry["p50_s"] = instrument.quantile(50.0)
                entry["p95_s"] = instrument.quantile(95.0)
                entry["max_s"] = instrument.quantile(100.0)
                # Emitted only when set, so exemplar-free snapshots
                # keep their pre-existing shape.
                if instrument.exemplar is not None:
                    entry["exemplar"] = instrument.exemplar
                if include_digests:
                    state = instrument.digest_state()
                    if state is not None:
                        entry["digest"] = state
            timers[name] = entry
        return {"counters": counters, "gauges": gauges, "timers": timers}

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's snapshot into this one.

        The multi-run / multi-worker aggregation API: a worker process
        (or a previous run) snapshots its registry and the parent merges
        it here. Semantics per instrument kind:

        * **counters** add;
        * **gauges** last-write-wins (the incoming value replaces the
          local one);
        * **timers** add count/total and merge their t-digest state
          when present, so p50/p95/max over the union stay truthful —
          take the snapshot with ``snapshot(include_digests=True)`` to
          ship digests. Digest-free snapshots still merge, combining
          count/total/mean only.

        Merging is associative; counters and timer count/total are
        exactly commutative, and merged timer quantiles agree to
        t-digest sketch accuracy regardless of merge order. Instruments
        absent locally are created, so merging into a fresh registry
        reproduces the source.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, entry in snapshot.get("timers", {}).items():
            raw_max = entry.get("max_s")
            self.timer(name).merge_from(
                int(entry.get("count", 0)),
                float(entry.get("total_s", 0.0)),
                entry.get("digest"),
                max_value=None if raw_max is None else float(raw_max),
                exemplar=entry.get("exemplar"),
            )

    def reset(self) -> None:
        """Zero every instrument in place.

        Module-level references held by instrumented code stay valid:
        the instruments themselves survive, only their state clears.
        """
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for timer in self._timers.values():
                timer.reset()

    # -- rendering ----------------------------------------------------------

    def render_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        import json

        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """The snapshot as Prometheus text exposition (format 0.0.4).

        See :mod:`repro.obs.exposition` for the name-mapping rules.
        The import is lazy so the registry module itself stays free of
        intra-package import edges.
        """
        from .exposition import render_prometheus

        return render_prometheus(self)

    def render_text(self) -> str:
        """Human-readable one-line-per-instrument rendering."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"counter {name} = {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge   {name} = {value}")
        for name, stats in snap["timers"].items():
            if stats["count"]:
                lines.append(
                    f"timer   {name}: n={stats['count']} "
                    f"total={stats['total_s']:.6f}s "
                    f"p50={stats['p50_s']:.6f}s "
                    f"p95={stats['p95_s']:.6f}s "
                    f"max={stats['max_s']:.6f}s"
                )
            else:
                lines.append(f"timer   {name}: n=0")
        return "\n".join(lines)


#: The process-wide default registry. Subsystems bind instruments off
#: this at import time; tests may also build private registries.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name)


def timer(name: str) -> Timer:
    """Get-or-create a timer on the default registry."""
    return REGISTRY.timer(name)


def snapshot() -> Dict[str, Dict[str, object]]:
    """Snapshot the default registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Zero the default registry in place."""
    REGISTRY.reset()
