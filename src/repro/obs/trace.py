"""Chrome trace-event export for recorded span trees.

Converts a :class:`~repro.obs.spans.TraceRecorder`'s records into the
Trace Event Format JSON that Perfetto and ``chrome://tracing`` load
directly, so any pipeline run dumped with ``--trace-out trace.json``
opens as a stage flamegraph: one complete ("ph": "X") event per span,
nested by start/duration on the thread track it ran on.

Only the stdlib is involved, and only the *document* shape matters:

* ``ts``/``dur`` are microseconds (the format's unit) relative to the
  recorder's epoch;
* ``pid`` is the real process id, ``tid`` the recording thread's id,
  with metadata events naming the process and each thread;
* span ``fields``, the slash-joined ``path``/``depth``, and the trace
  context (``trace_id``/``span_id``/``parent_id``) ride in ``args``,
  so clicking a slice in the viewer shows the same context a DEBUG
  span log line carries — and shard slices adopted from forked
  workers (see :meth:`~repro.obs.spans.TraceRecorder.adopt`) are
  correlated to their parent fan-out span by shared trace id.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Union

from repro.fsutil import atomic_write

from .spans import TraceRecorder

_PathLike = Union[str, "os.PathLike[str]"]


def to_chrome_trace(recorder: TraceRecorder) -> Dict[str, object]:
    """The recorder's spans as a Trace Event Format document (dict)."""
    pid = os.getpid()
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "iqb pipeline"},
        }
    ]
    named_threads = set()
    for record in recorder.records():
        if record.thread_id not in named_threads:
            named_threads.add(record.thread_id)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": record.thread_id,
                    "args": {"name": record.thread_name},
                }
            )
        args: Dict[str, object] = {"path": record.path, "depth": record.depth}
        if record.trace_id:
            args["trace_id"] = record.trace_id
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
        for key, value in record.fields.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append(
            {
                "name": record.name,
                "cat": "span",
                "ph": "X",
                "ts": round(record.start_s * 1e6, 3),
                "dur": round(record.duration_s * 1e6, 3),
                "pid": pid,
                "tid": record.thread_id,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"started_unix": recorder.started_unix},
    }


def write_chrome_trace(recorder: TraceRecorder, path: _PathLike) -> int:
    """Write the trace JSON to ``path``; returns the span-event count."""
    document = to_chrome_trace(recorder)
    atomic_write(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return sum(
        1 for event in document["traceEvents"] if event.get("ph") == "X"
    )
