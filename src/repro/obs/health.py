"""The barometer's self-health monitor: is the *barometer* broken?

The IQB score is only as trustworthy as the third-party measurement
pipelines feeding it. This module watches those pipelines the way the
pipelines watch the internet:

* **Freshness** — seconds since the last accepted measurement per
  (region, dataset) cell, fed by :class:`~repro.measurements.columnar.
  ColumnarStore` / :class:`~repro.measurements.sketchplane.SketchPlane`
  arrival hooks and the probe runner.
* **Completeness** — observed vs expected sample counts per closed
  monitor window (expected counts are declared, or learned from the
  trailing windows' median).
* **SLO burn rates** — the declarative rules of :mod:`repro.obs.slo`,
  sampled every window close / tick and folded into OK/WARN/PAGE.
* **Score drift** — a per-region EWMA-baseline CUSUM over successive
  streamed scores, distinguishing "the internet got worse" (scores
  shifted while data stayed fresh) from "a dataset went stale" (the
  same shift with a feeding dataset past its freshness threshold,
  classified ``stale_data`` instead of ``score_shift``).

One :class:`HealthMonitor` instance is installed process-wide (the
same pattern as the span trace recorder), so hot paths pay exactly one
``is None`` check when health tracking is off. All evaluation is
driven by *data time*: the monitor advances an ``as_of`` watermark
from the timestamps it is handed, and by default (``clock=None``)
evaluates reports at that watermark — replaying a campaign file
yesterday and today produces byte-identical reports. A live deployment
with wall-clock measurement timestamps may pass ``clock=time.time`` to
let freshness age between arrivals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .logs import get_logger
from .registry import REGISTRY, counter, gauge
from .slo import HealthReport, SLOEvaluator, SLORule, worst_state

_logger = get_logger(__name__)

_DRIFT_EVENTS = counter("score.drift.events")
_DRIFT_STALE = counter("score.drift.stale_suppressed")
_STALE_CELLS = gauge("health.cells.stale")
_TRACKED_CELLS = gauge("health.cells.tracked")
_WORST_FRESHNESS = gauge("health.freshness.worst_s")

#: Fallback staleness threshold (seconds of data time) when no
#: freshness rule covers a dataset — used both for the quality
#: section's ``stale`` list and for drift classification.
DEFAULT_STALE_AFTER_S = 3600.0


@dataclass(frozen=True)
class DriftConfig:
    """Tuning for the per-region score-drift detector.

    ``band`` is in score units (S_IQB is in [0, 1]); the CUSUM pages
    once the accumulated deviation beyond ``slack`` crosses it. The
    EWMA baseline adapts with ``alpha`` so slow seasonal movement is
    absorbed while a step change accumulates. ``min_points`` windows
    must be seen before a region can fire (the baseline needs to
    settle).
    """

    alpha: float = 0.25
    slack: float = 0.02
    band: float = 0.15
    min_points: int = 4


@dataclass(frozen=True)
class DriftEvent:
    """One detected score shift (or its stale-data reclassification)."""

    region: str
    at: float
    score: float
    baseline: float
    cusum: float
    direction: str  # "down" | "up"
    kind: str  # "score_shift" | "stale_data"
    stale_datasets: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "region": self.region,
            "at": self.at,
            "score": round(self.score, 6),
            "baseline": round(self.baseline, 6),
            "cusum": round(self.cusum, 6),
            "direction": self.direction,
            "kind": self.kind,
            "stale_datasets": list(self.stale_datasets),
        }


class _RegionDrift:
    __slots__ = ("ewma", "pos", "neg", "points")

    def __init__(self, score: float) -> None:
        self.ewma = score
        self.pos = 0.0
        self.neg = 0.0
        self.points = 1


class DriftDetector:
    """EWMA-baseline CUSUM over successive per-region scores."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config or DriftConfig()
        self._regions: Dict[str, _RegionDrift] = {}

    def update(
        self,
        region: str,
        score: float,
        at: float,
        stale_datasets: Sequence[str] = (),
    ) -> Optional[DriftEvent]:
        """Fold one window's score in; return an event if drift fired.

        After an event the region re-baselines at the new level (the
        CUSUM resets and the EWMA jumps to ``score``), so a sustained
        shift fires once instead of every following window.
        """
        cfg = self.config
        state = self._regions.get(region)
        if state is None:
            self._regions[region] = _RegionDrift(score)
            return None
        deviation = score - state.ewma
        state.points += 1
        event: Optional[DriftEvent] = None
        if state.points > cfg.min_points:
            state.pos = max(0.0, state.pos + deviation - cfg.slack)
            state.neg = max(0.0, state.neg - deviation - cfg.slack)
            cusum = max(state.pos, state.neg)
            if cusum >= cfg.band:
                stale = tuple(sorted(stale_datasets))
                event = DriftEvent(
                    region=region,
                    at=at,
                    score=score,
                    baseline=state.ewma,
                    cusum=cusum,
                    direction="down" if state.neg >= state.pos else "up",
                    kind="stale_data" if stale else "score_shift",
                    stale_datasets=stale,
                )
                state.pos = 0.0
                state.neg = 0.0
                state.ewma = score
                return event
        state.ewma += cfg.alpha * deviation
        return None


class QualityTracker:
    """Per-(region, dataset) freshness and completeness accounting."""

    def __init__(
        self, expected: Optional[Mapping[str, int]] = None
    ) -> None:
        """Args:
            expected: declared per-dataset expected sample counts per
                window; datasets absent here learn their expectation
                from the trailing windows' median instead.
        """
        self.expected = dict(expected or {})
        self._last: Dict[Tuple[str, str], float] = {}
        self._counts: Dict[Tuple[str, str], int] = {}
        self._history: Dict[Tuple[str, str], Deque[int]] = {}
        self._ratios: Dict[Tuple[str, str], Optional[float]] = {}

    def record_arrival(
        self, region: str, dataset: str, at: float, count: bool = True
    ) -> None:
        """One accepted measurement landed (hot path: a few dict ops).

        ``count=False`` advances freshness only — for notifiers that
        sit *above* a store-level hook (the probe runner over a sketch
        sink) and must not double-book the completeness sample.
        """
        key = (region, dataset)
        last = self._last
        previous = last.get(key)
        if previous is None or at > previous:
            last[key] = at
        if count:
            self._counts[key] = self._counts.get(key, 0) + 1

    def close_window(self) -> None:
        """Roll the open window's counts into completeness ratios.

        Every cell ever seen gets a ratio this window — a cell with
        zero arrivals scores 0.0 against its expectation, which is
        exactly the "dataset went dark" signal. Expectations come from
        the declared ``expected`` map or the median of up to 8 trailing
        window counts (computed *before* this window's count joins the
        history, so a dark window cannot drag its own expectation
        down).
        """
        counts = self._counts
        for key in set(self._history) | set(counts):
            observed = counts.get(key, 0)
            expected = self.expected.get(key[1])
            history = self._history.get(key)
            if expected is None and history:
                ordered = sorted(history)
                expected = ordered[len(ordered) // 2]
            if expected:
                self._ratios[key] = min(1.0, observed / expected)
            else:
                self._ratios[key] = None
            if history is None:
                history = self._history[key] = deque(maxlen=8)
            history.append(observed)
        self._counts = {}

    def cells(self) -> Tuple[Tuple[str, str], ...]:
        """Every (region, dataset) cell seen so far, sorted."""
        return tuple(sorted(self._last))

    def freshness(self, at: float) -> Dict[Tuple[str, str], float]:
        """Seconds since each cell's last accepted measurement."""
        return {key: at - last for key, last in self._last.items()}

    def completeness(self) -> Dict[Tuple[str, str], Optional[float]]:
        """Last closed window's observed/expected ratio per cell."""
        return dict(self._ratios)

    def stale_by_region(
        self, at: float, threshold_for: "Any"
    ) -> Dict[str, List[str]]:
        """region -> datasets whose age exceeds their threshold."""
        stale: Dict[str, List[str]] = {}
        for (region, dataset), last in self._last.items():
            if at - last > threshold_for(dataset):
                stale.setdefault(region, []).append(dataset)
        for datasets in stale.values():
            datasets.sort()
        return stale


class HealthMonitor:
    """Composes quality tracking, SLO evaluation, and drift detection.

    The pipeline feeds it through three verbs:

    * :meth:`record_arrival` — per accepted measurement (hooked into
      the columnar store, the sketch plane, and the probe runner);
    * :meth:`window_closed` — per closed monitor window, with the
      window's region scores (drives completeness, drift, and an SLO
      sampling tick);
    * :meth:`tick` — an explicit SLO sampling instant for paths that
      close no windows (the adaptive allocator, watch loops).

    :meth:`evaluate` then folds everything into a deterministic
    :class:`~repro.obs.slo.HealthReport`.
    """

    def __init__(
        self,
        rules: Sequence[SLORule] = (),
        clock: Optional["Any"] = None,
        expected: Optional[Mapping[str, int]] = None,
        drift: Optional[DriftConfig] = None,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
    ) -> None:
        """Args:
            rules: the declarative SLO rule set to evaluate.
            clock: ``None`` (default) evaluates at the data-time
                watermark — fully deterministic replay; pass
                ``time.time`` for live wall-clock aging.
            expected: declared expected per-dataset counts per window
                (see :class:`QualityTracker`).
            drift: score-drift detector tuning.
            stale_after_s: staleness fallback for datasets no
                freshness rule covers.
        """
        self.rules: Tuple[SLORule, ...] = tuple(rules)
        self.clock = clock
        self.stale_after_s = float(stale_after_s)
        self.quality = QualityTracker(expected)
        self.drift = DriftDetector(drift)
        self.evaluator = SLOEvaluator(self.rules)
        self._as_of: Optional[float] = None
        self._drift_events: Deque[DriftEvent] = deque(maxlen=100)
        self._last_counter_values: Dict[str, Tuple[int, int]] = {}
        self._freshness_thresholds: Dict[Optional[str], float] = {}
        for rule in self.rules:
            if rule.signal == "freshness" and rule.threshold_s:
                existing = self._freshness_thresholds.get(rule.dataset)
                if existing is None or rule.threshold_s < existing:
                    self._freshness_thresholds[rule.dataset] = (
                        rule.threshold_s
                    )

    # -- time ---------------------------------------------------------------

    @property
    def as_of(self) -> Optional[float]:
        """The data-time watermark (max timestamp seen so far)."""
        return self._as_of

    def _advance(self, at: float) -> float:
        if self._as_of is None or at > self._as_of:
            self._as_of = at
        return at

    def now(self, at: Optional[float] = None) -> float:
        """Resolve an evaluation instant.

        Explicit ``at`` wins; otherwise the data watermark, lifted to
        the wall clock when one was configured and it is ahead.
        """
        if at is not None:
            return at
        watermark = self._as_of if self._as_of is not None else 0.0
        if self.clock is not None:
            return max(float(self.clock()), watermark)
        return watermark

    def stale_threshold(self, dataset: str) -> float:
        """The freshness budget for one dataset (rule or fallback)."""
        thresholds = self._freshness_thresholds
        specific = thresholds.get(dataset)
        if specific is not None:
            return specific
        broad = thresholds.get(None)
        if broad is not None:
            return broad
        return self.stale_after_s

    # -- ingestion hooks ----------------------------------------------------

    def record_arrival(
        self, region: str, dataset: str, at: float, count: bool = True
    ) -> None:
        """One accepted measurement (hot path)."""
        self.quality.record_arrival(region, dataset, at, count)
        previous = self._as_of
        if previous is None or at > previous:
            self._as_of = at

    def window_closed(
        self,
        window_start: float,
        window_end: float,
        scores: Mapping[str, Optional[float]],
    ) -> List[DriftEvent]:
        """One monitor window closed with the given per-region scores.

        Rolls completeness, runs the drift detector over every scored
        region (cross-referencing staleness for classification), and
        samples the SLO rules at the window's end.
        """
        at = self._advance(float(window_end))
        self.quality.close_window()
        stale_by_region = self.quality.stale_by_region(
            at, self.stale_threshold
        )
        events: List[DriftEvent] = []
        for region in sorted(scores):
            score = scores[region]
            if score is None:
                continue
            event = self.drift.update(
                region, score, at, stale_by_region.get(region, ())
            )
            if event is None:
                continue
            events.append(event)
            self._drift_events.append(event)
            if event.kind == "stale_data":
                _DRIFT_STALE.inc()
            else:
                _DRIFT_EVENTS.inc()
            _logger.warning(
                "score drift detected",
                extra={
                    "ctx": {
                        "region": event.region,
                        "kind": event.kind,
                        "score": round(event.score, 4),
                        "baseline": round(event.baseline, 4),
                        "stale": list(event.stale_datasets),
                    }
                },
            )
        self.tick(at)
        return events

    def tick(self, at: Optional[float] = None) -> None:
        """Sample every SLO rule's signal at one instant."""
        instant = self._advance(self.now(at))
        freshness = self.quality.freshness(instant)
        completeness = self.quality.completeness()
        for rule in self.rules:
            if rule.signal == "freshness":
                self._sample_freshness(rule, freshness, instant)
            elif rule.signal == "completeness":
                self._sample_completeness(rule, completeness, instant)
            elif rule.signal == "error_rate":
                self._sample_error_rate(rule, instant)
            elif rule.signal == "latency":
                self._sample_latency(rule, instant)

    def _matches(
        self, rule: SLORule, region: str, dataset: str
    ) -> bool:
        if rule.dataset is not None and rule.dataset != dataset:
            return False
        if rule.region is not None and rule.region != region:
            return False
        return True

    def _sample_freshness(
        self,
        rule: SLORule,
        freshness: Mapping[Tuple[str, str], float],
        at: float,
    ) -> None:
        worst: Optional[Tuple[float, Tuple[str, str]]] = None
        for key, age in freshness.items():
            if not self._matches(rule, *key):
                continue
            if worst is None or age > worst[0]:
                worst = (age, key)
        if worst is None:
            return  # no matching cell has reported yet: no evidence
        age, (region, dataset) = worst
        bad = age > (rule.threshold_s or 0.0)
        detail = (
            f"{region}/{dataset} age {age:.0f}s > {rule.threshold_s:.0f}s"
            if bad
            else ""
        )
        self.evaluator.sample(rule.name, bad, at, detail)

    def _sample_completeness(
        self,
        rule: SLORule,
        completeness: Mapping[Tuple[str, str], Optional[float]],
        at: float,
    ) -> None:
        worst: Optional[Tuple[float, Tuple[str, str]]] = None
        for key, ratio in completeness.items():
            if ratio is None or not self._matches(rule, *key):
                continue
            if worst is None or ratio < worst[0]:
                worst = (ratio, key)
        if worst is None:
            return
        ratio, (region, dataset) = worst
        bad = ratio < rule.min_ratio
        detail = (
            f"{region}/{dataset} completeness {ratio:.2f} < "
            f"{rule.min_ratio:.2f}"
            if bad
            else ""
        )
        self.evaluator.sample(rule.name, bad, at, detail)

    def _sample_error_rate(self, rule: SLORule, at: float) -> None:
        bad_total = int(REGISTRY.counter(rule.bad_counter or "").value)
        all_total = int(REGISTRY.counter(rule.total_counter or "").value)
        prev_bad, prev_all = self._last_counter_values.get(
            rule.name, (0, 0)
        )
        self._last_counter_values[rule.name] = (bad_total, all_total)
        delta_bad = bad_total - prev_bad
        delta_all = all_total - prev_all
        if delta_all <= 0:
            return  # nothing processed since the last tick: no evidence
        fraction = delta_bad / delta_all
        bad = fraction > rule.error_budget
        detail = (
            f"{rule.bad_counter}/{rule.total_counter} interval error "
            f"rate {fraction:.4f} > budget {rule.error_budget:.4f}"
            if bad
            else ""
        )
        self.evaluator.sample(rule.name, bad, at, detail)

    def _sample_latency(self, rule: SLORule, at: float) -> None:
        instrument = REGISTRY.timer(rule.timer or "")
        observed = instrument.quantile(rule.percentile)
        if observed is None:
            return
        bad = observed > (rule.threshold_s or 0.0)
        detail = (
            f"{rule.timer} p{rule.percentile:g} {observed * 1e3:.1f}ms > "
            f"{(rule.threshold_s or 0.0) * 1e3:.1f}ms"
            if bad
            else ""
        )
        self.evaluator.sample(rule.name, bad, at, detail)

    # -- evaluation ---------------------------------------------------------

    def drift_events(self) -> Tuple[DriftEvent, ...]:
        """Recent drift events (bounded ring, oldest first)."""
        return tuple(self._drift_events)

    def quality_section(self, at: float) -> Dict[str, Any]:
        """The report's data-quality block at instant ``at``."""
        freshness: Dict[str, Dict[str, float]] = {}
        for (region, dataset), age in self.quality.freshness(at).items():
            freshness.setdefault(region, {})[dataset] = round(age, 3)
        completeness: Dict[str, Dict[str, Optional[float]]] = {}
        for (region, dataset), ratio in self.quality.completeness().items():
            completeness.setdefault(region, {})[dataset] = (
                None if ratio is None else round(ratio, 4)
            )
        stale = self.quality.stale_by_region(at, self.stale_threshold)
        return {
            "as_of": self._as_of,
            "freshness_s": freshness,
            "completeness": completeness,
            "stale": {
                region: datasets for region, datasets in stale.items()
            },
        }

    def evaluate(self, at: Optional[float] = None) -> HealthReport:
        """The deterministic health verdict at ``at`` (or the watermark).

        Read-only apart from publishing summary gauges — safe to call
        from a telemetry scrape without perturbing the sample history.
        """
        instant = self.now(at)
        statuses = self.evaluator.statuses(instant)
        freshness = self.quality.freshness(instant)
        stale = self.quality.stale_by_region(instant, self.stale_threshold)
        _TRACKED_CELLS.set(float(len(freshness)))
        _STALE_CELLS.set(
            float(sum(len(datasets) for datasets in stale.values()))
        )
        _WORST_FRESHNESS.set(max(freshness.values(), default=0.0))
        return HealthReport(
            generated_at=instant,
            status=worst_state([status.state for status in statuses]),
            rules=statuses,
            quality=self.quality_section(instant),
            drift=tuple(
                event.to_dict() for event in self._drift_events
            ),
        )

    def render_prometheus(self, at: Optional[float] = None) -> str:
        """Labeled health families for the ``/metrics`` exposition.

        Region and dataset names are operator-supplied strings, so the
        label values go through the 0.0.4 escaping rules — a region
        named ``ru"ral\\nnorth`` must not corrupt the exposition.
        """
        from .exposition import (
            escape_help,
            format_labels,
            prometheus_name,
        )

        instant = self.now(at)
        lines: List[str] = []
        name = prometheus_name("health.freshness") + "_seconds"
        lines.append(
            f"# HELP {name} "
            f"{escape_help('Seconds since last accepted measurement')}"
        )
        lines.append(f"# TYPE {name} gauge")
        for (region, dataset), age in sorted(
            self.quality.freshness(instant).items()
        ):
            labels = format_labels(
                {"region": region, "dataset": dataset}
            )
            lines.append(f"{name}{labels} {age!r}")
        name = prometheus_name("health.completeness") + "_ratio"
        lines.append(
            f"# HELP {name} "
            f"{escape_help('Observed/expected samples, last window')}"
        )
        lines.append(f"# TYPE {name} gauge")
        for (region, dataset), ratio in sorted(
            self.quality.completeness().items()
        ):
            if ratio is None:
                continue
            labels = format_labels(
                {"region": region, "dataset": dataset}
            )
            lines.append(f"{name}{labels} {ratio!r}")
        name = prometheus_name("slo.burn_rate")
        lines.append(
            f"# HELP {name} "
            f"{escape_help('SLO burn rate per rule and window')}"
        )
        lines.append(f"# TYPE {name} gauge")
        for status in self.evaluator.statuses(instant):
            for window, burn in (
                ("fast", status.burn_fast),
                ("slow", status.burn_slow),
            ):
                labels = format_labels(
                    {"rule": status.name, "window": window}
                )
                lines.append(f"{name}{labels} {burn!r}")
        return "\n".join(lines) + "\n" if lines else ""


#: The process-wide health monitor, or None when health tracking is
#: off. A single ``is None`` check per arrival is the entire cost of
#: the disabled path (the same pattern as the span trace recorder).
_health_monitor: Optional[HealthMonitor] = None


def install_health_monitor(monitor: HealthMonitor) -> None:
    """Make ``monitor`` the process-wide health sink (replaces any)."""
    global _health_monitor
    _health_monitor = monitor


def uninstall_health_monitor() -> Optional[HealthMonitor]:
    """Stop health tracking; returns the monitor that was active."""
    global _health_monitor
    monitor = _health_monitor
    _health_monitor = None
    return monitor


def get_health_monitor() -> Optional[HealthMonitor]:
    """The active health monitor, if any."""
    return _health_monitor


def default_rules(
    datasets: Sequence[str],
    window_s: float,
    scoring_budget_s: float = 0.5,
) -> Tuple[SLORule, ...]:
    """A sensible built-in rule set for ``iqb health`` with no file.

    Per-dataset freshness budgets of two reporting windows, a
    completeness floor, an ingest error-rate objective over the JSONL
    reader's counters, and a scoring-latency budget — enough that the
    subcommand is useful out of the box, while a rule file replaces
    the set wholesale.
    """
    rules: List[SLORule] = [
        SLORule(
            name=f"freshness-{dataset}",
            signal="freshness",
            dataset=dataset,
            target=0.95,
            threshold_s=2.0 * window_s,
            fast_window_s=2.0 * window_s,
            slow_window_s=6.0 * window_s,
        )
        for dataset in sorted(set(datasets))
    ]
    rules.append(
        SLORule(
            name="completeness",
            signal="completeness",
            target=0.9,
            min_ratio=0.5,
            fast_window_s=2.0 * window_s,
            slow_window_s=6.0 * window_s,
        )
    )
    rules.append(
        SLORule(
            name="ingest-errors",
            signal="error_rate",
            target=0.99,
            bad_counter="ingest.jsonl.skipped",
            total_counter="ingest.jsonl.lines",
            fast_window_s=2.0 * window_s,
            slow_window_s=6.0 * window_s,
        )
    )
    rules.append(
        SLORule(
            name="scoring-latency",
            signal="latency",
            target=0.95,
            timer="score.latency",
            threshold_s=scoring_budget_s,
            percentile=95.0,
            fast_window_s=2.0 * window_s,
            slow_window_s=6.0 * window_s,
        )
    )
    return tuple(rules)


#: The serving layer's route labels (see repro.serve.http.ServeServer)
#: — the timers the default serve latency rules watch.
SERVE_ROUTES: Tuple[str, ...] = (
    "/v1/scores",
    "/v1/scores/:region",
    "/v1/national",
    "/v1/config",
)


def serve_default_rules(
    routes: Sequence[str] = SERVE_ROUTES,
    latency_budget_s: float = 0.25,
    percentile: float = 99.0,
    window_s: float = 300.0,
) -> Tuple[SLORule, ...]:
    """Latency SLO rules for the ``iqb serve`` query endpoints.

    One burn-rate rule per route label over the per-endpoint
    ``http.latency.<route>`` timer the telemetry handler maintains
    (the rules read the process registry, which is where the serve
    CLI's default server observes). The p99 budget defaults to 250ms
    — generous for a cache hit, tight enough that sustained cache-miss
    storms or a wedged plane lock burn through it and page.
    """
    return tuple(
        SLORule(
            name=f"serve-latency-{route}",
            signal="latency",
            target=0.99,
            timer=f"http.latency.{route}",
            threshold_s=latency_budget_s,
            percentile=percentile,
            fast_window_s=window_s,
            slow_window_s=6.0 * window_s,
        )
        for route in routes
    )
