"""Observability for the barometer pipeline: metrics, logs, spans — and
their export half: exposition, telemetry HTTP, traces, manifests.

The operational-telemetry layer every subsystem reports into:

* :mod:`.registry` — process-wide counters / gauges / timers with
  snapshot, in-place reset, and JSON/text renderers;
* :mod:`.logs` — structured logging setup (human text or JSONL),
  wired to the CLI's ``--log-level`` / ``--log-json`` flags;
* :mod:`.spans` — nested context managers timing pipeline stages,
  with trace-context propagation (trace/span/parent ids that survive
  process forks) and an installable :class:`TraceRecorder` capturing
  every completed span;
* :mod:`.slo` — declarative data-quality SLO rules with sliding
  multi-window burn-rate evaluation (OK / WARN / PAGE);
* :mod:`.health` — the barometer health monitor: per-(region, dataset)
  freshness and completeness tracking, SLO evaluation into a
  deterministic :class:`HealthReport`, and score-drift detection that
  distinguishes real score shifts from stale datasets;

and the layer that gets those signals *out of the process*:

* :mod:`.exposition` — Prometheus/OpenMetrics text rendering;
* :mod:`.httpd` — the ``/metrics`` / ``/metrics.json`` / ``/healthz``
  / ``/slo`` / ``/quality`` telemetry endpoint for long-running
  campaigns;
* :mod:`.trace` — Chrome trace-event JSON export (Perfetto-loadable
  stage flamegraphs);
* :mod:`.manifest` — per-run provenance manifests and their diffing.

Import discipline: this package depends only on the stdlib at import
time (the t-digest behind :class:`~repro.obs.registry.Timer` and the
package version referenced by manifests load lazily), so any repro
module may import it without cycles.
"""

from __future__ import annotations

from .exposition import (
    escape_help,
    escape_label_value,
    format_labels,
    prometheus_name,
    render_prometheus,
)
from .health import (
    DriftConfig,
    DriftDetector,
    DriftEvent,
    HealthMonitor,
    QualityTracker,
    default_rules,
    get_health_monitor,
    install_health_monitor,
    uninstall_health_monitor,
)
from .httpd import TelemetryServer
from .logs import (
    JsonlFormatter,
    TextFormatter,
    get_logger,
    parse_level,
    setup_logging,
)
from .manifest import (
    RunContext,
    RunManifest,
    diff_manifests,
    file_digest,
    find_manifests,
    render_diff,
)
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    reset,
    snapshot,
    timer,
)
from .slo import (
    HealthReport,
    SLOEvaluator,
    SLORule,
    SLOStatus,
    load_rules,
    worst_state,
)
from .spans import (
    Span,
    SpanRecord,
    TraceRecorder,
    current_span,
    current_trace_context,
    get_trace_recorder,
    install_trace_recorder,
    set_remote_parent,
    span,
    uninstall_trace_recorder,
)
from .trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "REGISTRY",
    "Counter",
    "DriftConfig",
    "DriftDetector",
    "DriftEvent",
    "Gauge",
    "HealthMonitor",
    "HealthReport",
    "JsonlFormatter",
    "MetricsRegistry",
    "QualityTracker",
    "RunContext",
    "RunManifest",
    "SLOEvaluator",
    "SLORule",
    "SLOStatus",
    "Span",
    "SpanRecord",
    "TelemetryServer",
    "TextFormatter",
    "Timer",
    "TraceRecorder",
    "counter",
    "current_span",
    "current_trace_context",
    "default_rules",
    "diff_manifests",
    "escape_help",
    "escape_label_value",
    "file_digest",
    "find_manifests",
    "format_labels",
    "gauge",
    "get_health_monitor",
    "get_logger",
    "get_trace_recorder",
    "install_health_monitor",
    "install_trace_recorder",
    "load_rules",
    "parse_level",
    "prometheus_name",
    "render_diff",
    "render_prometheus",
    "reset",
    "set_remote_parent",
    "setup_logging",
    "snapshot",
    "span",
    "timer",
    "to_chrome_trace",
    "uninstall_health_monitor",
    "uninstall_trace_recorder",
    "worst_state",
    "write_chrome_trace",
]
