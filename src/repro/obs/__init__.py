"""Observability for the barometer pipeline: metrics, logs, spans.

The operational-telemetry layer every subsystem reports into:

* :mod:`.registry` — process-wide counters / gauges / timers with
  snapshot, in-place reset, and JSON/text renderers;
* :mod:`.logs` — structured logging setup (human text or JSONL),
  wired to the CLI's ``--log-level`` / ``--log-json`` flags;
* :mod:`.spans` — nested context managers timing pipeline stages.

Import discipline: this package depends only on the stdlib at import
time (the t-digest behind :class:`~repro.obs.registry.Timer` loads
lazily), so any repro module may import it without cycles.
"""

from __future__ import annotations

from .logs import (
    JsonlFormatter,
    TextFormatter,
    get_logger,
    parse_level,
    setup_logging,
)
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    reset,
    snapshot,
    timer,
)
from .spans import Span, current_span, span

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "JsonlFormatter",
    "MetricsRegistry",
    "Span",
    "TextFormatter",
    "Timer",
    "counter",
    "current_span",
    "gauge",
    "get_logger",
    "parse_level",
    "reset",
    "setup_logging",
    "snapshot",
    "span",
    "timer",
]
