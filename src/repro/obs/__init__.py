"""Observability for the barometer pipeline: metrics, logs, spans — and
their export half: exposition, telemetry HTTP, traces, manifests.

The operational-telemetry layer every subsystem reports into:

* :mod:`.registry` — process-wide counters / gauges / timers with
  snapshot, in-place reset, and JSON/text renderers;
* :mod:`.logs` — structured logging setup (human text or JSONL),
  wired to the CLI's ``--log-level`` / ``--log-json`` flags;
* :mod:`.spans` — nested context managers timing pipeline stages,
  with an installable :class:`TraceRecorder` capturing every
  completed span;

and the layer that gets those signals *out of the process*:

* :mod:`.exposition` — Prometheus/OpenMetrics text rendering;
* :mod:`.httpd` — the ``/metrics`` / ``/metrics.json`` / ``/healthz``
  telemetry endpoint for long-running campaigns;
* :mod:`.trace` — Chrome trace-event JSON export (Perfetto-loadable
  stage flamegraphs);
* :mod:`.manifest` — per-run provenance manifests and their diffing.

Import discipline: this package depends only on the stdlib at import
time (the t-digest behind :class:`~repro.obs.registry.Timer` and the
package version referenced by manifests load lazily), so any repro
module may import it without cycles.
"""

from __future__ import annotations

from .exposition import prometheus_name, render_prometheus
from .httpd import TelemetryServer
from .logs import (
    JsonlFormatter,
    TextFormatter,
    get_logger,
    parse_level,
    setup_logging,
)
from .manifest import (
    RunContext,
    RunManifest,
    diff_manifests,
    file_digest,
    find_manifests,
    render_diff,
)
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    reset,
    snapshot,
    timer,
)
from .spans import (
    Span,
    SpanRecord,
    TraceRecorder,
    current_span,
    get_trace_recorder,
    install_trace_recorder,
    span,
    uninstall_trace_recorder,
)
from .trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "JsonlFormatter",
    "MetricsRegistry",
    "RunContext",
    "RunManifest",
    "Span",
    "SpanRecord",
    "TelemetryServer",
    "TextFormatter",
    "Timer",
    "TraceRecorder",
    "counter",
    "current_span",
    "diff_manifests",
    "file_digest",
    "find_manifests",
    "gauge",
    "get_logger",
    "get_trace_recorder",
    "install_trace_recorder",
    "parse_level",
    "prometheus_name",
    "render_diff",
    "render_prometheus",
    "reset",
    "setup_logging",
    "snapshot",
    "span",
    "timer",
    "to_chrome_trace",
    "uninstall_trace_recorder",
    "write_chrome_trace",
]
