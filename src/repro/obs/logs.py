"""Structured logging setup for the barometer pipeline.

All of :mod:`repro` logs through the standard :mod:`logging` hierarchy
under the ``"repro"`` root, so library users keep full control: nothing
here installs handlers at import time, and an application that already
configures logging sees repro's events like any other library's.

:func:`setup_logging` is the batteries-included path used by the CLI's
``--log-level`` / ``--log-json`` flags. It installs exactly one stream
handler on the ``"repro"`` logger (idempotent — calling it again
reconfigures rather than stacking handlers) emitting either a terse
human format or one JSON object per line (JSONL), the shape a log
shipper wants.

Hot-path discipline: instrumented code must guard event construction
with ``logger.isEnabledFor(...)`` (or log with lazy ``%s`` formatting)
so a disabled level costs one integer comparison and no string work.
Structured fields ride on the standard ``extra`` mechanism under the
single key ``ctx``::

    logger.warning("ingest skipped lines", extra={"ctx": {"path": p}})
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"

#: Marker attribute identifying the handler installed by setup_logging.
_HANDLER_MARK = "_repro_obs_handler"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonlFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, ctx."""

    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        ctx = getattr(record, "ctx", None)
        if isinstance(ctx, dict) and ctx:
            document["ctx"] = ctx
        if record.exc_info:
            document["exc"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True, default=str)


class TextFormatter(logging.Formatter):
    """Terse human format: ``LEVEL logger: event {ctx}``."""

    def format(self, record: logging.LogRecord) -> str:
        line = (
            f"{record.levelname.lower():7s} {record.name}: "
            f"{record.getMessage()}"
        )
        ctx = getattr(record, "ctx", None)
        if isinstance(ctx, dict) and ctx:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(ctx.items()))
            line = f"{line} [{pairs}]"
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts either a dunder module name (``repro.measurements.io``,
    the idiomatic ``get_logger(__name__)``) or a bare suffix
    (``"ingest"`` → ``repro.ingest``).
    """
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def parse_level(level: str) -> int:
    """Map a CLI level name to the stdlib constant.

    Raises:
        ValueError: for an unknown level name.
    """
    try:
        return _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (have {sorted(_LEVELS)})"
        ) from None


def setup_logging(
    level: str = "warning",
    json_mode: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger with one stream handler.

    Idempotent: a handler previously installed by this function is
    replaced, not stacked, so the CLI (and tests) can call it freely.
    Logs go to ``stream`` (default stderr, keeping stdout clean for
    command output). Returns the configured root ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(parse_level(level))
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonlFormatter() if json_mode else TextFormatter())
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    return logger
