"""Run provenance manifests: what ran, on what, producing what.

A barometer score is only as trustworthy as its provenance. Every CLI
pipeline run (and any embedding application, via :class:`RunContext`)
can write a ``*.manifest.json`` capturing the full chain of custody:

* the exact command line and package version;
* the scoring configuration and its SHA-256 digest (two runs with the
  same digest scored under identical rules);
* every input file's SHA-256, byte size, line count, and — when the
  reader supplied :class:`~repro.measurements.io.IngestStats` — the
  exact records read/skipped;
* wall-clock start/finish and the final metrics-registry snapshot;
* the output artifacts the run produced.

Manifests are plain JSON, stable-keyed and diffable: ``iqb runs diff``
(:func:`diff_manifests`) reports config deltas, counter deltas, and
timer-duration ratios between two runs, which is how an operator
answers "what changed between last week's publication and this one".
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.fsutil import atomic_write

from .registry import REGISTRY, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import IQBConfig
    from repro.measurements.io import IngestStats

_PathLike = Union[str, Path]

#: Bump when the manifest document shape changes incompatibly.
MANIFEST_VERSION = 1

#: Filename suffix the CLI appends when deriving a manifest path from
#: an output artifact (``report.md`` → ``report.md.manifest.json``).
MANIFEST_SUFFIX = ".manifest.json"


def _package_version() -> str:
    # Lazy: repro/__init__ imports modules that import repro.obs, so a
    # module-level "from repro import __version__" here would observe a
    # partially initialized package during startup.
    import repro

    return repro.__version__


def file_digest(path: _PathLike) -> Dict[str, object]:
    """SHA-256, byte size, and line count of one input file.

    One streaming pass in 1 MiB chunks — manifest construction is
    per-run work and must stay cheap even for multi-GB JSONL dumps,
    but it never loads a file whole.
    """
    digest = hashlib.sha256()
    size = 0
    lines = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
            lines += chunk.count(b"\n")
    return {
        "path": str(path),
        "sha256": digest.hexdigest(),
        "bytes": size,
        "lines": lines,
    }


def config_digest(config: "IQBConfig") -> str:
    """SHA-256 over the config's canonical JSON serialization."""
    return hashlib.sha256(config.to_json().encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """One pipeline run's full provenance record."""

    command: Tuple[str, ...]
    package_version: str
    started_unix: float
    finished_unix: float
    config: Optional[Dict[str, Any]] = None
    config_sha256: Optional[str] = None
    inputs: Tuple[Dict[str, object], ...] = ()
    outputs: Tuple[str, ...] = ()
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: region → datasets that contributed nothing there (degraded-mode
    #: scoring); empty when every configured dataset reported everywhere.
    degraded: Dict[str, List[str]] = field(default_factory=dict)
    #: Which batch-scoring kernel produced the run's scores
    #: ("vectorized" / "exact"); None for runs that never scored and for
    #: manifests written before the kernel existed. Provenance for perf
    #: comparisons: ``iqb runs diff`` ratios are only apples-to-apples
    #: when both runs name the same kernel.
    kernel: Optional[str] = None
    #: Which quantile plane scored the run ("exact" / "sketch"); None
    #: when the run followed the config's per-dataset policy (or never
    #: scored). Same apples-to-apples caveat as ``kernel``: sketch
    #: scores are estimates, so diffs across planes are expected noise.
    quantiles: Optional[str] = None
    #: Dataset-cache provenance for ``--from-cache`` runs (and cache
    #: subcommands): the cache path and its manifest's signature digest
    #: (:attr:`~repro.cache.layout.CacheManifest.manifest_sha256`),
    #: plus tile counts. One digest pins the exact cache snapshot the
    #: run scored from, so a published number is reproducible from a
    #: cache pull alone; None for runs that never touched a cache.
    cache: Optional[Dict[str, Any]] = None
    #: End-of-run :class:`~repro.obs.slo.HealthReport` as a plain dict
    #: (SLO states, burn rates, data-quality section, drift events);
    #: None for runs without a health monitor and for manifests written
    #: before the health subsystem existed. Provenance: a published
    #: score's manifest records whether its feeding data met its SLOs.
    health: Optional[Dict[str, Any]] = None

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds from start to finish."""
        return self.finished_unix - self.started_unix

    def to_dict(self) -> Dict[str, Any]:
        return {
            "manifest_version": MANIFEST_VERSION,
            "command": list(self.command),
            "package_version": self.package_version,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "duration_s": self.duration_s,
            "config": self.config,
            "config_sha256": self.config_sha256,
            "inputs": [dict(entry) for entry in self.inputs],
            "outputs": list(self.outputs),
            "metrics": self.metrics,
            "degraded": {
                region: list(datasets)
                for region, datasets in sorted(self.degraded.items())
            },
            "kernel": self.kernel,
            "quantiles": self.quantiles,
            "cache": self.cache,
            "health": self.health,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "RunManifest":
        return cls(
            command=tuple(document.get("command", ())),
            package_version=str(document.get("package_version", "")),
            started_unix=float(document.get("started_unix", 0.0)),
            finished_unix=float(document.get("finished_unix", 0.0)),
            config=document.get("config"),
            config_sha256=document.get("config_sha256"),
            inputs=tuple(dict(e) for e in document.get("inputs", ())),
            outputs=tuple(document.get("outputs", ())),
            metrics=dict(document.get("metrics", {})),
            degraded={
                str(region): [str(d) for d in datasets]
                for region, datasets in dict(
                    document.get("degraded", {})
                ).items()
            },
            kernel=document.get("kernel"),
            quantiles=document.get("quantiles"),
            cache=document.get("cache"),
            health=document.get("health"),
        )

    def save(self, path: _PathLike) -> None:
        """Write the manifest as stable-keyed JSON, atomically.

        A manifest is the run's chain of custody; a torn one is worse
        than the previous run's, so the write goes through
        :func:`repro.fsutil.atomic_write`.
        """
        atomic_write(
            path,
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    @classmethod
    def load(cls, path: _PathLike) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


class RunContext:
    """Accumulates one run's provenance; builds the manifest at the end.

    The CLI creates one per invocation; commands register their config,
    inputs (with per-call :class:`IngestStats` when available), and
    output artifacts as they go. Registration is per-run bookkeeping —
    a handful of dict appends — never per-record work.
    """

    def __init__(self, command: Sequence[str]) -> None:
        self.command = tuple(str(part) for part in command)
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self._config: Optional["IQBConfig"] = None
        self._inputs: List[Dict[str, object]] = []
        self._outputs: List[str] = []
        self._degraded: Dict[str, List[str]] = {}
        self._kernel: Optional[str] = None
        self._quantiles: Optional[str] = None
        self._cache: Optional[Dict[str, Any]] = None
        self._health: Optional[Dict[str, Any]] = None

    def set_config(self, config: "IQBConfig") -> None:
        """Record the scoring config this run used (last write wins)."""
        self._config = config

    def set_kernel(self, kernel: str) -> None:
        """Record which batch-scoring kernel the run selected."""
        self._kernel = str(kernel)

    def set_quantiles(self, quantiles: Optional[str]) -> None:
        """Record the run's quantile-plane override (None = config)."""
        self._quantiles = None if quantiles is None else str(quantiles)

    def set_cache_source(
        self,
        path: _PathLike,
        manifest_sha256: str,
        tiles: int = 0,
        granularity: Optional[str] = None,
    ) -> None:
        """Record the dataset cache a ``--from-cache`` run scored from.

        The manifest digest pins the exact cache snapshot, so the run
        is reproducible from ``iqb cache pull`` alone — no raw
        measurement files needed.
        """
        self._cache = {
            "path": str(path),
            "manifest_sha256": str(manifest_sha256),
            "tiles": int(tiles),
        }
        if granularity is not None:
            self._cache["granularity"] = str(granularity)

    def set_health_report(self, report: Any) -> None:
        """Record the end-of-run health report (last write wins).

        Accepts a :class:`~repro.obs.slo.HealthReport` or an
        already-serialized dict, so interrupt paths can hand over
        whatever they captured before the run died.
        """
        if report is None:
            self._health = None
        elif isinstance(report, Mapping):
            self._health = dict(report)
        else:
            self._health = report.to_dict()

    def add_input(
        self, path: _PathLike, stats: Optional["IngestStats"] = None
    ) -> None:
        """Digest one input file; attach the reader's exact counts."""
        entry = file_digest(path)
        if stats is not None:
            entry["records_read"] = stats.read
            entry["records_skipped"] = stats.skipped
        self._inputs.append(entry)

    def add_output(self, path: _PathLike) -> None:
        """Record one produced artifact."""
        self._outputs.append(str(path))

    def add_degraded(self, region: str, datasets: Sequence[str]) -> None:
        """Record that ``region`` was scored without ``datasets``.

        No-op for an empty dataset list, so callers can funnel every
        breakdown's ``degraded_datasets`` through without filtering.
        """
        if datasets:
            self._degraded[str(region)] = [str(d) for d in datasets]

    def build(
        self, registry: Optional[MetricsRegistry] = None
    ) -> RunManifest:
        """Snapshot the registry and assemble the manifest."""
        registry = registry if registry is not None else REGISTRY
        config = self._config
        return RunManifest(
            command=self.command,
            package_version=_package_version(),
            started_unix=self.started_unix,
            finished_unix=self.started_unix
            + (time.perf_counter() - self._t0),
            config=config.to_dict() if config is not None else None,
            config_sha256=(
                config_digest(config) if config is not None else None
            ),
            inputs=tuple(self._inputs),
            outputs=tuple(self._outputs),
            metrics=registry.snapshot(),
            degraded=dict(self._degraded),
            kernel=self._kernel,
            quantiles=self._quantiles,
            cache=self._cache,
            health=self._health,
        )

    def write(
        self, path: _PathLike, registry: Optional[MetricsRegistry] = None
    ) -> RunManifest:
        """Build and save in one step; returns the manifest."""
        manifest = self.build(registry)
        manifest.save(path)
        return manifest


# -- diffing ----------------------------------------------------------------


def _flatten(
    document: Optional[Mapping[str, Any]], prefix: str = ""
) -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in (document or {}).items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(_flatten(value, prefix=f"{dotted}."))
        else:
            flat[dotted] = value
    return flat


def _delta_map(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Tuple[Any, Any]]:
    """Keys whose values differ (or exist on one side only)."""
    deltas: Dict[str, Tuple[Any, Any]] = {}
    for key in sorted(set(a) | set(b)):
        left, right = a.get(key), b.get(key)
        if left != right:
            deltas[key] = (left, right)
    return deltas


def diff_manifests(
    a: RunManifest, b: RunManifest
) -> Dict[str, Dict[str, Tuple[Any, Any]]]:
    """Structured differences between two runs.

    Returns a dict with four sections, each mapping a dotted key to an
    ``(a_value, b_value)`` pair: ``config`` (flattened config deltas),
    ``counters``, ``gauges``, and ``timers`` (per-timer total seconds).
    Identical sections come back empty, so "no entries" literally means
    "same rules, same counts".
    """
    metrics_a, metrics_b = a.metrics or {}, b.metrics or {}
    timer_totals = lambda m: {
        name: stats.get("total_s")
        for name, stats in (m.get("timers") or {}).items()
    }
    return {
        "config": _delta_map(_flatten(a.config), _flatten(b.config)),
        "counters": _delta_map(
            metrics_a.get("counters") or {}, metrics_b.get("counters") or {}
        ),
        "gauges": _delta_map(
            metrics_a.get("gauges") or {}, metrics_b.get("gauges") or {}
        ),
        "timers": _delta_map(timer_totals(metrics_a), timer_totals(metrics_b)),
    }


def render_diff(
    a: RunManifest,
    b: RunManifest,
    diff: Optional[Dict[str, Dict[str, Tuple[Any, Any]]]] = None,
) -> str:
    """Human-readable rendering of :func:`diff_manifests`."""
    diff = diff if diff is not None else diff_manifests(a, b)
    lines = [
        f"run A: {' '.join(a.command) or '(unknown command)'} "
        f"({a.duration_s:.3f}s)",
        f"run B: {' '.join(b.command) or '(unknown command)'} "
        f"({b.duration_s:.3f}s)",
    ]
    if a.config_sha256 == b.config_sha256:
        lines.append(f"config: identical (sha256 {a.config_sha256})")
    empty = True
    for section in ("config", "counters", "gauges", "timers"):
        deltas = diff[section]
        if not deltas:
            continue
        empty = False
        lines.append(f"{section}:")
        for key, (left, right) in deltas.items():
            note = ""
            if isinstance(left, (int, float)) and isinstance(
                right, (int, float)
            ):
                note = f"  ({right - left:+g})"
            lines.append(f"  {key}: {left} -> {right}{note}")
    if empty:
        lines.append("no config or metric differences")
    return "\n".join(lines)


def find_manifests(paths: Iterable[_PathLike]) -> List[Path]:
    """Expand files/directories into a sorted list of manifest paths.

    A directory contributes every ``*.manifest.json`` under it
    (recursively); a file path is taken as-is, so explicitly named
    manifests need not follow the suffix convention.
    """
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(sorted(path.rglob(f"*{MANIFEST_SUFFIX}")))
        else:
            found.append(path)
    return found
