"""Prometheus/OpenMetrics text exposition for the metrics registry.

Maps the registry's dotted instrument names onto the Prometheus data
model so any scraper (or ``curl``) can consume a live pipeline:

* counters  → ``iqb_<name>_total`` with ``# TYPE ... counter``;
* gauges    → ``iqb_<name>`` with ``# TYPE ... gauge``;
* timers    → summary-style families ``iqb_<name>_seconds`` with
  ``{quantile="0.5"|"0.95"|"1.0"}`` series (p50/p95/max straight from
  the t-digest) plus the conventional ``_sum`` and ``_count`` samples.

Name mangling is the standard one: every character outside
``[a-zA-Z0-9_]`` becomes ``_`` (so ``probe.runner.retried`` →
``iqb_probe_runner_retried_total``), and the original dotted name is
preserved verbatim in the ``# HELP`` line so an operator can map a
scraped series back to the instrument documented in
``docs/methodology.md``. Everything here renders from a registry
*snapshot*, so one exposition call costs the same as ``iqb metrics``
and holds no locks while formatting.

Label values and ``# HELP`` text follow the 0.0.4 escaping rules
(:func:`escape_label_value` / :func:`escape_help`): backslash,
newline, and — in label values — the double quote are escaped, so
operator-supplied strings (hostile region names included) cannot
corrupt the exposition. The labeled health families served alongside
the registry (see :meth:`repro.obs.health.HealthMonitor.
render_prometheus`) build their samples through :func:`format_labels`
for the same reason.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import MetricsRegistry

#: The exposition format this module emits (Prometheus text format).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Quantile label values emitted per timer, and the snapshot keys that
#: back them (the registry snapshot already holds digest quantiles).
_TIMER_QUANTILES = (("0.5", "p50_s"), ("0.95", "p95_s"), ("1.0", "max_s"))

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(dotted: str, prefix: str = "iqb") -> str:
    """A valid Prometheus metric name for a dotted instrument name.

    The prefix keeps every exported family in one namespace and
    guarantees the first character is legal even for instrument names
    that start with a digit.
    """
    return f"{prefix}_{_INVALID_CHARS.sub('_', dotted)}"


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring per the 0.0.4 text format.

    Help text escapes backslash and newline (a raw newline would start
    a bogus exposition line and break every scraper).
    """
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape one label value per the 0.0.4 text format.

    Label values additionally escape the double quote that delimits
    them. Region and dataset names are operator-supplied strings, so a
    hostile name like ``ru"ral\\nnorth`` must round-trip instead of
    corrupting the exposition.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_labels(labels: Mapping[str, str]) -> str:
    """Render a label set as ``{name="value",...}`` (escaped).

    Label *names* must already be valid identifiers (they are
    code-chosen); label *values* go through
    :func:`escape_label_value`. An empty mapping renders as the empty
    string so unlabeled samples keep their canonical form.
    """
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: object) -> str:
    """Render a sample value the Prometheus parser accepts."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The whole registry as Prometheus text exposition (format 0.0.4).

    Families are emitted in sorted-name order, each with ``# HELP``
    (carrying the original dotted instrument name) and ``# TYPE``
    lines. Timers with no observations still expose ``_count``/``_sum``
    (both zero) but omit quantile series — a quantile of an empty
    digest has no value, and Prometheus treats an absent series as
    exactly that.
    """
    snap = registry.snapshot()
    lines: List[str] = []

    for dotted, value in snap["counters"].items():
        name = prometheus_name(dotted) + "_total"
        lines.append(f"# HELP {name} {escape_help(f'IQB counter {dotted}')}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(value)}")

    for dotted, value in snap["gauges"].items():
        name = prometheus_name(dotted)
        lines.append(f"# HELP {name} {escape_help(f'IQB gauge {dotted}')}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(value)}")

    for dotted, stats in snap["timers"].items():
        name = prometheus_name(dotted) + "_seconds"
        lines.append(
            f"# HELP {name} {escape_help(f'IQB timer {dotted} (seconds)')}"
        )
        lines.append(f"# TYPE {name} summary")
        if stats["count"]:
            for label, key in _TIMER_QUANTILES:
                lines.append(
                    f"{name}{format_labels({'quantile': label})} "
                    f"{_format_value(stats[key])}"
                )
        lines.append(f"{name}_sum {_format_value(stats['total_s'])}")
        lines.append(f"{name}_count {_format_value(stats['count'])}")

    return "\n".join(lines) + "\n" if lines else ""
