"""Vantage-point populations: regions, ISPs, subscribers.

A :class:`RegionProfile` describes the market structure of one region —
which ISPs operate there, each ISP's technology mix, and how loaded the
region's networks run. :func:`build_links` expands a profile into a
deterministic population of :class:`~repro.netsim.link.SubscriberLink`
ground truths.

Six presets span the quality spectrum the IQB score is meant to resolve,
from an all-fiber metro to a GEO-satellite-dependent remote region. The
presets are the standard fixture for every example and bench in this
repository, so their names appear throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from .access import technology
from .congestion import DiurnalProfile, DEFAULT_PROFILE
from .link import SubscriberLink, draw_link
from .rng import make_rng


@dataclass(frozen=True)
class ISPProfile:
    """One ISP's presence in a region."""

    name: str
    #: Technology name → share of this ISP's subscribers (sums to 1).
    tech_mix: Mapping[str, float]
    #: Share of the region's subscribers on this ISP (sums to 1 region-wide).
    subscriber_share: float

    def __post_init__(self) -> None:
        if not self.tech_mix:
            raise ValueError(f"ISP {self.name!r} has an empty tech mix")
        total = sum(self.tech_mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"ISP {self.name!r} tech mix sums to {total}, expected 1"
            )
        for tech_name in self.tech_mix:
            technology(tech_name)  # raises KeyError on unknown tech
        if not 0.0 < self.subscriber_share <= 1.0:
            raise ValueError(
                f"ISP {self.name!r} share out of (0, 1]: {self.subscriber_share}"
            )


@dataclass(frozen=True)
class RegionProfile:
    """Market structure and load level of one region."""

    name: str
    description: str
    isps: Tuple[ISPProfile, ...]
    #: Scales the diurnal utilization curve (>1 = oversubscribed).
    load_factor: float = 1.0
    diurnal: DiurnalProfile = field(default_factory=lambda: DEFAULT_PROFILE)

    def __post_init__(self) -> None:
        if not self.isps:
            raise ValueError(f"region {self.name!r} has no ISPs")
        total = sum(isp.subscriber_share for isp in self.isps)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"region {self.name!r} ISP shares sum to {total}, expected 1"
            )
        if self.load_factor <= 0:
            raise ValueError(f"load factor must be positive: {self.load_factor}")


def build_links(
    profile: RegionProfile,
    subscribers: int,
    seed: int,
) -> List[SubscriberLink]:
    """Expand a region profile into a deterministic subscriber population.

    Subscribers are allocated to ISPs and technologies proportionally
    (largest-remainder rounding, so counts are exact and deterministic),
    then each link is drawn from its technology envelope under a
    per-subscriber RNG stream.
    """
    if subscribers < 1:
        raise ValueError(f"subscribers must be >= 1: {subscribers}")
    allocations = _allocate(
        {isp.name: isp.subscriber_share for isp in profile.isps}, subscribers
    )
    links: List[SubscriberLink] = []
    for isp in profile.isps:
        isp_count = allocations[isp.name]
        if isp_count == 0:
            continue
        tech_counts = _allocate(dict(isp.tech_mix), isp_count)
        index = 0
        for tech_name in sorted(tech_counts):
            for _ in range(tech_counts[tech_name]):
                subscriber_id = f"{profile.name}/{isp.name}/{index:05d}"
                rng = make_rng(seed, "link", profile.name, isp.name, index)
                links.append(
                    draw_link(
                        rng,
                        subscriber_id=subscriber_id,
                        region=profile.name,
                        isp=isp.name,
                        tech=technology(tech_name),
                    )
                )
                index += 1
    return links


def _allocate(shares: Dict[str, float], total: int) -> Dict[str, int]:
    """Integer allocation proportional to shares (largest remainder)."""
    raw = {name: share * total for name, share in shares.items()}
    counts = {name: int(value) for name, value in raw.items()}
    shortfall = total - sum(counts.values())
    remainders = sorted(
        shares, key=lambda name: (raw[name] - counts[name], name), reverse=True
    )
    for name in remainders[:shortfall]:
        counts[name] += 1
    return counts


def _region(
    name: str,
    description: str,
    isps: Tuple[ISPProfile, ...],
    load_factor: float = 1.0,
) -> RegionProfile:
    return RegionProfile(
        name=name, description=description, isps=isps, load_factor=load_factor
    )


METRO_FIBER = _region(
    "metro-fiber",
    "Dense metro with competitive symmetric fiber.",
    (
        ISPProfile("CityFiber", {"fiber": 1.0}, 0.6),
        ISPProfile("MetroNet", {"fiber": 0.8, "cable": 0.2}, 0.4),
    ),
    load_factor=0.8,
)

SUBURBAN_CABLE = _region(
    "suburban-cable",
    "Suburb dominated by DOCSIS cable, some fiber overbuild.",
    (
        ISPProfile("CoaxCo", {"cable": 1.0}, 0.7),
        ISPProfile("FiberNow", {"fiber": 1.0}, 0.3),
    ),
    load_factor=1.0,
)

RURAL_DSL = _region(
    "rural-dsl",
    "Rural incumbent DSL with fixed-wireless challenger.",
    (
        ISPProfile("TelcoLegacy", {"dsl": 0.85, "fixed_wireless": 0.15}, 0.8),
        ISPProfile("AirLink", {"fixed_wireless": 1.0}, 0.2),
    ),
    load_factor=1.15,
)

MOBILE_FIRST = _region(
    "mobile-first",
    "Region where most households rely on LTE home broadband.",
    (
        ISPProfile("CellOne", {"lte": 1.0}, 0.65),
        ISPProfile("WaveMobile", {"lte": 0.8, "fixed_wireless": 0.2}, 0.35),
    ),
    load_factor=1.2,
)

SATELLITE_REMOTE = _region(
    "satellite-remote",
    "Remote region served mainly by GEO satellite, some LEO adoption.",
    (
        ISPProfile("SkyBeam", {"satellite_geo": 1.0}, 0.7),
        ISPProfile("OrbitNet", {"satellite_leo": 1.0}, 0.3),
    ),
    load_factor=1.1,
)

MIXED_URBAN = _region(
    "mixed-urban",
    "Large city with an uneven mix: fiber cores, cable, legacy DSL pockets.",
    (
        ISPProfile("UrbanFiber", {"fiber": 1.0}, 0.35),
        ISPProfile("CityCable", {"cable": 1.0}, 0.45),
        ISPProfile("OldTelco", {"dsl": 0.7, "fiber": 0.3}, 0.2),
    ),
    load_factor=1.05,
)

#: The canonical region fixtures used by examples, tests and benches.
REGION_PRESETS: Dict[str, RegionProfile] = {
    profile.name: profile
    for profile in (
        METRO_FIBER,
        SUBURBAN_CABLE,
        RURAL_DSL,
        MOBILE_FIRST,
        SATELLITE_REMOTE,
        MIXED_URBAN,
    )
}


def random_region(name: str, seed: int) -> RegionProfile:
    """Generate a random but plausible region profile.

    Used by the evaluation benches to test claims across *many* market
    structures instead of only the six designed presets: 1-3 ISPs with
    Dirichlet-ish random subscriber shares, each mixing 1-3 random
    access technologies, and a load factor across the under/over-
    subscribed range. Deterministic under (name, seed).
    """
    from .access import technology_names
    from .rng import make_rng

    rng = make_rng(seed, "random-region", name)
    isp_count = int(rng.integers(1, 4))
    raw_shares = rng.dirichlet([2.0] * isp_count)
    technologies = list(technology_names())
    isps: List[ISPProfile] = []
    for index in range(isp_count):
        tech_count = int(rng.integers(1, 4))
        chosen = rng.choice(technologies, size=tech_count, replace=False)
        mix_raw = rng.dirichlet([2.0] * tech_count)
        mix = {
            str(tech): float(weight)
            for tech, weight in zip(chosen, mix_raw)
        }
        # Normalize away float drift so ISPProfile's sum check passes.
        total = sum(mix.values())
        mix = {tech: weight / total for tech, weight in mix.items()}
        isps.append(
            ISPProfile(
                name=f"isp-{index}",
                tech_mix=mix,
                subscriber_share=float(raw_shares[index]),
            )
        )
    # Largest-remainder float drift: rescale shares exactly.
    total_share = sum(isp.subscriber_share for isp in isps)
    isps = [
        ISPProfile(
            name=isp.name,
            tech_mix=isp.tech_mix,
            subscriber_share=isp.subscriber_share / total_share,
        )
        for isp in isps
    ]
    return RegionProfile(
        name=name,
        description=f"randomly generated market (seed {seed})",
        isps=tuple(isps),
        load_factor=float(rng.uniform(0.8, 1.3)),
    )


def region_preset(name: str) -> RegionProfile:
    """Look up a preset region by name.

    Raises:
        KeyError: naming the unknown region and the known presets.
    """
    try:
        return REGION_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(REGION_PRESETS))
        raise KeyError(f"unknown region preset {name!r}; known: {known}")
