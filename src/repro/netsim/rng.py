"""Deterministic random-number plumbing for the simulator.

Every stochastic component in :mod:`repro.netsim` draws from a
``numpy.random.Generator`` derived here. Reproducibility rule: the same
top-level seed plus the same logical key path always yields the same
stream, regardless of how many *other* streams were consumed in
between. That property is what lets tests pin down individual
subscribers or campaigns without replaying the whole simulation.

Keys are arbitrary strings/ints hashed into a ``SeedSequence`` spawn
key, so adding a new component never perturbs existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Key = Union[str, int]


def _key_to_int(key: Key) -> int:
    """Stable 64-bit integer for a stream key (order-independent setup)."""
    if isinstance(key, bool) or not isinstance(key, (str, int)):
        raise TypeError(f"rng key must be str or int, got {key!r}")
    if isinstance(key, int):
        return key & 0xFFFFFFFFFFFFFFFF
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int, *keys: Key) -> np.random.Generator:
    """A generator for the stream identified by ``(seed, *keys)``.

    >>> a = make_rng(7, "region", "metro-fiber", 3)
    >>> b = make_rng(7, "region", "metro-fiber", 3)
    >>> float(a.random()) == float(b.random())
    True
    """
    entropy = [seed & 0xFFFFFFFFFFFFFFFF] + [_key_to_int(k) for k in keys]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def bounded_lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """One lognormal draw with the given median, clipped to [low, high].

    Lognormals are the standard shape for access-capacity and latency
    populations (long right tail, strictly positive); clipping keeps the
    simulator free of physically absurd outliers.
    """
    if median <= 0:
        raise ValueError(f"median must be positive: {median}")
    value = float(rng.lognormal(mean=np.log(median), sigma=sigma))
    return float(min(max(value, low), high))
