"""Infrastructure evolution: the same region, changing over time.

Barometers exist to track change — a fiber buildout, an oversubscribed
segment getting split, a new LEO constellation. This module simulates a
region whose market structure shifts across consecutive periods, each
period measured with its own campaign on a shared timeline, producing a
single longitudinal :class:`~repro.measurements.collection.MeasurementSet`
suitable for :mod:`repro.analysis.temporal`.

:func:`fiber_buildout` builds the canonical upgrade story: a DSL-heavy
region migrating a share of subscribers to fiber each period. The
interesting property for the reproduction: the upgrade improves latency
and loss *before* it moves headline median speed much (early adopters
are few), so the IQB score starts moving before a speed-only metric
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.measurements.collection import MeasurementSet
from repro.netsim.congestion import SECONDS_PER_DAY

from .population import ISPProfile, RegionProfile
from .simulator import CampaignConfig, simulate_region


@dataclass(frozen=True)
class EvolutionStage:
    """One period of a region's history."""

    profile: RegionProfile
    days: float = 30.0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError(f"stage length must be positive: {self.days}")


def simulate_evolution(
    stages: Sequence[EvolutionStage],
    seed: int,
    tests_per_client_per_stage: int = 300,
    subscribers: int = 120,
) -> MeasurementSet:
    """Measure every stage on one continuous timeline.

    All stages must describe the same region (same profile name) —
    evolution is within-region change, not a region comparison.

    Raises:
        ValueError: on empty stages or mismatched region names.
    """
    stage_list = list(stages)
    if not stage_list:
        raise ValueError("simulate_evolution needs at least one stage")
    names = {stage.profile.name for stage in stage_list}
    if len(names) != 1:
        raise ValueError(
            f"evolution stages must share one region name, got {sorted(names)}"
        )
    combined = MeasurementSet()
    start = 0.0
    for index, stage in enumerate(stage_list):
        campaign = CampaignConfig(
            subscribers=subscribers,
            tests_per_client=tests_per_client_per_stage,
            days=stage.days,
            start_timestamp=start,
        )
        combined = combined + simulate_region(
            stage.profile, seed=seed + index, config=campaign
        )
        start += stage.days * SECONDS_PER_DAY
    return combined


def _interpolated_profile(
    name: str,
    description: str,
    fiber_share: float,
    load_factor: float,
) -> RegionProfile:
    """A one-ISP region part-way through a DSL→fiber migration."""
    if not 0.0 <= fiber_share <= 1.0:
        raise ValueError(f"fiber_share outside [0, 1]: {fiber_share}")
    if fiber_share <= 0.0:
        mix = {"dsl": 1.0}
    elif fiber_share >= 1.0:
        mix = {"fiber": 1.0}
    else:
        mix = {"fiber": fiber_share, "dsl": 1.0 - fiber_share}
    return RegionProfile(
        name=name,
        description=description,
        isps=(ISPProfile("Incumbent", mix, 1.0),),
        load_factor=load_factor,
    )


def fiber_buildout(
    region_name: str = "buildout",
    periods: int = 6,
    final_fiber_share: float = 1.0,
    days_per_period: float = 30.0,
    initial_load_factor: float = 1.15,
) -> List[EvolutionStage]:
    """The canonical upgrade scenario: DSL region migrating to fiber.

    Fiber share ramps linearly from 0 to ``final_fiber_share`` over the
    periods; congestion eases slightly as traffic moves off the DSL
    plant (load factor relaxes toward 1.0).

    Raises:
        ValueError: for fewer than two periods.
    """
    if periods < 2:
        raise ValueError(f"a buildout needs >= 2 periods: {periods}")
    stages: List[EvolutionStage] = []
    for index in range(periods):
        progress = index / (periods - 1)
        share = progress * final_fiber_share
        load = initial_load_factor + (1.0 - initial_load_factor) * progress
        stages.append(
            EvolutionStage(
                profile=_interpolated_profile(
                    name=region_name,
                    description=(
                        f"DSL-to-fiber buildout, period {index + 1}/{periods} "
                        f"({share:.0%} fiber)"
                    ),
                    fiber_share=share,
                    load_factor=load,
                ),
                days=days_per_period,
            )
        )
    return stages


def with_incident(
    profile: RegionProfile, severity: float = 0.5
) -> RegionProfile:
    """A copy of ``profile`` suffering a congestion incident.

    ``severity`` scales the extra load: 0.5 means the region runs 50 %
    hotter than usual (a failed peering link, a flash crowd, storm
    damage concentrating traffic on surviving plant). Congestion then
    degrades latency (bufferbloat) and loss (queue-tail drops) through
    the normal link laws — no special-case physics.

    Raises:
        ValueError: for negative severity.
    """
    if severity < 0:
        raise ValueError(f"severity must be non-negative: {severity}")
    return RegionProfile(
        name=profile.name,
        description=f"{profile.description} [incident, severity {severity:g}]",
        isps=profile.isps,
        load_factor=profile.load_factor * (1.0 + severity),
        diurnal=profile.diurnal,
    )


def stage_boundaries(
    stages: Sequence[EvolutionStage],
) -> List[Tuple[float, float]]:
    """(start, end) timestamps of each stage on the shared timeline."""
    boundaries: List[Tuple[float, float]] = []
    start = 0.0
    for stage in stages:
        end = start + stage.days * SECONDS_PER_DAY
        boundaries.append((start, end))
        start = end
    return boundaries
