"""Per-subscriber link state.

A :class:`SubscriberLink` is the ground truth the simulator measures
*against*: the actual capacity, idle RTT, random loss and bufferbloat of
one household's connection. Measurement clients (NDT, Cloudflare,
Ookla) observe this ground truth imperfectly, each through its own
methodology — which is precisely the phenomenon the IQB poster's
"corroboration" argument is about.

The load model is deliberately simple and smooth:

* effective RTT grows linearly with utilization through the bufferbloat
  term: ``rtt(u) = base_rtt + u · bloat``;
* loss grows superlinearly once utilization approaches saturation
  (queue-tail drops): ``loss(u) = base_loss + congestion_loss · u⁴``;
* available capacity shrinks with cross-traffic utilization:
  ``capacity(u) = capacity · (1 - u · share)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .access import AccessTechnology

#: Extra loss contributed at full saturation (queue-tail drops).
CONGESTION_LOSS_AT_SATURATION = 0.02
#: Fraction of capacity the neighbourhood's cross-traffic can claim.
CROSS_TRAFFIC_SHARE = 0.45


@dataclass(frozen=True)
class SubscriberLink:
    """Ground-truth state of one subscriber's access link."""

    subscriber_id: str
    region: str
    isp: str
    tech: str
    down_capacity_mbps: float
    up_capacity_mbps: float
    base_rtt_ms: float
    base_loss: float
    bloat_ms: float

    def rtt_under_load(self, utilization: float) -> float:
        """Effective RTT (ms) at a given neighbourhood utilization."""
        utilization = _clamp_utilization(utilization)
        return self.base_rtt_ms + utilization * self.bloat_ms

    def loss_under_load(self, utilization: float) -> float:
        """Effective loss fraction at a given utilization."""
        utilization = _clamp_utilization(utilization)
        loss = self.base_loss + CONGESTION_LOSS_AT_SATURATION * utilization**4
        return min(loss, 1.0)

    def down_available_mbps(self, utilization: float) -> float:
        """Downstream capacity left after cross-traffic at ``utilization``."""
        utilization = _clamp_utilization(utilization)
        return self.down_capacity_mbps * (1.0 - utilization * CROSS_TRAFFIC_SHARE)

    def up_available_mbps(self, utilization: float) -> float:
        """Upstream capacity left after cross-traffic at ``utilization``."""
        utilization = _clamp_utilization(utilization)
        return self.up_capacity_mbps * (1.0 - utilization * CROSS_TRAFFIC_SHARE)


def _clamp_utilization(utilization: float) -> float:
    if not 0.0 <= utilization <= 1.5:
        raise ValueError(f"utilization out of [0, 1.5]: {utilization!r}")
    return min(utilization, 1.0)


#: Envelope of home-WiFi degradation applied per affected test.
WIFI_CAP_LOW_MBPS = 30.0
WIFI_CAP_HIGH_MBPS = 400.0
WIFI_EXTRA_RTT_LOW_MS = 2.0
WIFI_EXTRA_RTT_HIGH_MS = 25.0
WIFI_EXTRA_LOSS_HIGH = 0.01


def apply_wifi(
    link: SubscriberLink, rng: np.random.Generator
) -> SubscriberLink:
    """The link as seen from a device behind imperfect home WiFi.

    Crowdsourced speed tests mostly run over WiFi, which caps
    throughput below the access link on fast plans and adds delay and
    loss — a classic confounder: the *measurement* degrades while the
    ISP's service does not. The returned link is a derived copy whose
    capacities are capped by a drawn WiFi rate and whose base RTT/loss
    carry the WiFi hop's contribution.
    """
    wifi_cap = float(rng.uniform(WIFI_CAP_LOW_MBPS, WIFI_CAP_HIGH_MBPS))
    extra_rtt = float(
        rng.uniform(WIFI_EXTRA_RTT_LOW_MS, WIFI_EXTRA_RTT_HIGH_MS)
    )
    extra_loss = float(rng.uniform(0.0, WIFI_EXTRA_LOSS_HIGH))
    return SubscriberLink(
        subscriber_id=link.subscriber_id,
        region=link.region,
        isp=link.isp,
        tech=link.tech,
        down_capacity_mbps=min(link.down_capacity_mbps, wifi_cap),
        up_capacity_mbps=min(link.up_capacity_mbps, wifi_cap),
        base_rtt_ms=link.base_rtt_ms + extra_rtt,
        base_loss=min(1.0, link.base_loss + extra_loss),
        bloat_ms=link.bloat_ms,
    )


def draw_link(
    rng: np.random.Generator,
    subscriber_id: str,
    region: str,
    isp: str,
    tech: AccessTechnology,
) -> SubscriberLink:
    """Sample one subscriber's link from a technology envelope."""
    down = tech.draw_down_capacity(rng)
    up = down * tech.draw_up_ratio(rng)
    return SubscriberLink(
        subscriber_id=subscriber_id,
        region=region,
        isp=isp,
        tech=tech.name,
        down_capacity_mbps=down,
        up_capacity_mbps=up,
        base_rtt_ms=tech.draw_base_rtt(rng),
        base_loss=tech.draw_loss(rng),
        bloat_ms=tech.draw_bloat(rng),
    )
