"""Steady-state TCP throughput models.

Measurement clients observe throughput *through TCP*, and TCP's loss/RTT
sensitivity is exactly why NDT (single stream) and Ookla (many streams)
report systematically different numbers for the same link — the
methodological diversity the IQB poster leans on for corroboration.

Two classic closed-form models:

* :func:`mathis_throughput` — Mathis et al. (1997):
  ``B = (MSS / RTT) · C / sqrt(p)``. Simple inverse-sqrt loss law.
* :func:`padhye_throughput` — Padhye et al. (1998) full model including
  retransmission timeouts; more pessimistic at high loss.

Both return Mbit/s given RTT in ms and loss as a fraction, and
:func:`multi_stream_throughput` composes either model with the path
capacity for n parallel streams.
"""

from __future__ import annotations

import math

#: Standard Ethernet-era maximum segment size (bytes).
DEFAULT_MSS_BYTES = 1460
#: Mathis constant for periodic loss and delayed ACKs.
MATHIS_C = math.sqrt(3.0 / 2.0)
#: Loss floor: a loss-free path is window-limited, not model-limited;
#: using a tiny floor keeps the formulas finite and lets capacity clip.
LOSS_FLOOR = 1e-6


def mathis_throughput(
    rtt_ms: float,
    loss: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Mathis-model single-stream TCP throughput in Mbit/s.

    Raises:
        ValueError: on non-positive RTT or loss outside [0, 1].
    """
    _check(rtt_ms, loss)
    loss = max(loss, LOSS_FLOOR)
    bytes_per_second = (mss_bytes / (rtt_ms / 1000.0)) * MATHIS_C / math.sqrt(loss)
    return bytes_per_second * 8.0 / 1e6


def padhye_throughput(
    rtt_ms: float,
    loss: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
    rto_ms: float = 200.0,
    b_ack: int = 2,
    w_max: int = 65535 * 8 // DEFAULT_MSS_BYTES,
) -> float:
    """Padhye-model (PFTK) single-stream TCP throughput in Mbit/s.

    Includes the retransmission-timeout term that dominates at high
    loss, making this model noticeably more pessimistic than Mathis
    above ~2 % loss.
    """
    _check(rtt_ms, loss)
    p = max(loss, LOSS_FLOOR)
    rtt = rtt_ms / 1000.0
    rto = rto_ms / 1000.0
    term_wnd = math.sqrt(2.0 * b_ack * p / 3.0)
    term_to = min(1.0, 3.0 * math.sqrt(3.0 * b_ack * p / 8.0)) * p * (
        1.0 + 32.0 * p * p
    )
    denominator = rtt * term_wnd + rto * term_to
    segments_per_second = min(w_max / rtt, 1.0 / denominator)
    return segments_per_second * mss_bytes * 8.0 / 1e6


def multi_stream_throughput(
    capacity_mbps: float,
    rtt_ms: float,
    loss: float,
    streams: int = 1,
    model: str = "mathis",
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Aggregate throughput of ``streams`` parallel TCP flows.

    Each stream independently obeys the chosen loss/RTT law; the sum is
    clipped at the available path capacity. More streams therefore mask
    loss sensitivity — which is why multi-stream methodologies (Ookla,
    Cloudflare) report closer to capacity than single-stream NDT on
    lossy links.

    Raises:
        ValueError: on non-positive capacity/streams or unknown model.
    """
    if capacity_mbps < 0:
        raise ValueError(f"capacity must be non-negative: {capacity_mbps}")
    if streams < 1:
        raise ValueError(f"streams must be >= 1: {streams}")
    if model == "mathis":
        per_stream = mathis_throughput(rtt_ms, loss, mss_bytes)
    elif model == "padhye":
        per_stream = padhye_throughput(rtt_ms, loss, mss_bytes)
    else:
        raise ValueError(f"unknown TCP model {model!r} (mathis|padhye)")
    return min(capacity_mbps, streams * per_stream)


def _check(rtt_ms: float, loss: float) -> None:
    if rtt_ms <= 0:
        raise ValueError(f"rtt_ms must be positive: {rtt_ms}")
    if not 0.0 <= loss <= 1.0:
        raise ValueError(f"loss outside [0, 1]: {loss}")
