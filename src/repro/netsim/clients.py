"""Measurement-client methodologies: NDT, Cloudflare, Ookla.

The three datasets the poster builds on measure "the same" link in
fundamentally different ways (§2: "NDT, Ookla and Cloudflare each
measure throughput in a fundamentally different way"). Each client here
observes a ground-truth :class:`~repro.netsim.link.SubscriberLink`
through its own methodology:

* **NDT** — one TCP stream for 10 s. Single-stream TCP is loss- and
  RTT-bound (Mathis law), so NDT under-reports capacity on lossy or
  long-RTT links. Latency is the minimum RTT seen during the loaded
  transfer; loss is inferred from retransmissions (a biased proxy).
* **Cloudflare** — several parallel connections, reporting both idle
  and loaded latency; loss measured with a dedicated probe train
  (unbiased but quantized by the probe count).
* **Ookla** — many parallel streams, reporting the *peak* transfer
  rate, which tracks available capacity closely; latency is an idle
  ping; no loss is published.

All clients add multiplicative measurement noise. Every draw comes from
the caller-provided RNG, so campaigns are reproducible end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.metrics import Metric
from repro.measurements.record import Measurement

from .link import SubscriberLink
from .tcp import multi_stream_throughput


def _noisy(rng: np.random.Generator, value: float, sigma: float) -> float:
    """Multiplicative lognormal measurement noise."""
    return float(value * rng.lognormal(mean=0.0, sigma=sigma))


class MeasurementClient(ABC):
    """One dataset's measurement methodology."""

    #: Dataset name as it appears in ``Measurement.source`` and configs.
    name: str = ""
    #: Metrics this methodology observes.
    metrics: Tuple[Metric, ...] = ()

    @abstractmethod
    def measure(
        self,
        link: SubscriberLink,
        utilization: float,
        timestamp: float,
        rng: np.random.Generator,
    ) -> Measurement:
        """Run one test against a link under the given utilization."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class _Conditions:
    """Effective link conditions at test time."""

    rtt_ms: float
    loss: float
    down_mbps: float
    up_mbps: float


def _conditions(link: SubscriberLink, utilization: float) -> _Conditions:
    return _Conditions(
        rtt_ms=link.rtt_under_load(utilization),
        loss=link.loss_under_load(utilization),
        down_mbps=link.down_available_mbps(utilization),
        up_mbps=link.up_available_mbps(utilization),
    )


class NDTClient(MeasurementClient):
    """M-Lab NDT-style single-stream TCP test."""

    name = "ndt"
    metrics = (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY, Metric.PACKET_LOSS)

    #: Retransmission-based loss estimates over-count genuine loss
    #: (spurious retransmits, reordering); a fixed multiplicative bias.
    RETRANS_BIAS = 1.3
    NOISE_SIGMA = 0.10

    def measure(
        self,
        link: SubscriberLink,
        utilization: float,
        timestamp: float,
        rng: np.random.Generator,
    ) -> Measurement:
        cond = _conditions(link, utilization)
        down = multi_stream_throughput(
            cond.down_mbps, cond.rtt_ms, cond.loss, streams=1
        )
        up = multi_stream_throughput(
            cond.up_mbps, cond.rtt_ms, cond.loss, streams=1
        )
        # Minimum RTT during a loaded transfer sits between idle and
        # fully-loaded delay; NDT reports close to the idle floor.
        latency = link.base_rtt_ms + 0.25 * (cond.rtt_ms - link.base_rtt_ms)
        retrans = min(1.0, cond.loss * self.RETRANS_BIAS)
        return Measurement(
            region=link.region,
            source=self.name,
            timestamp=timestamp,
            download_mbps=_noisy(rng, down, self.NOISE_SIGMA),
            upload_mbps=_noisy(rng, up, self.NOISE_SIGMA),
            latency_ms=_noisy(rng, latency, 0.05),
            packet_loss=min(1.0, _noisy(rng, retrans, 0.20)),
            isp=link.isp,
            access_tech=link.tech,
            meta={"streams": 1, "methodology": "single-stream-tcp"},
        )


class CloudflareClient(MeasurementClient):
    """Cloudflare-style multi-connection test with a probe train."""

    name = "cloudflare"
    metrics = (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY, Metric.PACKET_LOSS)

    STREAMS = 4
    PROBE_COUNT = 1000
    NOISE_SIGMA = 0.08

    def measure(
        self,
        link: SubscriberLink,
        utilization: float,
        timestamp: float,
        rng: np.random.Generator,
    ) -> Measurement:
        cond = _conditions(link, utilization)
        down = multi_stream_throughput(
            cond.down_mbps, cond.rtt_ms, cond.loss, streams=self.STREAMS
        )
        up = multi_stream_throughput(
            cond.up_mbps, cond.rtt_ms, cond.loss, streams=self.STREAMS
        )
        # Reported latency blends idle and loaded RTT (AIM-style).
        latency = 0.5 * (link.base_rtt_ms + cond.rtt_ms)
        # Unbiased but quantized loss estimate from a finite probe train.
        lost = int(rng.binomial(self.PROBE_COUNT, cond.loss))
        loss = lost / self.PROBE_COUNT
        return Measurement(
            region=link.region,
            source=self.name,
            timestamp=timestamp,
            download_mbps=_noisy(rng, down, self.NOISE_SIGMA),
            upload_mbps=_noisy(rng, up, self.NOISE_SIGMA),
            latency_ms=_noisy(rng, latency, 0.05),
            packet_loss=loss,
            isp=link.isp,
            access_tech=link.tech,
            meta={"streams": self.STREAMS, "probes": self.PROBE_COUNT},
        )


class OoklaClient(MeasurementClient):
    """Ookla-style many-stream peak-rate test (no loss published)."""

    name = "ookla"
    metrics = (Metric.DOWNLOAD, Metric.UPLOAD, Metric.LATENCY)

    STREAMS = 8
    #: Peak-rate selection recovers most of the available capacity.
    PEAK_EFFICIENCY = 0.97
    NOISE_SIGMA = 0.06

    def measure(
        self,
        link: SubscriberLink,
        utilization: float,
        timestamp: float,
        rng: np.random.Generator,
    ) -> Measurement:
        cond = _conditions(link, utilization)
        down = self.PEAK_EFFICIENCY * multi_stream_throughput(
            cond.down_mbps, cond.rtt_ms, cond.loss, streams=self.STREAMS
        )
        up = self.PEAK_EFFICIENCY * multi_stream_throughput(
            cond.up_mbps, cond.rtt_ms, cond.loss, streams=self.STREAMS
        )
        # Idle ping to a nearby server: unaffected by the transfer load.
        latency = link.base_rtt_ms
        return Measurement(
            region=link.region,
            source=self.name,
            timestamp=timestamp,
            download_mbps=_noisy(rng, down, self.NOISE_SIGMA),
            upload_mbps=_noisy(rng, up, self.NOISE_SIGMA),
            latency_ms=_noisy(rng, latency, 0.04),
            packet_loss=None,
            isp=link.isp,
            access_tech=link.tech,
            meta={"streams": self.STREAMS, "selection": "peak"},
        )


class AtlasPingClient(MeasurementClient):
    """RIPE-Atlas-style anchor: latency/loss probes, no throughput.

    Dedicated probe hardware sends small ICMP/UDP trains continuously;
    it observes delay and loss under whatever load the household
    happens to have, and never measures throughput at all. Useful as a
    fourth corroborating dataset for exactly the two metrics speed
    tests measure worst.
    """

    name = "atlas"
    metrics = (Metric.LATENCY, Metric.PACKET_LOSS)

    PROBE_COUNT = 100

    def measure(
        self,
        link: SubscriberLink,
        utilization: float,
        timestamp: float,
        rng: np.random.Generator,
    ) -> Measurement:
        cond = _conditions(link, utilization)
        # Small probes ride the real queue: loaded RTT, lightly noised.
        latency = _noisy(rng, cond.rtt_ms, 0.04)
        lost = int(rng.binomial(self.PROBE_COUNT, cond.loss))
        return Measurement(
            region=link.region,
            source=self.name,
            timestamp=timestamp,
            download_mbps=None,
            upload_mbps=None,
            latency_ms=latency,
            packet_loss=lost / self.PROBE_COUNT,
            isp=link.isp,
            access_tech=link.tech,
            meta={"probes": self.PROBE_COUNT, "methodology": "ping-train"},
        )


#: The canonical client trio, keyed by dataset name.
DEFAULT_CLIENTS: Dict[str, MeasurementClient] = {
    client.name: client
    for client in (NDTClient(), CloudflareClient(), OoklaClient())
}


def default_clients() -> Tuple[MeasurementClient, ...]:
    """Fresh references to the canonical NDT/Cloudflare/Ookla trio."""
    return tuple(DEFAULT_CLIENTS[name] for name in sorted(DEFAULT_CLIENTS))
