"""Measurement-campaign simulator.

Ties the substrate together: a region's subscriber population
(:mod:`.population`), its diurnal congestion (:mod:`.congestion`), and
the dataset methodologies (:mod:`.clients`) produce a
:class:`~repro.measurements.collection.MeasurementSet` that looks like a
week of crowdsourced speed-test data — the raw material the IQB paper's
datasets tier consumes.

Test timing is crowdsourced-like: test timestamps are biased toward the
evening (people run speed tests when the network feels slow), which
matters because the 95th-percentile rule then sees prime-time
conditions. Everything is deterministic under ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.measurements.collection import MeasurementSet
from repro.measurements.record import Measurement

from .clients import MeasurementClient, default_clients
from .congestion import SECONDS_PER_DAY, SECONDS_PER_HOUR
from .link import SubscriberLink, apply_wifi
from .population import RegionProfile, build_links
from .rng import make_rng


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one simulated measurement campaign."""

    subscribers: int = 150
    tests_per_client: int = 400
    days: float = 7.0
    start_timestamp: float = 0.0
    #: Probability that a test is scheduled in the 18:00-23:00 window.
    evening_bias: float = 0.5
    #: Share of tests run from behind imperfect home WiFi (confounder).
    wifi_share: float = 0.0

    def __post_init__(self) -> None:
        if self.subscribers < 1:
            raise ValueError(f"subscribers must be >= 1: {self.subscribers}")
        if self.tests_per_client < 1:
            raise ValueError(
                f"tests_per_client must be >= 1: {self.tests_per_client}"
            )
        if self.days <= 0:
            raise ValueError(f"days must be positive: {self.days}")
        if not 0.0 <= self.evening_bias <= 1.0:
            raise ValueError(
                f"evening_bias outside [0, 1]: {self.evening_bias}"
            )
        if not 0.0 <= self.wifi_share <= 1.0:
            raise ValueError(f"wifi_share outside [0, 1]: {self.wifi_share}")


def _draw_timestamp(
    rng: np.random.Generator, config: CampaignConfig
) -> float:
    """One crowdsourced-style test timestamp within the campaign window."""
    day = float(rng.integers(0, max(1, int(np.ceil(config.days)))))
    if rng.random() < config.evening_bias:
        hour = float(rng.uniform(18.0, 23.0))
    else:
        hour = float(rng.uniform(0.0, 24.0))
    timestamp = config.start_timestamp + day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
    limit = config.start_timestamp + config.days * SECONDS_PER_DAY
    return min(timestamp, limit - 1.0)


def simulate_region(
    profile: RegionProfile,
    seed: int,
    config: Optional[CampaignConfig] = None,
    clients: Optional[Sequence[MeasurementClient]] = None,
) -> MeasurementSet:
    """Simulate one region's measurement campaign.

    Each client (dataset) independently samples subscribers and times —
    the datasets do *not* test the same households at the same moments,
    just like the real NDT/Cloudflare/Ookla populations only overlap
    statistically.
    """
    config = config or CampaignConfig()
    clients = tuple(clients) if clients is not None else default_clients()
    links = build_links(profile, config.subscribers, seed)
    records: List[Measurement] = []
    for client in clients:
        rng = make_rng(seed, "campaign", profile.name, client.name)
        for _ in range(config.tests_per_client):
            link = links[int(rng.integers(0, len(links)))]
            if config.wifi_share > 0 and rng.random() < config.wifi_share:
                link = apply_wifi(link, rng)
            timestamp = _draw_timestamp(rng, config)
            utilization = profile.diurnal.sample_utilization(
                rng, timestamp, profile.load_factor
            )
            records.append(client.measure(link, utilization, timestamp, rng))
    return MeasurementSet(records)


def _simulate_profile_shard(
    payload: Tuple[Tuple[RegionProfile, ...], int, Optional[CampaignConfig], Optional[Tuple[MeasurementClient, ...]]],
    shard: Tuple[int, ...],
) -> List[Measurement]:
    """Simulate one shard of region campaigns (parallel worker side)."""
    profiles, seed, config, clients = payload
    records: List[Measurement] = []
    for index in shard:
        records.extend(
            simulate_region(
                profiles[index], seed=seed, config=config, clients=clients
            )
        )
    return records


def simulate_regions(
    profiles: Iterable[RegionProfile],
    seed: int,
    config: Optional[CampaignConfig] = None,
    clients: Optional[Sequence[MeasurementClient]] = None,
    workers: int = 1,
) -> MeasurementSet:
    """Simulate campaigns for several regions into one combined set.

    Each region's RNG streams derive only from ``(seed, region,
    client)``, so regions simulate independently: with ``workers > 1``
    the per-region campaigns fan out across a forked worker pool
    (:mod:`repro.parallel`) and concatenate in profile order —
    bit-identical to the serial loop.
    """
    profiles = tuple(profiles)
    if workers > 1 and len(profiles) > 1:
        from repro.parallel import ShardPlan, run_sharded

        plan = ShardPlan.for_keys(range(len(profiles)), workers)
        shard_records = run_sharded(
            _simulate_profile_shard,
            (profiles, seed, config, tuple(clients) if clients is not None else None),
            plan.shards,
            workers=workers,
            shard_keys=[
                tuple(profiles[index].name for index in shard)
                for shard in plan.shards
            ],
        )
        combined: List[Measurement] = []
        for part in shard_records:
            combined.extend(part)
        return MeasurementSet(combined)
    records: List[Measurement] = []
    for profile in profiles:
        records.extend(
            simulate_region(profile, seed=seed, config=config, clients=clients)
        )
    return MeasurementSet(records)


@dataclass(frozen=True)
class GroundTruth:
    """Population-level true link statistics, for validating clients."""

    region: str
    median_down_mbps: float
    median_up_mbps: float
    median_rtt_ms: float
    median_loss: float
    links: Tuple[SubscriberLink, ...] = field(repr=False, default=())


def ground_truth(
    profile: RegionProfile, seed: int, subscribers: int = 150
) -> GroundTruth:
    """The true (un-measured) link population behind a campaign.

    Useful for asserting that clients observe the simulator's ground
    truth with the intended methodology biases.
    """
    links = build_links(profile, subscribers, seed)
    downs = sorted(link.down_capacity_mbps for link in links)
    ups = sorted(link.up_capacity_mbps for link in links)
    rtts = sorted(link.base_rtt_ms for link in links)
    losses = sorted(link.base_loss for link in links)
    mid = len(links) // 2
    return GroundTruth(
        region=profile.name,
        median_down_mbps=downs[mid],
        median_up_mbps=ups[mid],
        median_rtt_ms=rtts[mid],
        median_loss=losses[mid],
        links=tuple(links),
    )
