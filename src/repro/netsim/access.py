"""Access-technology profiles.

A subscriber's last-mile technology determines the statistical envelope
of their link: how much capacity they bought, the symmetry of that
capacity, baseline RTT to nearby servers, steady-state random loss, and
how badly the link bloats under load. The constants here are plausible
2024-era characterizations (e.g. GPON fiber is symmetric and low-RTT;
DOCSIS cable is highly asymmetric with moderate bufferbloat; GEO
satellite has ~600 ms physics-bound RTT), chosen so that the *relative*
behaviour across technologies matches common measurement-community
knowledge. Absolute calibration is irrelevant to the reproduction — IQB
consumes whatever distribution it is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .rng import bounded_lognormal


@dataclass(frozen=True)
class AccessTechnology:
    """Distributional envelope of one last-mile technology."""

    name: str
    #: Median purchased downstream capacity (Mbit/s) and lognormal sigma.
    down_median_mbps: float
    down_sigma: float
    #: Upload expressed as a ratio of the drawn downstream capacity.
    up_ratio_low: float
    up_ratio_high: float
    #: Idle RTT envelope (ms): median, sigma, floor, ceiling.
    rtt_median_ms: float
    rtt_sigma: float
    rtt_floor_ms: float
    rtt_ceiling_ms: float
    #: Steady-state random loss (fraction): median and sigma (lognormal).
    loss_median: float
    loss_sigma: float
    #: Extra queueing delay at full utilization (ms): uniform range.
    bloat_low_ms: float
    bloat_high_ms: float
    #: Capacity clip range (Mbit/s) for the downstream draw.
    down_floor_mbps: float = 1.0
    down_ceiling_mbps: float = 5000.0

    def draw_down_capacity(self, rng: np.random.Generator) -> float:
        """Sample one subscriber's downstream capacity (Mbit/s)."""
        return bounded_lognormal(
            rng,
            self.down_median_mbps,
            self.down_sigma,
            self.down_floor_mbps,
            self.down_ceiling_mbps,
        )

    def draw_up_ratio(self, rng: np.random.Generator) -> float:
        """Sample the upload/download capacity ratio."""
        return float(rng.uniform(self.up_ratio_low, self.up_ratio_high))

    def draw_base_rtt(self, rng: np.random.Generator) -> float:
        """Sample one subscriber's idle RTT (ms)."""
        return bounded_lognormal(
            rng,
            self.rtt_median_ms,
            self.rtt_sigma,
            self.rtt_floor_ms,
            self.rtt_ceiling_ms,
        )

    def draw_loss(self, rng: np.random.Generator) -> float:
        """Sample one subscriber's steady-state random loss fraction."""
        return bounded_lognormal(
            rng, self.loss_median, self.loss_sigma, 1e-6, 0.2
        )

    def draw_bloat(self, rng: np.random.Generator) -> float:
        """Sample bufferbloat: added ms of delay at 100 % utilization."""
        return float(rng.uniform(self.bloat_low_ms, self.bloat_high_ms))


FIBER = AccessTechnology(
    name="fiber",
    down_median_mbps=500.0,
    down_sigma=0.5,
    up_ratio_low=0.8,
    up_ratio_high=1.0,
    rtt_median_ms=8.0,
    rtt_sigma=0.35,
    rtt_floor_ms=2.0,
    rtt_ceiling_ms=40.0,
    loss_median=0.0005,
    loss_sigma=0.8,
    bloat_low_ms=2.0,
    bloat_high_ms=20.0,
)

CABLE = AccessTechnology(
    name="cable",
    down_median_mbps=300.0,
    down_sigma=0.6,
    up_ratio_low=0.05,
    up_ratio_high=0.15,
    rtt_median_ms=15.0,
    rtt_sigma=0.4,
    rtt_floor_ms=5.0,
    rtt_ceiling_ms=80.0,
    loss_median=0.001,
    loss_sigma=0.9,
    bloat_low_ms=20.0,
    bloat_high_ms=150.0,
)

DSL = AccessTechnology(
    name="dsl",
    down_median_mbps=25.0,
    down_sigma=0.55,
    up_ratio_low=0.1,
    up_ratio_high=0.3,
    rtt_median_ms=30.0,
    rtt_sigma=0.4,
    rtt_floor_ms=10.0,
    rtt_ceiling_ms=120.0,
    loss_median=0.003,
    loss_sigma=0.9,
    bloat_low_ms=30.0,
    bloat_high_ms=250.0,
    down_ceiling_mbps=100.0,
)

LTE = AccessTechnology(
    name="lte",
    down_median_mbps=60.0,
    down_sigma=0.7,
    up_ratio_low=0.2,
    up_ratio_high=0.5,
    rtt_median_ms=40.0,
    rtt_sigma=0.45,
    rtt_floor_ms=15.0,
    rtt_ceiling_ms=200.0,
    loss_median=0.004,
    loss_sigma=1.0,
    bloat_low_ms=40.0,
    bloat_high_ms=300.0,
)

SATELLITE_GEO = AccessTechnology(
    name="satellite_geo",
    down_median_mbps=80.0,
    down_sigma=0.4,
    up_ratio_low=0.05,
    up_ratio_high=0.15,
    rtt_median_ms=620.0,
    rtt_sigma=0.1,
    rtt_floor_ms=550.0,
    rtt_ceiling_ms=800.0,
    loss_median=0.006,
    loss_sigma=0.8,
    bloat_low_ms=50.0,
    bloat_high_ms=400.0,
)

SATELLITE_LEO = AccessTechnology(
    name="satellite_leo",
    down_median_mbps=120.0,
    down_sigma=0.5,
    up_ratio_low=0.1,
    up_ratio_high=0.25,
    rtt_median_ms=45.0,
    rtt_sigma=0.35,
    rtt_floor_ms=20.0,
    rtt_ceiling_ms=150.0,
    loss_median=0.005,
    loss_sigma=0.9,
    bloat_low_ms=30.0,
    bloat_high_ms=200.0,
)

FIXED_WIRELESS = AccessTechnology(
    name="fixed_wireless",
    down_median_mbps=50.0,
    down_sigma=0.6,
    up_ratio_low=0.15,
    up_ratio_high=0.4,
    rtt_median_ms=25.0,
    rtt_sigma=0.45,
    rtt_floor_ms=8.0,
    rtt_ceiling_ms=150.0,
    loss_median=0.004,
    loss_sigma=1.0,
    bloat_low_ms=30.0,
    bloat_high_ms=250.0,
)

#: Registry by name, for config files and CLI flags.
TECHNOLOGIES: Dict[str, AccessTechnology] = {
    tech.name: tech
    for tech in (
        FIBER,
        CABLE,
        DSL,
        LTE,
        SATELLITE_GEO,
        SATELLITE_LEO,
        FIXED_WIRELESS,
    )
}


def technology(name: str) -> AccessTechnology:
    """Look up a technology by name.

    Raises:
        KeyError: naming the unknown technology and the known ones.
    """
    try:
        return TECHNOLOGIES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGIES))
        raise KeyError(f"unknown access technology {name!r}; known: {known}")


def technology_names() -> Tuple[str, ...]:
    """All registered technology names, sorted."""
    return tuple(sorted(TECHNOLOGIES))
