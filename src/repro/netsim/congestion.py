"""Diurnal congestion model.

Residential access networks breathe: utilization is lowest in the small
hours and peaks in the evening ("prime time"). The model is a smooth
two-bump curve — a small daytime plateau and a dominant evening peak —
scaled by a per-region load factor, plus zero-mean noise drawn per
measurement so two tests in the same hour do not see identical
conditions.

Hours are local fractional hours in [0, 24); timestamps convert via
``hour_of_day``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.timeutil import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    hour_of_day,
    is_weekend,
)

__all__ = [
    "DEFAULT_PROFILE",
    "DiurnalProfile",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "hour_of_day",
    "is_weekend",
]


@dataclass(frozen=True)
class DiurnalProfile:
    """Shape parameters for a region's daily utilization curve."""

    #: Baseline night-time utilization.
    base: float = 0.10
    #: Height of the daytime (working-hours) plateau.
    day_bump: float = 0.15
    #: Height of the evening prime-time peak.
    evening_peak: float = 0.45
    #: Hour of the evening peak centre.
    evening_hour: float = 20.5
    #: Width (std-dev, hours) of the evening peak.
    evening_width: float = 2.5
    #: Per-measurement gaussian noise on utilization.
    noise_sigma: float = 0.05
    #: Extra daytime utilization on weekends (people are home).
    weekend_day_bump: float = 0.12

    def utilization(
        self,
        hour: float,
        load_factor: float = 1.0,
        weekend: bool = False,
    ) -> float:
        """Mean utilization at ``hour``, scaled by the region's load.

        The result is clamped to [0, 1]; ``load_factor`` above 1 models
        oversubscribed regions that saturate in prime time. Weekends
        raise the daytime plateau (residential traffic moves home) but
        leave the evening peak in place.
        """
        if not 0.0 <= hour < 24.0:
            hour = hour % 24.0
        day_height = self.day_bump + (self.weekend_day_bump if weekend else 0.0)
        day = day_height * _bump(hour, centre=14.0, width=4.0)
        evening = self.evening_peak * _bump(
            hour, centre=self.evening_hour, width=self.evening_width
        )
        value = (self.base + day + evening) * load_factor
        return min(max(value, 0.0), 1.0)

    def sample_utilization(
        self,
        rng: np.random.Generator,
        timestamp: float,
        load_factor: float = 1.0,
    ) -> float:
        """Utilization at a timestamp, with per-measurement noise."""
        mean = self.utilization(
            hour_of_day(timestamp), load_factor, weekend=is_weekend(timestamp)
        )
        value = mean + float(rng.normal(0.0, self.noise_sigma))
        return min(max(value, 0.0), 1.0)


def _bump(hour: float, centre: float, width: float) -> float:
    """Circular gaussian bump on the 24-hour clock, peak value 1."""
    delta = abs(hour - centre)
    delta = min(delta, 24.0 - delta)
    return math.exp(-0.5 * (delta / width) ** 2)


#: A single shared default; regions differ through ``load_factor``.
DEFAULT_PROFILE = DiurnalProfile()
