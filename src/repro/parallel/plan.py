"""Shard planning: deterministic partitioning of work across workers.

The IQB score is embarrassingly parallel across regions — Eqs. 1–5
never mix measurements from two regions — so the unit of parallel work
is a *shard*: a disjoint, contiguous slice of the (caller-ordered) key
list. :class:`ShardPlan` owns the partitioning arithmetic and nothing
else: shards are balanced (sizes differ by at most one), cover every
key exactly once, and the plan for a given ``(keys, workers)`` pair is
a pure function of its inputs, which is what makes parallel results
reproducible and mergeable in a fixed order.

Keys are taken in the order given — callers that need a canonical
order (the scoring fan-out sorts regions) sort before planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple


@dataclass(frozen=True)
class ShardPlan:
    """A disjoint, covering partition of keys into ordered shards."""

    shards: Tuple[Tuple[Hashable, ...], ...]

    @classmethod
    def for_keys(
        cls, keys: Sequence[Hashable], workers: int
    ) -> "ShardPlan":
        """Partition ``keys`` into at most ``workers`` balanced shards.

        With fewer keys than workers every shard holds exactly one key
        (no empty shards are ever produced); with zero keys the plan is
        empty. Shard sizes differ by at most one, with the earlier
        shards taking the remainder.

        Raises:
            ValueError: when ``workers`` is not positive.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        keys = tuple(keys)
        count = len(keys)
        if count == 0:
            return cls(shards=())
        shard_count = min(workers, count)
        base, extra = divmod(count, shard_count)
        shards = []
        start = 0
        for index in range(shard_count):
            size = base + (1 if index < extra else 0)
            shards.append(keys[start : start + size])
            start += size
        return cls(shards=tuple(shards))

    @property
    def shard_count(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    @property
    def keys(self) -> Tuple[Hashable, ...]:
        """Every key, in plan order (shard 0 first)."""
        return tuple(key for shard in self.shards for key in shard)

    def shard_of(self, key: Hashable) -> int:
        """Index of the shard holding ``key``.

        Raises:
            KeyError: when the key is not in the plan.
        """
        for index, shard in enumerate(self.shards):
            if key in shard:
                return index
        raise KeyError(key)

    def assignment(self) -> Dict[Hashable, int]:
        """Mapping of every key to its shard index."""
        return {
            key: index
            for index, shard in enumerate(self.shards)
            for key in shard
        }

    def __len__(self) -> int:
        return len(self.shards)

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(shard)) for shard in self.shards)
        return f"ShardPlan({self.shard_count} shards: [{sizes}])"
