"""Parallel file ingest: byte-range splitting + sharded JSONL/CSV readers.

A measurement dump is a line-oriented file, so it splits for free: pick
``workers`` byte offsets, slide each forward to the next newline, and
every worker decodes a disjoint, line-aligned byte range with exactly
the serial decode step (:func:`json.loads` + ``Measurement.from_dict``
for JSONL, :func:`~repro.measurements.io.csv_row_to_measurement` for
CSV). The parent concatenates the per-range record lists in range
order, so the resulting :class:`~repro.measurements.collection.\
MeasurementSet` is record-for-record identical to the serial readers.

Accounting mirrors the serial readers: workers bump the same
``ingest.*`` counters (their registry snapshots merge into the parent
via the pool), per-range :class:`~repro.measurements.io.IngestStats`
are summed into the caller's ``stats``, and skip mode logs one WARNING
with the total drop count.

Error semantics differ in one documented way: a malformed line in
``"raise"`` mode reports its line number *within the failing byte
range* (prefixed with the range's offsets) rather than a global line
number, because no worker knows how many lines precede its range.

Known constraint: the splitter assumes one record per line. That is
always true for JSONL and for CSV files written by
:func:`~repro.measurements.io.write_csv`; CSV files with embedded
newlines inside quoted fields must use the serial reader.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import List, Optional, Tuple, Union

from repro.core.exceptions import SchemaError
from repro.measurements.collection import MeasurementSet
from repro.measurements.io import (
    IngestStats,
    csv_row_to_measurement,
    read_csv,
    read_jsonl,
)
from repro.measurements.record import Measurement
from repro.obs import counter, get_logger, span

from .pool import ShardError, run_sharded

_PathLike = Union[str, "os.PathLike[str]"]

_logger = get_logger(__name__)

ByteRange = Tuple[int, int]


def split_line_ranges(
    path: _PathLike, parts: int, offset: int = 0
) -> List[ByteRange]:
    """Split ``path`` into at most ``parts`` line-aligned byte ranges.

    Every range starts at a line boundary and ends at one (or EOF), the
    ranges are disjoint, and together they cover ``[offset, filesize)``
    exactly. Short files yield fewer ranges than requested — possibly
    just one — never an empty range.

    Args:
        offset: where coverage starts; the CSV reader passes the byte
            just past the header line.

    Raises:
        ValueError: when ``parts`` is not positive.
        OSError: when the file cannot be stat'ed or read.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1: {parts}")
    size = os.path.getsize(path)
    if offset >= size:
        return []
    boundaries = [offset]
    with open(path, "rb") as handle:
        for index in range(1, parts):
            target = offset + ((size - offset) * index) // parts
            if target <= boundaries[-1]:
                continue
            handle.seek(target)
            handle.readline()  # slide forward to the next line boundary
            position = handle.tell()
            if position >= size:
                break
            if position > boundaries[-1]:
                boundaries.append(position)
    boundaries.append(size)
    return [
        (boundaries[index], boundaries[index + 1])
        for index in range(len(boundaries) - 1)
    ]


def _range_label(path: str, start: int, end: int, lineno: int) -> str:
    return f"{path}: line {lineno} of byte range [{start}, {end})"


def _read_jsonl_range(
    payload: Tuple[str, str], shard: ByteRange
) -> Tuple[List[Measurement], IngestStats]:
    """Decode one byte range of a JSONL file (worker side)."""
    path, on_error = payload
    start, end = shard
    read_count = counter("ingest.jsonl.lines")
    skip_count = counter("ingest.jsonl.skipped")
    stats = IngestStats()
    records: List[Measurement] = []
    with open(path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    for lineno, raw in enumerate(data.split(b"\n"), start=1):
        line = raw.decode("utf-8").strip()
        if not line:
            continue
        try:
            record = Measurement.from_dict(json.loads(line))
        except (json.JSONDecodeError, SchemaError) as exc:
            if on_error == "skip":
                skip_count.inc()
                stats.skipped += 1
                if _logger.isEnabledFor(10):  # logging.DEBUG
                    _logger.debug(
                        "skipped malformed line",
                        extra={
                            "ctx": {
                                "path": path,
                                "range": [start, end],
                                "line": lineno,
                            }
                        },
                    )
                continue
            raise SchemaError(
                f"{_range_label(path, start, end, lineno)}: {exc}"
            ) from exc
        read_count.inc()
        stats.read += 1
        records.append(record)
    return records, stats


def _read_csv_range(
    payload: Tuple[str, Tuple[str, ...], str], shard: ByteRange
) -> Tuple[List[Measurement], IngestStats]:
    """Decode one byte range of a CSV file (worker side).

    The header line is excluded from every range; the parent reads it
    once and ships the field names in the payload.
    """
    path, fieldnames, on_error = payload
    start, end = shard
    read_count = counter("ingest.csv.rows")
    skip_count = counter("ingest.csv.skipped")
    stats = IngestStats()
    records: List[Measurement] = []
    with open(path, "rb") as handle:
        handle.seek(start)
        data = handle.read(end - start)
    reader = csv.DictReader(
        io.StringIO(data.decode("utf-8"), newline=""),
        fieldnames=list(fieldnames),
    )
    for lineno, row in enumerate(reader, start=1):
        try:
            record = csv_row_to_measurement(
                {key: value for key, value in row.items() if key is not None}
            )
        except SchemaError as exc:
            if on_error == "skip":
                skip_count.inc()
                stats.skipped += 1
                if _logger.isEnabledFor(10):  # logging.DEBUG
                    _logger.debug(
                        "skipped malformed row",
                        extra={
                            "ctx": {
                                "path": path,
                                "range": [start, end],
                                "line": lineno,
                            }
                        },
                    )
                continue
            raise SchemaError(
                f"{_range_label(path, start, end, lineno)}: {exc}"
            ) from exc
        read_count.inc()
        stats.read += 1
        records.append(record)
    return records, stats


def _merge_range_results(
    parts: List[Tuple[List[Measurement], IngestStats]],
    stats: IngestStats,
    path: _PathLike,
    noun: str,
) -> MeasurementSet:
    records: List[Measurement] = []
    for part_records, part_stats in parts:
        records.extend(part_records)
        stats.read += part_stats.read
        stats.skipped += part_stats.skipped
    if stats.skipped:
        _logger.warning(
            "skipped %d malformed %s(s) reading %s",
            stats.skipped,
            noun,
            path,
            extra={"ctx": {"read": stats.read, "skipped": stats.skipped}},
        )
    return MeasurementSet._adopt(records, shared=False)


def _unwrap_shard_error(exc: ShardError) -> None:
    """Re-raise an ingest ShardError as its file-level cause.

    The CLI contract maps :class:`SchemaError` and :class:`OSError` to
    exit code 2 with a one-line message; a sharded read must not change
    that, so those causes propagate as themselves (the ShardError rides
    along as ``__cause__`` for anyone who wants the shard context).
    """
    if isinstance(exc.cause, (SchemaError, OSError)):
        raise exc.cause from exc


def read_jsonl_parallel(
    path: _PathLike,
    workers: int,
    on_error: str = "raise",
    stats: Optional[IngestStats] = None,
) -> MeasurementSet:
    """Sharded :func:`~repro.measurements.io.read_jsonl`.

    Identical records, counters, stats, and skip WARNING; see the
    module docstring for the one difference in raise-mode line numbers.
    ``workers <= 1`` delegates to the serial reader outright.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip': {on_error!r}")
    if stats is None:
        stats = IngestStats()
    if workers <= 1:
        return read_jsonl(path, on_error=on_error, stats=stats)
    with span("ingest_parallel", format="jsonl", workers=workers) as stage:
        ranges = split_line_ranges(path, workers)
        stage.annotate(ranges=len(ranges))
        if not ranges:
            return MeasurementSet._adopt([], shared=False)
        try:
            parts = run_sharded(
                _read_jsonl_range,
                (str(path), on_error),
                ranges,
                workers=workers,
            )
        except ShardError as exc:
            _unwrap_shard_error(exc)
            raise
        return _merge_range_results(parts, stats, path, "line")


def read_csv_parallel(
    path: _PathLike,
    workers: int,
    on_error: str = "raise",
    stats: Optional[IngestStats] = None,
) -> MeasurementSet:
    """Sharded :func:`~repro.measurements.io.read_csv`.

    The header row is read once in the parent; workers decode disjoint
    line-aligned byte ranges of the body. Requires one record per line
    (always true for :func:`~repro.measurements.io.write_csv` output).
    ``workers <= 1`` delegates to the serial reader outright.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip': {on_error!r}")
    if stats is None:
        stats = IngestStats()
    if workers <= 1:
        return read_csv(path, on_error=on_error, stats=stats)
    with span("ingest_parallel", format="csv", workers=workers) as stage:
        with open(path, "rb") as handle:
            header = handle.readline()
            body_start = handle.tell()
        if not header.strip():
            return MeasurementSet._adopt([], shared=False)
        fieldnames = tuple(
            next(csv.reader([header.decode("utf-8")]))
        )
        ranges = split_line_ranges(path, workers, offset=body_start)
        stage.annotate(ranges=len(ranges))
        if not ranges:
            return MeasurementSet._adopt([], shared=False)
        try:
            parts = run_sharded(
                _read_csv_range,
                (str(path), fieldnames, on_error),
                ranges,
                workers=workers,
            )
        except ShardError as exc:
            _unwrap_shard_error(exc)
            raise
        return _merge_range_results(parts, stats, path, "row")
