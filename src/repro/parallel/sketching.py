"""Parallel sketch-plane construction: shard by region, merge digests.

The streaming counterpart of :func:`.scoring.score_regions_parallel`
for *plane building*: a large finished batch is partitioned into region
shards, each worker folds its shard's records into a private
:class:`~repro.measurements.sketchplane.SketchPlane`, and the parent
merges the per-shard planes. Because regions partition the records and
a plane's (region, dataset) cells only ever see their own region's
measurements, the per-shard planes cover disjoint cells and the merge
is a cell union — the merged plane has exactly the counts (and
sketch-equivalent quantiles) of a single serial pass, the same
contract PR 4's shard timer digests rely on.

Workers ship ``SketchPlane.to_state()`` dicts back to the parent (the
plane's own serialization, so nothing here needs to pickle live
t-digests); the parent rebuilds and merges.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from repro.measurements.sketchplane import SketchPlane
from repro.measurements.tdigest import DEFAULT_DELTA

from .plan import ShardPlan
from .pool import run_sharded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measurements.record import Measurement


def _sketch_shard(
    payload: Tuple[Dict[str, List["Measurement"]], int],
    shard: Tuple[str, ...],
) -> dict:
    """Sketch one shard of regions; returns the plane's state dict."""
    groups, delta = payload
    plane = SketchPlane(delta=delta)
    for region in shard:
        plane.extend(groups[region])
    return plane.to_state()


def sketch_records_parallel(
    records: Iterable["Measurement"],
    workers: int,
    delta: int = DEFAULT_DELTA,
) -> SketchPlane:
    """Multi-worker :func:`~repro.measurements.sketchplane.sketch_records`.

    Args:
        records: any iterable of Measurement records (or a
            ``ColumnarStore``, sketched from its record list).
        workers: target pool size; ``<= 1`` still runs through the
            sharded path serially (same output, no fork).
        delta: t-digest compression factor for every cell.

    Returns:
        One merged :class:`SketchPlane` covering every record, with the
        same per-cell counts a serial ``sketch_records`` pass builds.

    Raises:
        ShardError: when a worker shard fails (after the serial retry),
            naming its regions.
    """
    record_list = (
        records.records()
        if hasattr(records, "records")
        else list(records)
    )
    groups: Dict[str, List["Measurement"]] = {}
    for record in record_list:
        groups.setdefault(record.region, []).append(record)
    if not groups:
        return SketchPlane(delta=delta)

    plan = ShardPlan.for_keys(sorted(groups), workers)
    states = run_sharded(
        _sketch_shard, (groups, delta), plan.shards, workers=workers
    )
    merged = SketchPlane(delta=delta)
    for state in states:
        merged = merged.merge(SketchPlane.from_state(state))
    return merged
