"""Parallel region scoring: shard by region, merge bit-identically.

The fan-out behind ``score_regions(records, config, workers=N)``.
Regions are independent under Eqs. 1–5, so the batch partitions into
region shards (:class:`~repro.parallel.plan.ShardPlan` over the sorted
region list) and each worker scores its shard with exactly the serial
machinery: it builds a private
:class:`~repro.measurements.columnar.ColumnarStore` over only its
shard's records and calls :func:`repro.core.scoring.score_region` per
region. Because a region's sorted per-(dataset, metric) columns are
identical whether the store holds one region or the whole country, the
merged output is **bit-identical** to the serial batch path — the same
contract the columnar plane established against the original
re-group-per-region loop (property tests assert dict equality for
uneven worker/region ratios).

Inputs follow :func:`repro.core.scoring.score_regions`: a record
iterable / MeasurementSet / ColumnarStore (sharded by grouping raw
records per region), or a pre-grouped ``region → {dataset →
QuantileSource}`` mapping (sharded by region name; the sources travel
to workers by fork inheritance, so they never need to pickle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from repro.core.exceptions import DataError
from repro.core.scoring import score_region

from .plan import ShardPlan
from .pool import run_sharded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import IQBConfig
    from repro.core.scoring import ScoreBreakdown
    from repro.measurements.record import Measurement
    from repro.obs import Span


def _score_records_shard(
    payload: Tuple[
        Dict[str, List["Measurement"]], "IQBConfig", str, Optional[str]
    ],
    shard: Tuple[str, ...],
) -> Dict[str, "ScoreBreakdown"]:
    """Score one shard of regions from raw records (worker side)."""
    # Imported here, not at module top: repro.measurements imports
    # repro.core, and keeping this module importable from repro.core's
    # lazy fan-out must not close that cycle at import time.
    from repro.core.scoring import _effective_modes, _grouped_sources
    from repro.measurements.columnar import ColumnarStore

    groups, config, kernel, quantiles = payload
    records = [
        record for region in shard for record in groups[region]
    ]
    store = ColumnarStore(records)
    modes = _effective_modes(config, quantiles)
    if kernel == "vectorized":
        from repro.core.kernel import score_store

        # A region's cube cells are identical whether the store holds
        # one region or the whole country, so per-shard kernel runs
        # merge bit-identically — same argument as the scalar path.
        # (Sketch cells are shard-local too: a region's digests see
        # exactly its own records regardless of sharding.)
        return score_store(store, config, modes=modes)
    grouped, label = _grouped_sources(store, config, modes)
    return {
        region: score_region(
            grouped[region], config, quantile_source=label
        )
        for region in shard
    }


def _score_grouped_shard(
    payload: Tuple[
        Mapping[str, Mapping[str, object]], "IQBConfig", str, str
    ],
    shard: Tuple[str, ...],
) -> Dict[str, "ScoreBreakdown"]:
    """Score one shard of regions from pre-grouped sources (worker side).

    Pre-grouped sources are opaque QuantileSources, so this worker is
    always the exact scalar path regardless of the requested kernel
    (the same automatic fallback the serial path applies); the payload
    carries the provenance label to stamp on the breakdowns.
    """
    grouped, config, _, label = payload
    return {
        region: score_region(
            grouped[region], config, quantile_source=label
        )
        for region in shard
    }


def score_regions_parallel(
    records: object,
    config: "IQBConfig",
    workers: int,
    stage: Optional["Span"] = None,
    kernel: str = "vectorized",
    quantiles: Optional[str] = None,
) -> Dict[str, "ScoreBreakdown"]:
    """Sharded :func:`repro.core.scoring.score_regions` (see module doc).

    Prefer calling ``score_regions(records, config, workers=N)``; this
    is its implementation. Worker telemetry (quantile-cache counters,
    span timers) merges into the parent registry, so `iqb metrics`
    reads the same under any worker count. Each record-backed shard
    runs the requested kernel over its private store (resolving the
    exact/sketch quantile plane from ``quantiles`` / the config policy
    exactly like the serial path); pre-grouped mappings and sketch
    planes fall back to the scalar path over their existing sources.

    Raises:
        DataError: when the batch holds no regions.
        ShardError: when a worker shard fails, naming its regions.
    """
    tail: Tuple[object, ...]
    if isinstance(records, Mapping):
        grouped: Mapping[str, object] = records
        worker = _score_grouped_shard
        tail = (kernel, "exact")
    elif getattr(records, "QUANTILE_SOURCE", "exact") == "sketch":
        # A sketch plane carries no raw records to reshard; its views
        # fork to workers and each shard scores the scalar path.
        if quantiles == "exact":
            raise ValueError(
                "a sketch plane carries no exact quantile plane; score "
                "the raw records to use quantiles='exact'"
            )
        grouped = records.sources_by_region()  # type: ignore[attr-defined]
        worker = _score_grouped_shard
        tail = (kernel, "sketch")
    else:
        from repro.measurements.columnar import ColumnarStore

        record_list = (
            records.records()
            if isinstance(records, ColumnarStore)
            else list(records)  # type: ignore[call-overload]
        )
        groups: Dict[str, List["Measurement"]] = {}
        for record in record_list:
            groups.setdefault(record.region, []).append(record)
        grouped = groups
        worker = _score_records_shard
        tail = (kernel, quantiles)
    if not grouped:
        raise DataError("score_regions needs at least one region of data")

    plan = ShardPlan.for_keys(sorted(grouped), workers)
    if stage is not None:
        stage.annotate(
            regions=len(grouped), workers=workers, shards=plan.shard_count
        )
    shard_results = run_sharded(
        worker, (grouped, config) + tail, plan.shards, workers=workers
    )
    merged: Dict[str, "ScoreBreakdown"] = {}
    for part in shard_results:
        merged.update(part)
    return merged
