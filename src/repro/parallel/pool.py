"""Sharded process-pool execution with merged telemetry.

The execution layer under every parallel fan-out in the pipeline
(region scoring, file ingest, campaign simulation). One call shape:

    results = run_sharded(worker, payload, shards, workers=N)

``worker(payload, shard)`` is a module-level function; ``payload`` is
the large shared input (a record grouping, a config) and each ``shard``
is a small descriptor of one slice of the work (region names, a byte
range). Results come back as a list in *shard order*, regardless of
completion order, so parallel output merges deterministically.

Design decisions, in order of importance:

1. **The payload travels by fork, not pickle.** Workers are forked
   (copy-on-write) after the payload is stashed in a module global, so
   a multi-hundred-megabyte record batch costs nothing to "send". Only
   the shard descriptors, the results, and the telemetry snapshots
   cross the pipe. On platforms without ``fork`` the call degrades to
   the serial path — same results, one process.

2. **Telemetry survives the fork.** Each worker process resets its
   inherited default :class:`~repro.obs.registry.MetricsRegistry`
   before a shard, runs the shard under a ``span("shard")`` annotated
   with the worker's pid, then ships ``snapshot(include_digests=True)``
   home; the parent folds every snapshot into its own registry via
   :meth:`~repro.obs.registry.MetricsRegistry.merge` in shard order.
   Counters (quantile-cache hits, ingest skips) and span timers
   therefore read the same under ``iqb metrics`` whether the run was
   serial or sharded.

3. **Crash isolation names the shard.** A worker exception is caught
   in the worker, transported back (as the original exception when it
   pickles), and re-raised as :class:`ShardError` carrying the failed
   shard's key list — never a bare ``BrokenProcessPool`` with no clue
   which regions were in flight. A hard worker death (signal, OOM) and
   an untransportable result are mapped the same way from the future
   that observed them. Before giving up, a poisoned shard is retried
   *serially in the parent* (default on): transient worker faults heal
   with the run completing normally, and only a shard that fails twice
   raises — or, when the caller passes a ``quarantine`` list, is
   reported there (result ``None``) while the rest of the run finishes.

4. **Serial fallback is the same code path.** ``workers <= 1``, a
   single shard, an unavailable ``fork`` start method, or shard
   descriptors that don't pickle all run ``worker(payload, shard)``
   inline in-process — instruments then land in the parent registry
   directly, and failures raise the same :class:`ShardError`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import REGISTRY, counter, gauge, span
from repro.obs.spans import (
    TraceRecorder,
    get_trace_recorder,
    install_trace_recorder,
    set_remote_parent,
)

_SHARDS_COMPLETED = counter("parallel.shards.completed")
_SHARDS_FAILED = counter("parallel.shards.failed")
_SHARDS_RETRIED = counter("parallel.shards.retried")
_SHARDS_QUARANTINED = counter("parallel.shards.quarantined")
_SERIAL_FALLBACKS = counter("parallel.serial_fallbacks")
_POOL_WORKERS = gauge("parallel.pool.workers")

#: The fork-shared payload: set by :func:`run_sharded` immediately
#: before the pool forks, inherited copy-on-write by every worker,
#: cleared when the fan-out finishes. Never pickled.
_PAYLOAD: Any = None

ShardWorker = Callable[[Any, Any], Any]


class ShardError(RuntimeError):
    """One shard of a parallel fan-out failed.

    Carries the shard's index and key list (the regions / ranges it
    covered) plus the underlying cause, so an operator sees *which*
    slice of the work died instead of a bare pool error.
    """

    def __init__(
        self, shard_index: int, keys: Sequence[Any], cause: object
    ) -> None:
        self.shard_index = shard_index
        self.keys = tuple(keys)
        self.cause = cause
        shown = ", ".join(str(key) for key in self.keys[:8])
        if len(self.keys) > 8:
            shown += ", ..."
        super().__init__(
            f"shard {shard_index} ({len(self.keys)} key(s): {shown}) "
            f"failed: {cause}"
        )


def fork_available() -> bool:
    """Whether this platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


def _shipped_spans(
    recorder: Optional[TraceRecorder],
) -> Optional[Tuple[float, List[Dict[str, object]]]]:
    """A worker recorder's records as a picklable adopt() payload.

    Field values are coerced the same way the Chrome exporter coerces
    them, so an unpicklable annotation object cannot poison the shard
    result on its way home.
    """
    if recorder is None:
        return None
    entries: List[Dict[str, object]] = []
    for record in recorder.records():
        entry = dataclasses.asdict(record)
        entry["fields"] = {
            key: value if isinstance(value, (int, float, bool)) else str(value)
            for key, value in record.fields.items()
        }
        entries.append(entry)
    return (recorder.started_unix, entries)


def _run_shard(
    worker: ShardWorker,
    index: int,
    shard: Any,
    trace_ctx: Optional[Tuple[str, str]] = None,
) -> Tuple:
    """Worker-side wrapper: isolate telemetry, contain failures.

    Runs in the forked child. The registry reset makes the returned
    snapshot cover exactly this shard even when the pool reuses one
    process for several shards (without it a reused worker would ship
    cumulative counts and the parent would double-merge). Trace
    isolation mirrors it: the fork-inherited trace recorder (when the
    parent is tracing) is replaced with a private one whose records
    ship home with the result, and ``trace_ctx`` — the parent fan-out
    span's (trace_id, span_id) — is adopted so the shard span nests
    under it in the merged trace.
    """
    from repro.obs import reset

    reset()
    recorder: Optional[TraceRecorder] = None
    if get_trace_recorder() is not None:
        recorder = TraceRecorder()
        install_trace_recorder(recorder)
    if trace_ctx is not None:
        set_remote_parent(*trace_ctx)
    try:
        with span("shard", shard=index, worker=os.getpid()):
            result = worker(_PAYLOAD, shard)
        return (
            "ok",
            index,
            result,
            REGISTRY.snapshot(include_digests=True),
            _shipped_spans(recorder),
        )
    except Exception as exc:
        transported: object = (
            exc if _picklable(exc) else f"{type(exc).__name__}: {exc}"
        )
        return (
            "error",
            index,
            transported,
            REGISTRY.snapshot(include_digests=True),
            _shipped_spans(recorder),
        )


def _shard_keys_for(
    shards: Sequence[Any], shard_keys: Optional[Sequence[Sequence[Any]]]
) -> List[Tuple[Any, ...]]:
    if shard_keys is not None:
        return [tuple(keys) for keys in shard_keys]
    return [
        tuple(shard) if isinstance(shard, (tuple, list)) else (shard,)
        for shard in shards
    ]


def _run_serial(
    worker: ShardWorker,
    payload: Any,
    shards: Sequence[Any],
    keys: List[Tuple[Any, ...]],
    quarantine: Optional[List[ShardError]] = None,
) -> List[Any]:
    """In-process execution with the same ShardError contract."""
    _SERIAL_FALLBACKS.inc()
    results: List[Any] = []
    for index, shard in enumerate(shards):
        try:
            with span("shard", shard=index, worker=os.getpid()):
                results.append(worker(payload, shard))
        except Exception as exc:
            _SHARDS_FAILED.inc()
            error = ShardError(index, keys[index], exc)
            error.__cause__ = exc
            if quarantine is not None:
                _SHARDS_QUARANTINED.inc()
                quarantine.append(error)
                results.append(None)
                continue
            raise error from exc
        _SHARDS_COMPLETED.inc()
    return results


def _recover_shard(
    worker: ShardWorker,
    payload: Any,
    shard: Any,
    index: int,
    keys: List[Tuple[Any, ...]],
    cause: object,
    retry_failed: bool,
    quarantine: Optional[List[ShardError]],
    results: List[Any],
) -> None:
    """Handle one poisoned shard: retry serially, then quarantine/raise.

    The retry runs in the parent process, so its telemetry lands in the
    parent registry directly and a crash-prone worker environment (OOM,
    signal) is taken out of the equation for the second attempt.
    """
    _SHARDS_FAILED.inc()
    error: ShardError
    if retry_failed:
        _SHARDS_RETRIED.inc()
        try:
            with span("shard_retry", shard=index, worker=os.getpid()):
                results[index] = worker(payload, shard)
        except Exception as retry_exc:
            error = ShardError(index, keys[index], retry_exc)
            error.__cause__ = retry_exc
        else:
            _SHARDS_COMPLETED.inc()
            return
    else:
        error = ShardError(index, keys[index], cause)
        if isinstance(cause, BaseException):
            error.__cause__ = cause
    if quarantine is not None:
        _SHARDS_QUARANTINED.inc()
        quarantine.append(error)
        results[index] = None
        return
    raise error


def run_sharded(
    worker: ShardWorker,
    payload: Any,
    shards: Sequence[Any],
    workers: int,
    shard_keys: Optional[Sequence[Sequence[Any]]] = None,
    retry_failed: bool = True,
    quarantine: Optional[List[ShardError]] = None,
) -> List[Any]:
    """Run ``worker(payload, shard)`` over every shard; results in order.

    Args:
        worker: a module-level function (it crosses the process
            boundary by reference) taking ``(payload, shard)``.
        payload: the shared input, delivered to workers by fork
            inheritance — never pickled, so size is effectively free.
        shards: small per-shard descriptors (region-name tuples, byte
            ranges); these *are* pickled, keep them light.
        workers: target pool size; the pool never exceeds the shard
            count. ``<= 1`` runs serially.
        shard_keys: optional per-shard key lists for error reporting;
            defaults to the shard descriptors themselves.
        retry_failed: retry a poisoned shard serially in the parent
            before giving up on it (transient worker faults — a killed
            process, an untransportable result — heal in place;
            deterministic worker exceptions fail again and surface).
        quarantine: when given, shards that still fail after the retry
            are reported here as :class:`ShardError` entries with a
            ``None`` result, and the run completes instead of raising.

    Returns:
        Per-shard results, index-aligned with ``shards`` regardless of
        completion order (``None`` for quarantined shards).

    Raises:
        ShardError: when any shard fails (worker exception, worker
            process death, or untransportable result), its serial retry
            also fails, and no ``quarantine`` was given — naming the
            shard's keys. Worker telemetry collected before the failure
            is still merged.
    """
    shards = list(shards)
    keys = _shard_keys_for(shards, shard_keys)
    if len(keys) != len(shards):
        raise ValueError(
            f"shard_keys length {len(keys)} != shard count {len(shards)}"
        )
    if not shards:
        return []
    if (
        workers <= 1
        or len(shards) <= 1
        or not fork_available()
        or not _picklable(shards)
    ):
        return _run_serial(worker, payload, shards, keys, quarantine)

    global _PAYLOAD
    pool_size = min(workers, len(shards))
    _POOL_WORKERS.set(pool_size)
    _PAYLOAD = payload
    results: List[Any] = [None] * len(shards)
    try:
        with span(
            "parallel_fanout", workers=pool_size, shards=len(shards)
        ) as fanout:
            trace_ctx = (fanout.trace_id, fanout.span_id)
            with ProcessPoolExecutor(
                max_workers=pool_size,
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                futures = [
                    pool.submit(
                        _run_shard, worker, index, shard, trace_ctx
                    )
                    for index, shard in enumerate(shards)
                ]
                for index, future in enumerate(futures):
                    try:
                        (
                            status,
                            _,
                            outcome,
                            metrics,
                            shipped,
                        ) = future.result()
                    except BrokenProcessPool as exc:
                        _recover_shard(
                            worker, payload, shards[index], index, keys,
                            f"worker process died: {exc}",
                            retry_failed, quarantine, results,
                        )
                        continue
                    except Exception as exc:
                        # The shard "succeeded" but its result (or the
                        # transported exception) could not cross the
                        # pipe — e.g. an unpicklable return value.
                        _recover_shard(
                            worker, payload, shards[index], index, keys,
                            f"shard result not transportable: {exc}",
                            retry_failed, quarantine, results,
                        )
                        continue
                    if metrics:
                        REGISTRY.merge(metrics)
                    if shipped is not None:
                        recorder = get_trace_recorder()
                        if recorder is not None:
                            recorder.adopt(*shipped)
                    if status == "error":
                        _recover_shard(
                            worker, payload, shards[index], index, keys,
                            outcome, retry_failed, quarantine, results,
                        )
                        continue
                    _SHARDS_COMPLETED.inc()
                    results[index] = outcome
    finally:
        _PAYLOAD = None
    return results
