"""Sharded parallel execution: multi-worker scoring and ingest.

The pipeline's fan-out layer. :class:`ShardPlan` partitions work into
disjoint, deterministic shards; :func:`run_sharded` executes a worker
function over the shards in a forked process pool (payload delivered by
fork inheritance, per-worker telemetry snapshots merged back into the
parent registry, failures re-raised as :class:`ShardError` naming the
failed shard's keys); :func:`score_regions_parallel` and the
``read_*_parallel`` readers are the two fan-outs the CLI's global
``--workers`` flag drives. Parallel output is bit-identical to serial
output by construction — see each module's docstring for the argument.
"""

from .ingest import (
    read_csv_parallel,
    read_jsonl_parallel,
    split_line_ranges,
)
from .plan import ShardPlan
from .pool import ShardError, fork_available, run_sharded
from .scoring import score_regions_parallel
from .sketching import sketch_records_parallel

__all__ = [
    "ShardPlan",
    "ShardError",
    "fork_available",
    "run_sharded",
    "score_regions_parallel",
    "sketch_records_parallel",
    "read_jsonl_parallel",
    "read_csv_parallel",
    "split_line_ranges",
]
