"""The content-addressed cache layout: paths, entries, manifests.

This module is the on-disk contract of the dataset cache, reproducing
m-lab's production data-distribution design: a versioned

    cache root/
      MANIFEST.json                      <- signed-by-digest index
      v1/{period}/{source}_by_{granularity}/{sha256}.json
      quarantine/                        <- digest-mismatched bytes
      partial/                           <- in-flight .part downloads

tree in which every artifact is *named by the SHA-256 of its bytes*.
Content addressing is what makes the whole robustness story simple:
an artifact can be verified with nothing but its own filename, a
transfer is resumable because a half-fetched file simply has the
wrong digest until it is whole, and incremental append reduces to a
set difference over manifest entries.

``MANIFEST.json`` lists every artifact (path, digest, size, period,
plane, record count) plus a ``manifest_sha256`` computed over the
canonical serialization of the entries themselves — the same
digest-the-canonical-JSON move as
:func:`repro.obs.manifest.config_digest` — so a tampered or torn
manifest is detected before any artifact it names is trusted.
:class:`~repro.obs.manifest.RunManifest` records this digest for
``--from-cache`` runs, which is what makes a published score
reproducible from a cache snapshot.

Path components are validated against strict patterns before they are
joined: a manifest is remote input, and a hostile ``path`` entry must
not be able to escape the cache root.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.exceptions import IntegrityError

#: Bump when the on-disk layout changes incompatibly.
CACHE_VERSION = 1

#: The versioned artifact tree at the cache root.
VERSION_DIR = "v1"

#: The manifest filename at the cache root (and on remotes).
MANIFEST_NAME = "MANIFEST.json"

#: Where digest-mismatched bytes are moved — never deleted, never served.
QUARANTINE_DIR = "quarantine"

#: Where in-flight downloads are staged before their digest checks out.
PARTIAL_DIR = "partial"

#: Suffix for staged partial downloads.
PARTIAL_SUFFIX = ".part"

#: Default time-period width for tiling (one week of POSIX seconds).
DEFAULT_PERIOD_S = 7 * 86400.0

_HEX64 = re.compile(r"^[0-9a-f]{64}$")
_COMPONENT = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def sha256_hex(payload: bytes) -> str:
    """The artifact digest: plain SHA-256 hex over the raw bytes."""
    return hashlib.sha256(payload).hexdigest()


def period_key(timestamp: float, period_s: float = DEFAULT_PERIOD_S) -> str:
    """The fixed-width period bucket one timestamp falls into.

    Periods are integer indexes of ``period_s``-wide windows since the
    epoch, zero-padded so lexical order is chronological order —
    ``sorted()`` over period directories replays time.
    """
    if period_s <= 0:
        raise ValueError(f"period_s must be positive: {period_s}")
    return f"{int(timestamp // period_s):06d}"


def _safe_component(value: str, what: str) -> str:
    """One path component, or :class:`IntegrityError` if it could escape."""
    if not _COMPONENT.match(value) or ".." in value:
        raise IntegrityError(f"unsafe {what} in cache path: {value!r}")
    return value


def plane_name(source: str, granularity: str) -> str:
    """The per-period subdirectory for one (dataset, granularity) pair."""
    return (
        f"{_safe_component(source, 'source')}"
        f"_by_{_safe_component(granularity, 'granularity')}"
    )


def artifact_path(period: str, plane: str, sha256: str) -> str:
    """The artifact's cache-relative POSIX path (its identity)."""
    _safe_component(period, "period")
    _safe_component(plane, "plane")
    if not _HEX64.match(sha256):
        raise IntegrityError(f"malformed artifact digest: {sha256!r}")
    return f"{VERSION_DIR}/{period}/{plane}/{sha256}.json"


@dataclass(frozen=True)
class CacheEntry:
    """One manifest line: an artifact's identity and provenance."""

    path: str
    sha256: str
    bytes: int
    period: str
    plane: str
    records: int = 0

    def __post_init__(self) -> None:
        if not _HEX64.match(self.sha256):
            raise IntegrityError(
                f"malformed entry digest for {self.path!r}: {self.sha256!r}"
            )
        if self.path != artifact_path(self.period, self.plane, self.sha256):
            raise IntegrityError(
                f"entry path disagrees with its identity: {self.path!r}"
            )
        if self.bytes < 0 or self.records < 0:
            raise IntegrityError(
                f"negative size in entry for {self.path!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "sha256": self.sha256,
            "bytes": self.bytes,
            "period": self.period,
            "plane": self.plane,
            "records": self.records,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CacheEntry":
        try:
            return cls(
                path=str(document["path"]),
                sha256=str(document["sha256"]),
                bytes=int(document["bytes"]),
                period=str(document["period"]),
                plane=str(document["plane"]),
                records=int(document.get("records", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IntegrityError(f"malformed manifest entry: {exc}") from exc


def entries_digest(entries: Iterable[CacheEntry]) -> str:
    """SHA-256 over the canonical serialization of sorted entries.

    This is the manifest's signature: any added, removed, or altered
    entry changes it, so one digest pins the entire cache state — the
    value run manifests record for reproducibility.
    """
    canonical = json.dumps(
        [entry.to_dict() for entry in sorted(entries, key=lambda e: e.path)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheManifest:
    """The cache's signed index: every artifact the cache vouches for."""

    entries: Tuple[CacheEntry, ...] = ()
    generated_unix: float = 0.0
    package_version: str = ""

    @property
    def manifest_sha256(self) -> str:
        """The signature over this manifest's entries."""
        return entries_digest(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def by_path(self) -> Dict[str, CacheEntry]:
        """path → entry (paths are unique within a valid manifest)."""
        return {entry.path: entry for entry in self.entries}

    def missing_from(self, other: "CacheManifest") -> List[CacheEntry]:
        """Entries of ``self`` that ``other`` does not carry.

        The incremental-transfer planner: pulling fetches
        ``remote.missing_from(local)``, pushing uploads
        ``local.missing_from(remote)``. Content addressing makes the
        comparison exact — same path means same bytes.
        """
        have = {(entry.path, entry.sha256) for entry in other.entries}
        return [
            entry
            for entry in self.entries
            if (entry.path, entry.sha256) not in have
        ]

    def merged(self, new_entries: Iterable[CacheEntry]) -> "CacheManifest":
        """A new manifest with ``new_entries`` appended (path-deduped).

        Later entries win on a path collision, which cannot change
        content (the digest is in the path) but lets refreshed metadata
        (record counts) replace stale copies. This is the incremental
        append: new periods extend the entry list; nothing is rewritten.
        """
        combined = self.by_path()
        for entry in new_entries:
            combined[entry.path] = entry
        return CacheManifest(
            entries=tuple(
                sorted(combined.values(), key=lambda e: e.path)
            ),
            generated_unix=time.time(),
            package_version=_package_version(),
        )

    def periods(self) -> Tuple[str, ...]:
        """Distinct periods present, in chronological order."""
        return tuple(sorted({entry.period for entry in self.entries}))

    def to_document(self) -> Dict[str, Any]:
        return {
            "cache_version": CACHE_VERSION,
            "generated_unix": self.generated_unix,
            "package_version": self.package_version,
            "manifest_sha256": self.manifest_sha256,
            "entries": [
                entry.to_dict()
                for entry in sorted(self.entries, key=lambda e: e.path)
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_document(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_document(
        cls, document: Mapping[str, Any], verify: bool = True
    ) -> "CacheManifest":
        """Parse (and by default signature-check) a manifest document.

        Raises:
            IntegrityError: malformed entries, an unsupported cache
                version, or (with ``verify=True``) a stored
                ``manifest_sha256`` that does not match the entries —
                a torn or tampered manifest must fail before any
                artifact it names is trusted.
        """
        version = document.get("cache_version")
        if version != CACHE_VERSION:
            raise IntegrityError(
                f"unsupported cache_version: {version!r} "
                f"(this build reads {CACHE_VERSION})"
            )
        manifest = cls(
            entries=tuple(
                CacheEntry.from_dict(raw)
                for raw in document.get("entries", ())
            ),
            generated_unix=float(document.get("generated_unix", 0.0)),
            package_version=str(document.get("package_version", "")),
        )
        paths = [entry.path for entry in manifest.entries]
        if len(set(paths)) != len(paths):
            raise IntegrityError("manifest lists duplicate artifact paths")
        if verify:
            stored = document.get("manifest_sha256")
            if stored != manifest.manifest_sha256:
                raise IntegrityError(
                    f"manifest signature mismatch: stored {stored!r}, "
                    f"computed {manifest.manifest_sha256!r}"
                )
        return manifest

    @classmethod
    def from_json(cls, payload: bytes, verify: bool = True) -> "CacheManifest":
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IntegrityError(f"manifest is not JSON: {exc}") from exc
        if not isinstance(document, Mapping):
            raise IntegrityError("manifest document is not an object")
        return cls.from_document(document, verify=verify)


def _package_version() -> str:
    import repro

    return repro.__version__


def empty_manifest() -> CacheManifest:
    """A fresh zero-entry manifest stamped with the current version."""
    return CacheManifest(
        entries=(),
        generated_unix=time.time(),
        package_version=_package_version(),
    )


#: Hints a verifier attaches to findings (kept as plain strings so the
#: ``--json`` reports stay schema-stable).
FINDING_CORRUPT = "corrupt"
FINDING_MISSING = "missing"
FINDING_UNREFERENCED = "unreferenced"


@dataclass(frozen=True)
class Finding:
    """One integrity finding from :meth:`LocalCache.verify`."""

    kind: str
    path: str
    detail: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "path": self.path, "detail": self.detail}


__all__ = [
    "CACHE_VERSION",
    "DEFAULT_PERIOD_S",
    "MANIFEST_NAME",
    "PARTIAL_DIR",
    "PARTIAL_SUFFIX",
    "QUARANTINE_DIR",
    "VERSION_DIR",
    "CacheEntry",
    "CacheManifest",
    "Finding",
    "FINDING_CORRUPT",
    "FINDING_MISSING",
    "FINDING_UNREFERENCED",
    "artifact_path",
    "empty_manifest",
    "entries_digest",
    "period_key",
    "plane_name",
    "sha256_hex",
]
