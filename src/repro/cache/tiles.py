"""Pre-aggregated quantile-sketch tiles: score without re-ingesting.

A *tile* is one (time period, dataset, granularity) slice of the
measurement stream reduced to mergeable t-digest state — the cache's
unit of distribution. The serialization is exactly
:meth:`SketchPlane.to_state <repro.measurements.sketchplane.SketchPlane.to_state>`,
so warming a scoring plane from tiles is parse + merge, no record
replay; the paper's own Ookla aggregate-only path (PAPER.md §2) is the
methodological precedent for scoring from summaries, and the sketch
parity suite bounds the percentile error (p95/p99 relative error
≤ 1% vs the exact plane).

Granularities mirror the real IQB's multi-level aggregation (country /
subdivision / ASN / city). On this repo's record schema they map to:

* ``region``       — the region axis as-is (the scoring default);
* ``region_isp``   — ``{region}/{isp}`` keys (per-provider tiles, the
  ASN analog);
* ``region_tech``  — ``{region}/{access_tech}`` keys (fiber vs DSL vs
  cable tiles).

Tiles are deterministic: the same records serialize to byte-identical
JSON (sorted keys, canonical separators), so content addressing
dedupes rebuilt periods for free and ``iqb cache build`` is
idempotent.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import DataError, IntegrityError
from repro.measurements.record import Measurement
from repro.measurements.sketchplane import SketchPlane, SketchView
from repro.measurements.tdigest import DEFAULT_DELTA

from .layout import DEFAULT_PERIOD_S, CacheEntry, period_key, plane_name
from .store import LocalCache, publish_entries

#: Current tile document shape.
TILE_VERSION = 1

#: Supported aggregation granularities (see module docstring).
GRANULARITIES = ("region", "region_isp", "region_tech")

#: Default granularities ``iqb cache build`` materializes.
DEFAULT_GRANULARITIES = ("region",)


def tile_key(record: Measurement, granularity: str) -> str:
    """The aggregation-axis key one record falls under."""
    if granularity == "region":
        return record.region
    if granularity == "region_isp":
        return f"{record.region}/{record.isp or 'unknown'}"
    if granularity == "region_tech":
        return f"{record.region}/{record.access_tech or 'unknown'}"
    raise ValueError(
        f"unknown granularity: {granularity!r} (have {GRANULARITIES})"
    )


def build_tiles(
    records: Iterable[Measurement],
    granularity: str = "region",
    period_s: float = DEFAULT_PERIOD_S,
    delta: int = DEFAULT_DELTA,
) -> Dict[Tuple[str, str], dict]:
    """Reduce records to tile documents, keyed by (period, source).

    One pass, O(1) amortized per record (buffered digest inserts) —
    building tiles over a multi-GB dump costs ingest, not sorting.
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity: {granularity!r} (have {GRANULARITIES})"
        )
    cells: Dict[Tuple[str, str], Dict[str, SketchView]] = {}
    for record in records:
        period = period_key(record.timestamp, period_s)
        views = cells.setdefault((period, record.source), {})
        key = tile_key(record, granularity)
        view = views.get(key)
        if view is None:
            view = SketchView(delta=delta)
            views[key] = view
        view.observe(record)
    tiles: Dict[Tuple[str, str], dict] = {}
    for (period, source), views in sorted(cells.items()):
        plane_state = {
            "delta": delta,
            "records": sum(len(view) for view in views.values()),
            "views": [
                [key, source, view.to_state()]
                for key, view in sorted(views.items())
            ],
        }
        tiles[(period, source)] = {
            "tile_version": TILE_VERSION,
            "period": period,
            "source": source,
            "granularity": granularity,
            "records": plane_state["records"],
            "plane": plane_state,
        }
    return tiles


def tile_payload(document: dict) -> bytes:
    """Canonical tile bytes: sorted keys, compact separators, newline.

    Canonicalization is what makes tiles content-addressable — two
    builds over the same records produce byte-identical payloads and
    therefore the same artifact name.
    """
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def parse_tile(payload: bytes) -> dict:
    """Decode and shape-check one tile artifact's bytes."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"tile artifact is not JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise IntegrityError("tile artifact is not an object")
    if document.get("tile_version") != TILE_VERSION:
        raise IntegrityError(
            f"unsupported tile_version: {document.get('tile_version')!r}"
        )
    if not isinstance(document.get("plane"), dict):
        raise IntegrityError("tile artifact carries no plane state")
    return document


def write_tiles(
    cache: LocalCache,
    records: Iterable[Measurement],
    granularities: Sequence[str] = DEFAULT_GRANULARITIES,
    period_s: float = DEFAULT_PERIOD_S,
    delta: int = DEFAULT_DELTA,
) -> List[CacheEntry]:
    """Build tiles at each granularity and publish them into ``cache``.

    Incremental by construction: artifacts land content-addressed (a
    rebuilt unchanged period is a no-op put) and the manifest merge
    appends new periods without rewriting old entries. Returns the
    entries for everything built this call.
    """
    batch = records if isinstance(records, list) else list(records)
    entries: List[CacheEntry] = []
    for granularity in granularities:
        for (period, source), document in build_tiles(
            batch, granularity=granularity, period_s=period_s, delta=delta
        ).items():
            payload = tile_payload(document)
            entries.append(
                cache.put(
                    payload,
                    period=period,
                    plane=plane_name(source, granularity),
                    records=int(document["records"]),
                )
            )
    publish_entries(cache, entries)
    return entries


def tile_entries(
    cache: LocalCache,
    granularity: str = "region",
    periods: Optional[Sequence[str]] = None,
) -> List[CacheEntry]:
    """Manifest entries holding tiles at one granularity.

    Args:
        periods: restrict to these period keys (``None`` = all) — the
            time-travel hook: warm a plane as of any cached window.
    """
    suffix = f"_by_{granularity}"
    wanted = set(periods) if periods is not None else None
    return [
        entry
        for entry in cache.manifest().entries
        if entry.plane.endswith(suffix)
        and (wanted is None or entry.period in wanted)
    ]


def warm_plane(
    cache: LocalCache,
    granularity: str = "region",
    periods: Optional[Sequence[str]] = None,
) -> SketchPlane:
    """A scoring-ready :class:`SketchPlane` merged from cached tiles.

    Every tile read is digest-verified (:meth:`LocalCache.read`), so a
    corrupted artifact raises — and quarantines — instead of warming a
    plane with wrong aggregates. The result plugs straight into
    ``score_regions`` / ``ScoringService``: this is the ``iqb score
    --from-cache`` / ``iqb serve --from-cache`` fast path.

    Raises:
        DataError: the cache holds no tiles at this granularity (an
            empty plane would score nothing and mask the operator
            error).
        IntegrityError: a tile failed verification (quarantined).
    """
    if granularity not in GRANULARITIES:
        raise ValueError(
            f"unknown granularity: {granularity!r} (have {GRANULARITIES})"
        )
    entries = tile_entries(cache, granularity=granularity, periods=periods)
    if not entries:
        raise DataError(
            f"cache at {cache.root} holds no tiles for granularity "
            f"{granularity!r}"
            + (f" in periods {sorted(set(periods))}" if periods else "")
        )
    merged: Optional[SketchPlane] = None
    for entry in sorted(entries, key=lambda e: e.path):
        document = parse_tile(cache.read(entry))
        plane = SketchPlane.from_state(document["plane"])
        merged = plane if merged is None else merged.merge(plane)
    assert merged is not None
    return merged


__all__ = [
    "DEFAULT_GRANULARITIES",
    "GRANULARITIES",
    "TILE_VERSION",
    "build_tiles",
    "parse_tile",
    "tile_entries",
    "tile_key",
    "tile_payload",
    "warm_plane",
]
