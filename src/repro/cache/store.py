"""The local content-addressed artifact store with integrity enforcement.

:class:`LocalCache` owns one on-disk cache tree (see
:mod:`repro.cache.layout`) and enforces the cache's two invariants:

* **atomic publication** — an artifact or manifest is either fully on
  disk or absent; writes go through :func:`repro.fsutil.atomic_write`
  with a file *and* directory fsync, so a power cut cannot leave a
  torn artifact behind the manifest's back;
* **verify-on-read** — every artifact read re-hashes the bytes against
  the content address. A mismatch is never served: the bytes are moved
  to ``quarantine/`` (preserved for forensics, out of the trusted
  tree), the ``cache.corrupt`` counter increments, and a loud
  :class:`~repro.core.exceptions.IntegrityError` names the artifact.

``verify()`` sweeps the whole manifest (quarantining every corrupt
artifact it finds) and ``gc()`` removes unreferenced artifacts and
stale partial downloads — the two operator verbs behind
``iqb cache verify`` and ``iqb cache gc``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.exceptions import IntegrityError
from repro.fsutil import atomic_write, fsync_dir
from repro.obs import counter

from .layout import (
    FINDING_CORRUPT,
    FINDING_MISSING,
    FINDING_UNREFERENCED,
    MANIFEST_NAME,
    PARTIAL_DIR,
    PARTIAL_SUFFIX,
    QUARANTINE_DIR,
    VERSION_DIR,
    CacheEntry,
    CacheManifest,
    Finding,
    artifact_path,
    empty_manifest,
    sha256_hex,
)

_PathLike = Union[str, "os.PathLike[str]"]

#: Artifacts whose bytes failed their digest (each one also quarantines).
_CORRUPT = counter("cache.corrupt")
#: Artifacts read and digest-verified successfully.
_VERIFIED_READS = counter("cache.reads.verified")
#: Artifacts published into the store.
_PUTS = counter("cache.puts")


class LocalCache:
    """One on-disk content-addressed cache tree."""

    def __init__(self, root: _PathLike) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    @property
    def partial_dir(self) -> Path:
        return self.root / PARTIAL_DIR

    def artifact_abspath(self, rel_path: str) -> Path:
        """Resolve a manifest-relative path, rejecting escapes.

        Manifest paths are remote input; re-deriving the path from its
        validated components (period / plane / digest) is what stops a
        hostile ``../../`` entry from ever touching the filesystem.
        """
        parts = rel_path.split("/")
        if len(parts) != 4 or parts[0] != VERSION_DIR:
            raise IntegrityError(f"unexpected artifact path shape: {rel_path!r}")
        sha = parts[3]
        if not sha.endswith(".json"):
            raise IntegrityError(f"unexpected artifact suffix: {rel_path!r}")
        rebuilt = artifact_path(parts[1], parts[2], sha[: -len(".json")])
        if rebuilt != rel_path:
            raise IntegrityError(f"artifact path fails validation: {rel_path!r}")
        return self.root / rebuilt

    def partial_path(self, entry: CacheEntry) -> Path:
        """Where ``entry``'s in-flight download is staged."""
        return self.partial_dir / f"{entry.sha256}{PARTIAL_SUFFIX}"

    # -- manifest ------------------------------------------------------------

    def manifest(self) -> CacheManifest:
        """The signed local manifest (empty for a fresh cache root).

        Raises:
            IntegrityError: the stored manifest fails its signature —
                a torn or tampered index invalidates the whole cache
                until it is re-pulled or rebuilt.
        """
        try:
            payload = self.manifest_path.read_bytes()
        except FileNotFoundError:
            return CacheManifest()
        return CacheManifest.from_json(payload)

    def write_manifest(self, manifest: CacheManifest) -> None:
        """Atomically (and durably) publish the manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write(self.manifest_path, manifest.to_json(), fsync=True)

    # -- artifacts -----------------------------------------------------------

    def put(
        self,
        payload: bytes,
        period: str,
        plane: str,
        records: int = 0,
    ) -> CacheEntry:
        """Publish one artifact; returns its manifest entry.

        Content addressing makes this idempotent: re-putting identical
        bytes lands on the same path and is a no-op. The write is
        atomic and fsynced (file + directory) — the artifact exists
        durably before any manifest could reference it.
        """
        sha = sha256_hex(payload)
        rel = artifact_path(period, plane, sha)
        target = self.root / rel
        if not target.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
            atomic_write(target, payload, fsync=True)
            _PUTS.inc()
        return CacheEntry(
            path=rel,
            sha256=sha,
            bytes=len(payload),
            period=period,
            plane=plane,
            records=records,
        )

    def read(self, entry: CacheEntry) -> bytes:
        """Read one artifact, verifying its digest before returning.

        A mismatch quarantines the bytes and raises — corrupted
        aggregates are never scored, full stop.

        Raises:
            IntegrityError: the artifact is missing, or its bytes do
                not hash to the content address (quarantined first).
        """
        target = self.artifact_abspath(entry.path)
        try:
            payload = target.read_bytes()
        except FileNotFoundError:
            raise IntegrityError(
                f"cache artifact missing: {entry.path}"
            ) from None
        actual = sha256_hex(payload)
        if actual != entry.sha256:
            quarantined = self.quarantine(entry.path)
            _CORRUPT.inc()
            raise IntegrityError(
                f"cache artifact corrupt: {entry.path} "
                f"(sha256 {actual}, manifest says {entry.sha256}); "
                f"bytes quarantined at {quarantined}"
            )
        _VERIFIED_READS.inc()
        return payload

    def quarantine(self, rel_path: str, source: Optional[Path] = None) -> Path:
        """Move bad bytes out of the trusted tree; returns the new home.

        Quarantined files keep their full relative path flattened into
        the filename, so an operator can see exactly which artifact
        went bad and when (collisions get a numeric suffix rather than
        overwriting earlier evidence).
        """
        origin = source if source is not None else (self.root / rel_path)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        base = rel_path.replace("/", "__")
        destination = self.quarantine_dir / base
        bump = 0
        while destination.exists():
            bump += 1
            destination = self.quarantine_dir / f"{base}.{bump}"
        os.replace(origin, destination)
        fsync_dir(self.quarantine_dir)
        return destination

    # -- whole-cache operations ----------------------------------------------

    def verify(self) -> "VerifyReport":
        """Sweep every manifest entry; quarantine whatever fails.

        Returns a report rather than raising so ``iqb cache verify``
        can name *all* the damage in one pass; callers that need the
        raise-on-first-failure behavior use :meth:`read`.
        """
        manifest = self.manifest()
        findings: List[Finding] = []
        verified = 0
        for entry in manifest.entries:
            target = self.artifact_abspath(entry.path)
            try:
                payload = target.read_bytes()
            except FileNotFoundError:
                findings.append(
                    Finding(FINDING_MISSING, entry.path, "file not found")
                )
                continue
            actual = sha256_hex(payload)
            if actual != entry.sha256:
                quarantined = self.quarantine(entry.path)
                _CORRUPT.inc()
                findings.append(
                    Finding(
                        FINDING_CORRUPT,
                        entry.path,
                        f"sha256 {actual}; quarantined at {quarantined}",
                    )
                )
                continue
            verified += 1
        for rel in self._unreferenced(manifest):
            findings.append(
                Finding(FINDING_UNREFERENCED, rel, "not in manifest")
            )
        return VerifyReport(
            verified=verified,
            manifest_sha256=manifest.manifest_sha256,
            findings=tuple(findings),
        )

    def gc(self) -> "GCReport":
        """Remove unreferenced artifacts, stale partials, empty dirs.

        Quarantine is deliberately *not* collected — it is evidence,
        and deleting it is an explicit operator action, not a sweep.
        """
        manifest = self.manifest()
        removed: List[str] = []
        for rel in self._unreferenced(manifest):
            (self.root / rel).unlink()
            removed.append(rel)
        partials: List[str] = []
        if self.partial_dir.is_dir():
            for part in sorted(self.partial_dir.glob(f"*{PARTIAL_SUFFIX}")):
                part.unlink()
                partials.append(f"{PARTIAL_DIR}/{part.name}")
        self._prune_empty_dirs()
        return GCReport(removed=tuple(removed), partials=tuple(partials))

    def _unreferenced(self, manifest: CacheManifest) -> List[str]:
        """Files under ``v1/`` that no manifest entry claims."""
        version_root = self.root / VERSION_DIR
        if not version_root.is_dir():
            return []
        referenced = {entry.path for entry in manifest.entries}
        found: List[str] = []
        for path in sorted(version_root.rglob("*")):
            if not path.is_file():
                continue
            rel = path.relative_to(self.root).as_posix()
            if rel not in referenced:
                found.append(rel)
        return found

    def _prune_empty_dirs(self) -> None:
        version_root = self.root / VERSION_DIR
        if not version_root.is_dir():
            return
        for path in sorted(
            (p for p in version_root.rglob("*") if p.is_dir()),
            key=lambda p: len(p.parts),
            reverse=True,
        ):
            try:
                path.rmdir()
            except OSError:
                pass


class VerifyReport:
    """Outcome of one :meth:`LocalCache.verify` sweep."""

    def __init__(
        self,
        verified: int,
        manifest_sha256: str,
        findings: Tuple[Finding, ...],
    ) -> None:
        self.verified = verified
        self.manifest_sha256 = manifest_sha256
        self.findings = findings

    @property
    def ok(self) -> bool:
        """True when nothing is corrupt or missing.

        Unreferenced files are clutter (``gc`` fodder), not an
        integrity failure — they are outside the trusted set.
        """
        return not any(
            finding.kind in (FINDING_CORRUPT, FINDING_MISSING)
            for finding in self.findings
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "verified": self.verified,
            "manifest_sha256": self.manifest_sha256,
            "findings": [finding.to_dict() for finding in self.findings],
        }


class GCReport:
    """Outcome of one :meth:`LocalCache.gc` sweep."""

    def __init__(
        self, removed: Tuple[str, ...], partials: Tuple[str, ...]
    ) -> None:
        self.removed = removed
        self.partials = partials

    def to_dict(self) -> Dict[str, object]:
        return {
            "removed": list(self.removed),
            "partials": list(self.partials),
        }


def publish_entries(
    cache: LocalCache, entries: Iterable[CacheEntry]
) -> CacheManifest:
    """Merge ``entries`` into the cache manifest and write it durably.

    The ordering is the publication protocol: artifacts first (durable
    via :meth:`LocalCache.put`), manifest last — a crash between the
    two leaves unreferenced artifacts (``gc`` fodder), never a manifest
    naming bytes that do not exist.
    """
    manifest = cache.manifest().merged(entries)
    cache.write_manifest(manifest)
    return manifest


__all__ = [
    "GCReport",
    "LocalCache",
    "VerifyReport",
    "publish_entries",
]
