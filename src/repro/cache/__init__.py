"""Content-addressed dataset cache: verified tiles, manifests, remotes.

The "don't re-ingest the world per run" layer, reproducing m-lab's
production data-distribution design: measurement streams reduce to
pre-aggregated quantile-sketch *tiles* stored under a versioned
``cache/v1/`` tree where every artifact is named by the SHA-256 of its
bytes and indexed by a signed-by-digest ``MANIFEST.json``. Integrity
is enforced, not assumed — reads re-hash, corrupt bytes quarantine
loudly, pulls over unreliable remotes retry/resume and never publish
an unverified artifact. See ``docs/deployment.md`` ("Dataset cache &
distribution") for the operator view and the layout/trust model.
"""

from .layout import (
    CACHE_VERSION,
    DEFAULT_PERIOD_S,
    MANIFEST_NAME,
    CacheEntry,
    CacheManifest,
    Finding,
    artifact_path,
    empty_manifest,
    entries_digest,
    period_key,
    plane_name,
    sha256_hex,
)
from .remote import (
    FileRemote,
    HttpRemote,
    PullReport,
    PushReport,
    Remote,
    default_breaker,
    default_policy,
    fetch_remote_manifest,
    open_remote,
    pull,
    push,
)
from .store import GCReport, LocalCache, VerifyReport, publish_entries
from .tiles import (
    DEFAULT_GRANULARITIES,
    GRANULARITIES,
    build_tiles,
    tile_entries,
    tile_key,
    tile_payload,
    parse_tile,
    warm_plane,
    write_tiles,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_GRANULARITIES",
    "DEFAULT_PERIOD_S",
    "GRANULARITIES",
    "MANIFEST_NAME",
    "CacheEntry",
    "CacheManifest",
    "FileRemote",
    "Finding",
    "GCReport",
    "HttpRemote",
    "LocalCache",
    "PullReport",
    "PushReport",
    "Remote",
    "VerifyReport",
    "artifact_path",
    "build_tiles",
    "default_breaker",
    "default_policy",
    "empty_manifest",
    "entries_digest",
    "fetch_remote_manifest",
    "open_remote",
    "parse_tile",
    "period_key",
    "plane_name",
    "publish_entries",
    "pull",
    "push",
    "sha256_hex",
    "tile_entries",
    "tile_key",
    "tile_payload",
    "warm_plane",
    "write_tiles",
]
