"""Cache remotes: integrity-checked, retrying, resumable transfer.

A :class:`Remote` is anywhere a cache tree can live besides the local
disk — a plain directory (:class:`FileRemote`, also the unit tests'
workhorse) or an HTTP server (:class:`HttpRemote`, any static file
host). The transfer verbs are deliberately tiny (fetch manifest, fetch
bytes from an offset, put bytes) so the *robustness* lives in one
place: :func:`pull` and :func:`push`.

``pull`` is built for unreliable networks:

* every transfer runs under a
  :class:`~repro.resilience.retry.RetryPolicy` (decorrelated-jitter
  backoff) and a per-remote
  :class:`~repro.resilience.breaker.CircuitBreaker`, so a dead remote
  is abandoned loudly instead of hammered;
* downloads stage into ``partial/*.part`` and are **resumable**: a
  truncated body leaves a shorter ``.part``, and the next attempt
  issues a ranged fetch from that offset instead of starting over;
* nothing enters the trusted ``v1/`` tree until the staged bytes hash
  to the artifact's content address. A completed-but-wrong download
  (bit flips, proxy mangling) is quarantined and retried from zero;
  if retries exhaust, the pull fails loudly with the evidence in
  ``quarantine/`` — a corrupted artifact is *never* published.

``push`` verifies every local artifact before uploading (a corrupt
local cache must not propagate) and transfers only what the remote's
manifest lacks — incremental append via manifest diffing.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.exceptions import IntegrityError, RemoteError
from repro.fsutil import atomic_write, fsync_dir
from repro.obs import counter, get_logger
from repro.resilience.breaker import BreakerOpenError, CircuitBreaker
from repro.resilience.retry import RetryPolicy

from .layout import MANIFEST_NAME, CacheEntry, CacheManifest, sha256_hex
from .store import LocalCache, publish_entries

_logger = get_logger(__name__)

_FETCHED = counter("cache.remote.fetched")
_RESUMED = counter("cache.remote.resumed")
_RETRIES = counter("cache.remote.retries")
_PULL_CORRUPT = counter("cache.remote.corrupt")
_PUSHED = counter("cache.remote.pushed")


class Remote:
    """Transfer interface one cache remote implements."""

    #: Stable identity for breaker keys and log lines.
    name: str = "remote"

    def fetch_manifest(self) -> bytes:
        """The remote ``MANIFEST.json`` bytes (RemoteError if absent)."""
        raise NotImplementedError

    def fetch(self, rel_path: str, offset: int = 0) -> bytes:
        """Artifact bytes from ``offset`` to the end (ranged read)."""
        raise NotImplementedError

    def put(self, rel_path: str, payload: bytes) -> None:
        """Store ``payload`` at ``rel_path`` on the remote."""
        raise NotImplementedError

    def exists(self, rel_path: str) -> bool:
        """Whether the remote already holds ``rel_path``."""
        raise NotImplementedError


class FileRemote(Remote):
    """A cache remote that is just a directory (NFS mount, USB disk)."""

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        self.root = Path(root)
        self.name = f"file:{self.root}"

    def fetch_manifest(self) -> bytes:
        return self.fetch(MANIFEST_NAME)

    def fetch(self, rel_path: str, offset: int = 0) -> bytes:
        target = self.root / rel_path
        try:
            with open(target, "rb") as handle:
                if offset:
                    handle.seek(offset)
                return handle.read()
        except OSError as exc:
            raise RemoteError(f"{self.name}: cannot read {rel_path}: {exc}") from exc

    def put(self, rel_path: str, payload: bytes) -> None:
        target = self.root / rel_path
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            atomic_write(target, payload, fsync=True)
        except OSError as exc:
            raise RemoteError(
                f"{self.name}: cannot write {rel_path}: {exc}"
            ) from exc

    def exists(self, rel_path: str) -> bool:
        return (self.root / rel_path).is_file()


class HttpRemote(Remote):
    """A cache remote behind HTTP(S) — any static file server works.

    Pulls use ``Range`` requests for resume; a server that ignores
    ranges (replies 200 with the full body) degrades gracefully — the
    surplus prefix is sliced off client-side. Push issues ``PUT``,
    which plain static hosts reject; pushing is for WebDAV-style or
    object-store remotes.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.name = self.base_url

    def _url(self, rel_path: str) -> str:
        return f"{self.base_url}/{rel_path}"

    def fetch_manifest(self) -> bytes:
        return self.fetch(MANIFEST_NAME)

    def fetch(self, rel_path: str, offset: int = 0) -> bytes:
        request = urllib.request.Request(self._url(rel_path))
        if offset:
            request.add_header("Range", f"bytes={offset}-")
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                body = response.read()
                status = getattr(response, "status", 200)
        except urllib.error.HTTPError as exc:
            if exc.code == 416:
                # Requested range past EOF: nothing further to read.
                return b""
            raise RemoteError(
                f"{self.name}: HTTP {exc.code} fetching {rel_path}"
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise RemoteError(
                f"{self.name}: fetch {rel_path} failed: {exc}"
            ) from exc
        if offset and status == 200:
            # Server ignored the range; keep only the unseen suffix.
            return body[offset:]
        return body

    def put(self, rel_path: str, payload: bytes) -> None:
        request = urllib.request.Request(
            self._url(rel_path), data=payload, method="PUT"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s):
                pass
        except (urllib.error.URLError, OSError) as exc:
            raise RemoteError(
                f"{self.name}: PUT {rel_path} failed: {exc}"
            ) from exc

    def exists(self, rel_path: str) -> bool:
        request = urllib.request.Request(self._url(rel_path), method="HEAD")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s):
                return True
        except (urllib.error.URLError, OSError):
            return False


def open_remote(spec: str) -> Remote:
    """Resolve a CLI remote spec: a URL or a plain directory path."""
    if spec.startswith(("http://", "https://")):
        return HttpRemote(spec)
    return FileRemote(spec)


def default_policy() -> RetryPolicy:
    """The transfer retry budget: 5 attempts, jittered, capped at 2s.

    ``base_s`` is small — cache pulls are operator-interactive — but
    non-zero, so concurrent pullers against a struggling remote spread
    out instead of stampeding (the whole point of decorrelated jitter).
    """
    return RetryPolicy(max_attempts=5, base_s=0.05, cap_s=2.0)


def default_breaker() -> CircuitBreaker:
    """The per-remote breaker: open after 10 straight transport errors.

    The threshold sits above one artifact's retry budget so a single
    flaky object cannot black-hole the rest of an otherwise healthy
    pull, while a genuinely dead remote still trips before the pull
    grinds through every artifact's full budget.
    """
    return CircuitBreaker(failure_threshold=10, recovery_s=30.0)


class PullReport:
    """What one :func:`pull` actually did (the ``--json`` payload)."""

    def __init__(self) -> None:
        self.fetched: List[str] = []
        self.skipped: List[str] = []
        self.resumed = 0
        self.retries = 0
        self.quarantined: List[str] = []
        self.bytes_transferred = 0
        self.manifest_sha256 = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "fetched": list(self.fetched),
            "skipped": list(self.skipped),
            "resumed": self.resumed,
            "retries": self.retries,
            "quarantined": list(self.quarantined),
            "bytes_transferred": self.bytes_transferred,
            "manifest_sha256": self.manifest_sha256,
        }


class PushReport:
    """What one :func:`push` actually did (the ``--json`` payload)."""

    def __init__(self) -> None:
        self.uploaded: List[str] = []
        self.skipped: List[str] = []
        self.retries = 0
        self.bytes_transferred = 0
        self.manifest_sha256 = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "uploaded": list(self.uploaded),
            "skipped": list(self.skipped),
            "retries": self.retries,
            "bytes_transferred": self.bytes_transferred,
            "manifest_sha256": self.manifest_sha256,
        }


def _breaker_check(breaker: Optional[CircuitBreaker]) -> None:
    if breaker is None:
        return
    if not breaker.allow():
        raise BreakerOpenError("remote", breaker.retry_in_s())


def fetch_remote_manifest(
    remote: Remote,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> CacheManifest:
    """The remote's signed manifest, retried and signature-verified."""
    policy = policy if policy is not None else default_policy()
    delays = list(policy.delays())
    last: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        _breaker_check(breaker)
        try:
            payload = remote.fetch_manifest()
        except RemoteError as exc:
            last = exc
            if breaker is not None:
                breaker.record_failure()
            _RETRIES.inc()
            if attempt < len(delays):
                policy.backoff(delays[attempt])
            continue
        if breaker is not None:
            breaker.record_success()
        # Signature failures are NOT retried transport errors: the
        # bytes arrived, they are just wrong — fail loudly.
        return CacheManifest.from_json(payload)
    raise RemoteError(
        f"{remote.name}: manifest fetch failed after "
        f"{policy.max_attempts} attempt(s): {last}"
    ) from last


def pull(
    cache: LocalCache,
    remote: Remote,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> PullReport:
    """Bring the local cache up to date with ``remote``, verified.

    The convergence contract (chaos-tested across hundreds of fault
    schedules): on return the local manifest covers every remote entry
    and every referenced artifact's bytes hash to their content
    address; on *any* raise, the trusted ``v1/`` tree still holds only
    digest-valid artifacts — damaged transfers live in ``quarantine/``
    or ``partial/``, never behind the manifest.

    Raises:
        RemoteError: transport failures outlasted the retry budget
            (or the circuit breaker opened).
        IntegrityError: a transfer repeatedly completed with wrong
            bytes — the evidence is quarantined.
    """
    policy = policy if policy is not None else default_policy()
    breaker = breaker if breaker is not None else default_breaker()
    report = PullReport()
    remote_manifest = fetch_remote_manifest(remote, policy, breaker)
    local_manifest = cache.manifest()
    local_by_path = local_manifest.by_path()
    for entry in remote_manifest.missing_from(local_manifest):
        _pull_artifact(cache, remote, entry, policy, breaker, report)
    for entry in remote_manifest.entries:
        if entry.path in local_by_path and entry.path not in report.fetched:
            # Present per manifest — but trust requires bytes on disk.
            if cache.artifact_abspath(entry.path).is_file():
                report.skipped.append(entry.path)
            else:
                _pull_artifact(cache, remote, entry, policy, breaker, report)
    merged = publish_entries(cache, remote_manifest.entries)
    report.manifest_sha256 = merged.manifest_sha256
    return report


def _pull_artifact(
    cache: LocalCache,
    remote: Remote,
    entry: CacheEntry,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    report: PullReport,
) -> None:
    """Fetch one artifact: staged, resumable, digest-gated.

    Each attempt continues from the staged ``.part``'s current size
    (ranged fetch). A body that overshoots or completes with the wrong
    digest quarantines the stage and restarts from zero; transport
    errors burn retry budget with jittered backoff.
    """
    target = cache.artifact_abspath(entry.path)
    part = cache.partial_path(entry)
    part.parent.mkdir(parents=True, exist_ok=True)
    delays = list(policy.delays())
    last: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        _breaker_check(breaker)
        offset = part.stat().st_size if part.exists() else 0
        if 0 < offset < entry.bytes:
            _RESUMED.inc()
            report.resumed += 1
        try:
            chunk = remote.fetch(entry.path, offset=offset)
        except RemoteError as exc:
            last = exc
            breaker.record_failure()
            _RETRIES.inc()
            report.retries += 1
            if attempt < len(delays):
                policy.backoff(delays[attempt])
            continue
        breaker.record_success()
        report.bytes_transferred += len(chunk)
        if chunk:
            with open(part, "ab") as handle:
                handle.write(chunk)
                handle.flush()
                os.fsync(handle.fileno())
        size = part.stat().st_size if part.exists() else 0
        if size < entry.bytes:
            # Truncated body: keep the stage, resume from the new
            # offset on the next attempt.
            last = RemoteError(
                f"short body for {entry.path}: {size}/{entry.bytes} bytes"
            )
            if attempt < len(delays):
                policy.backoff(delays[attempt])
            continue
        payload = part.read_bytes()
        if len(payload) == entry.bytes and sha256_hex(payload) == entry.sha256:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(part, target)
            fsync_dir(target.parent)
            _FETCHED.inc()
            report.fetched.append(entry.path)
            return
        # Complete but wrong (bit flip / overshoot): evidence out of
        # the way, then start the transfer over from byte zero.
        quarantined = cache.quarantine(entry.path, source=part)
        _PULL_CORRUPT.inc()
        report.quarantined.append(str(quarantined))
        last = IntegrityError(
            f"pulled bytes for {entry.path} fail their digest "
            f"(quarantined at {quarantined})"
        )
        _logger.warning(
            "corrupt transfer quarantined",
            extra={"ctx": {"path": entry.path, "remote": remote.name}},
        )
        if attempt < len(delays):
            policy.backoff(delays[attempt])
    if isinstance(last, IntegrityError):
        raise IntegrityError(
            f"{remote.name}: {entry.path} kept failing its digest after "
            f"{policy.max_attempts} attempt(s); last: {last}"
        ) from last
    raise RemoteError(
        f"{remote.name}: {entry.path} not transferred after "
        f"{policy.max_attempts} attempt(s): {last}"
    ) from last


def push(
    cache: LocalCache,
    remote: Remote,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> PushReport:
    """Upload local artifacts the remote lacks, then the merged manifest.

    Every artifact is digest-verified *before* upload (corruption must
    not propagate — a bad local artifact quarantines and aborts the
    push), and the remote manifest is replaced last, so a crashed push
    leaves the remote's previous manifest intact over a superset of
    artifacts — exactly the local cache's own publication order.

    Raises:
        IntegrityError: a local artifact failed verification.
        RemoteError: uploads outlasted the retry budget.
    """
    policy = policy if policy is not None else default_policy()
    breaker = breaker if breaker is not None else default_breaker()
    report = PushReport()
    local_manifest = cache.manifest()
    try:
        remote_manifest = fetch_remote_manifest(remote, policy, breaker)
    except RemoteError:
        # A fresh remote has no manifest yet; push seeds it.
        remote_manifest = CacheManifest()
    to_upload = local_manifest.missing_from(remote_manifest)
    for entry in local_manifest.entries:
        if entry not in to_upload:
            report.skipped.append(entry.path)
    for entry in to_upload:
        payload = cache.read(entry)  # verify-on-read gate
        _upload(remote, entry.path, payload, policy, breaker, report)
        _PUSHED.inc()
        report.uploaded.append(entry.path)
        report.bytes_transferred += len(payload)
    merged = remote_manifest.merged(local_manifest.entries)
    _upload(
        remote,
        MANIFEST_NAME,
        merged.to_json().encode("utf-8"),
        policy,
        breaker,
        report,
    )
    report.manifest_sha256 = merged.manifest_sha256
    return report


def _upload(
    remote: Remote,
    rel_path: str,
    payload: bytes,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    report: PushReport,
) -> None:
    delays = list(policy.delays())
    last: Optional[Exception] = None
    for attempt in range(policy.max_attempts):
        _breaker_check(breaker)
        try:
            remote.put(rel_path, payload)
        except RemoteError as exc:
            last = exc
            breaker.record_failure()
            _RETRIES.inc()
            report.retries += 1
            if attempt < len(delays):
                policy.backoff(delays[attempt])
            continue
        breaker.record_success()
        return
    raise RemoteError(
        f"{remote.name}: upload of {rel_path} failed after "
        f"{policy.max_attempts} attempt(s): {last}"
    ) from last


__all__ = [
    "FileRemote",
    "HttpRemote",
    "PullReport",
    "PushReport",
    "Remote",
    "default_breaker",
    "default_policy",
    "fetch_remote_manifest",
    "open_remote",
    "pull",
    "push",
]
