"""Command-line interface: ``iqb`` / ``python -m repro``.

Subcommands:

* ``simulate`` — run a measurement campaign over region presets and
  write the records to JSONL;
* ``score``    — score a JSONL measurement file (all regions, table);
* ``report``   — full drill-down report for one region;
* ``config``   — print (or write) the canonical paper configuration;
* ``tiers``    — render the Fig. 1 tier structure;
* ``sweep``    — percentile-sensitivity sweep for one region;
* ``trend``    — windowed IQB time series + slope for one region;
* ``peak``     — prime-time vs off-peak contrast for one region;
* ``equity``   — per-ISP / per-technology breakdown for one region;
* ``compare``  — exact attribution of the score gap between two regions;
* ``label``    — consumer broadband-label scorecard for one region;
* ``publish``  — assemble the full Markdown barometer report;
* ``monitor``  — replay a measurement file through the alerting monitor
  (``--journal``/``--resume`` make the campaign crash-safe: completed
  windows land in an append-only journal and a killed run resumes with
  identical baselines, skipping finished work; ``--slo-rules`` runs a
  data-quality health monitor alongside and records the end-of-run
  :class:`~repro.obs.slo.HealthReport` in the manifest);
* ``health``   — assess a measurement file against data-quality SLOs
  (freshness, completeness, ingest error rate, scoring latency) with
  burn-rate states and score-drift detection; ``--json`` emits the
  full deterministic HealthReport, ``--watch`` paces the replay and
  prints per-window health; exits 1 when any SLO is at PAGE;
* ``serve``    — long-lived scoring service: the ``/v1`` query API
  (``/v1/scores``, ``/v1/scores/<region>``, ``/v1/national``,
  ``/v1/config``) over a generation-cached, request-coalescing
  scoring engine, plus the full telemetry surface; ``--follow``
  tails the input file and ingests appended measurements live;
  SIGTERM/Ctrl-C drains in-flight requests and exits 0;
* ``adaptive`` — demonstrate uncertainty-driven probe allocation;
* ``metrics``  — run a pipeline end to end and dump the observability
  snapshot (probe retries/abandons, ingest skips, cache hit rates) as
  JSON, text, or Prometheus exposition (``--format prom``);
* ``cache``    — content-addressed dataset cache: ``build`` reduces a
  measurement file to quantile-sketch tiles under a versioned
  ``cache/v1/`` tree (every artifact named by the SHA-256 of its
  bytes, indexed by a signed ``MANIFEST.json``); ``push``/``pull``
  sync with an http(s) or directory remote — incremental by manifest
  diff, resumable, retried with decorrelated-jitter backoff, and an
  artifact is never published without passing its digest check;
  ``verify`` re-hashes the whole cache (corruption quarantines, exit
  1); ``gc`` removes unreferenced artifacts. ``score --from-cache``
  and ``serve --from-cache`` warm their scoring plane straight from
  tiles, skipping ingest entirely;
* ``runs``     — list and diff run-provenance manifests.

Global flags: ``--log-level {debug,info,warning,error}`` and
``--log-json`` configure structured logging for every subcommand
(events go to stderr; stdout stays clean for command output);
``--workers N`` shards measurement ingest, batch region scoring, and
campaign simulation across a forked worker pool (``N <= 1`` keeps
everything in-process; results are identical either way and worker
telemetry merges back into the run's metrics).
Live-operations flags, also global:

* ``--telemetry-port N`` — serve ``/metrics`` (Prometheus),
  ``/metrics.json``, ``/healthz``, ``/slo``, and ``/quality`` while a
  long-running subcommand (``monitor``, ``health``, ``adaptive``)
  executes; port 0 picks an ephemeral one.
* ``--trace-out PATH`` — record every pipeline span and write a Chrome
  trace-event JSON (open in Perfetto / ``chrome://tracing``).
* ``--manifest-out PATH`` — write the run-provenance manifest (command,
  config digest, input SHA-256s, metrics snapshot, outputs).
  ``publish --output X`` writes ``X.manifest.json`` automatically.

Every command is pure stdlib ``argparse`` over the library API, so the
CLI is also living documentation of the public surface. Operational
errors — an unreadable input path, a malformed measurement file — are
caught at the top level and reported as one ``iqb: error: ...`` line
with exit status 2; a traceback out of the CLI is by definition a bug.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import comparison_report, region_report
from repro.analysis.tables import render_table
from repro.core.config import IQBConfig, paper_config
from repro.core.exceptions import SchemaError
from repro.core.framework import IQBFramework
from repro.core.sensitivity import percentile_sweep
from repro.measurements.io import IngestStats, read_jsonl, write_jsonl
from repro.netsim.population import REGION_PRESETS, region_preset
from repro.netsim.simulator import CampaignConfig, simulate_regions
from repro.obs import (
    RunContext,
    TelemetryServer,
    TraceRecorder,
    install_trace_recorder,
    setup_logging,
    uninstall_trace_recorder,
    write_chrome_trace,
)
from repro.obs.manifest import MANIFEST_SUFFIX, RunManifest
from repro.parallel import ShardError, read_jsonl_parallel

#: The active invocation's provenance accumulator (set by :func:`main`;
#: commands register configs/inputs/outputs on it as they run).
_RUN: Optional[RunContext] = None

#: The live telemetry endpoint, when a subcommand started one. Module
#: visible so an embedding test can reach the ephemeral port mid-run.
_TELEMETRY: Optional[TelemetryServer] = None


def _load_config(path: Optional[str]) -> IQBConfig:
    config = paper_config() if path is None else IQBConfig.load(path)
    if _RUN is not None:
        _RUN.set_config(config)
    return config


def _read_measurements(args: argparse.Namespace):
    """Read the command's input file, recording provenance as we go."""
    stats = IngestStats()
    workers = getattr(args, "workers", 1)
    if workers > 1:
        records = read_jsonl_parallel(
            args.input, workers, on_error=args.on_error, stats=stats
        )
    else:
        records = read_jsonl(args.input, on_error=args.on_error, stats=stats)
    if _RUN is not None:
        _RUN.add_input(args.input, stats)
    return records


def _warm_from_cache(args: argparse.Namespace):
    """Warm a scoring plane from a local tile cache, with provenance.

    Every tile read is digest-verified; the cache manifest's signature
    digest lands in the run manifest so a published score is pinned to
    the exact cache snapshot it came from.
    """
    from repro.cache import LocalCache, tile_entries, warm_plane

    cache = LocalCache(args.from_cache)
    granularity = getattr(args, "cache_granularity", None) or "region"
    plane = warm_plane(cache, granularity=granularity)
    if _RUN is not None:
        manifest = cache.manifest()
        _RUN.set_cache_source(
            cache.root,
            manifest.manifest_sha256,
            tiles=len(tile_entries(cache, granularity=granularity)),
            granularity=granularity,
        )
    return plane


def _check_cache_args(args: argparse.Namespace) -> Optional[str]:
    """Validate the input-vs-cache choice for cache-warmable commands."""
    if args.input is None and args.from_cache is None:
        return "an input file or --from-cache DIR is required"
    if args.input is not None and args.from_cache is not None:
        return "give an input file or --from-cache, not both"
    if args.from_cache is not None and args.quantiles == "exact":
        return (
            "--from-cache scores from quantile-sketch tiles; "
            "--quantiles exact needs the raw measurement file"
        )
    return None


def _start_telemetry(args: argparse.Namespace) -> Optional[TelemetryServer]:
    """Bring up the telemetry endpoint when ``--telemetry-port`` is set."""
    global _TELEMETRY
    if getattr(args, "telemetry_port", None) is None:
        return None
    server = TelemetryServer(
        port=args.telemetry_port,
        stalled_after_s=getattr(args, "stalled_after", None),
    )
    server.start()
    _TELEMETRY = server
    print(f"telemetry: listening on http://{server.address}", file=sys.stderr)
    return server


def _stop_telemetry(server: Optional[TelemetryServer]) -> None:
    global _TELEMETRY
    if server is not None:
        server.stop()
    _TELEMETRY = None


def _record_degraded(breakdowns) -> None:
    """Register every degraded region's missing datasets with the run."""
    if _RUN is None:
        return
    for region, breakdown in breakdowns.items():
        _RUN.add_degraded(region, breakdown.degraded_datasets)


def _cmd_simulate(args: argparse.Namespace) -> int:
    names = args.regions or sorted(REGION_PRESETS)
    profiles = [region_preset(name) for name in names]
    campaign = CampaignConfig(
        subscribers=args.subscribers,
        tests_per_client=args.tests,
        days=args.days,
        wifi_share=args.wifi_share,
    )
    records = simulate_regions(
        profiles, seed=args.seed, config=campaign, workers=args.workers
    )
    count = write_jsonl(records, args.output)
    if _RUN is not None:
        _RUN.add_output(args.output)
    print(f"wrote {count} measurements for {len(profiles)} regions to {args.output}")
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    problem = _check_cache_args(args)
    if problem is None and args.from_cache is not None and args.lint:
        problem = "--lint inspects raw measurements; it cannot run --from-cache"
    if problem is not None:
        print(f"iqb: error: {problem}", file=sys.stderr)
        return 2
    if args.from_cache is not None:
        from repro.core.exceptions import DataError, IntegrityError

        try:
            records = _warm_from_cache(args)
        except (IntegrityError, DataError) as exc:
            print(f"iqb: error: {exc}", file=sys.stderr)
            return 1
        if args.quantiles is None:
            # Tiles are sketches; there is no exact plane to fall back
            # to. Re-record so the manifest reflects what actually ran.
            args.quantiles = "sketch"
            if _RUN is not None:
                _RUN.set_quantiles("sketch")
    else:
        records = _read_measurements(args)
    config = _load_config(args.config)
    if args.lint:
        from repro.core.lint import lint_config

        findings = lint_config(config, records)
        for finding in findings:
            print(finding)
        if findings:
            print()
    if args.json:
        import json as json_module

        from repro.core.scoring import score_regions

        breakdowns = (
            score_regions(
                records,
                config,
                workers=args.workers,
                kernel=args.kernel,
                quantiles=args.quantiles,
            )
            if len(records)
            else {}
        )
        _record_degraded(breakdowns)
        document = {
            "kernel": args.kernel,
            "regions": {
                region: breakdown.to_dict()
                for region, breakdown in breakdowns.items()
            },
        }
        if args.quantiles is not None:
            document["quantiles"] = args.quantiles
        print(json_module.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            comparison_report(
                records,
                config,
                workers=args.workers,
                kernel=args.kernel,
                quantiles=args.quantiles,
            )
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    records = _read_measurements(args)
    config = _load_config(args.config)
    print(region_report(records, args.region, config))
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    config = paper_config()
    if args.output:
        config.save(args.output)
        print(f"wrote canonical paper config to {args.output}")
    else:
        print(config.to_json())
    return 0


def _cmd_tiers(args: argparse.Namespace) -> int:
    framework = IQBFramework(_load_config(args.config))
    print(framework.render_tier_map())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    records = _read_measurements(args)
    config = _load_config(args.config)
    sources = records.for_region(args.region).group_by_source()
    sweep = percentile_sweep(sources, config, percentiles=args.percentiles)
    print(
        render_table(
            ["Percentile", "IQB score"],
            [(f"p{int(p)}", score) for p, score in sorted(sweep.items())],
        )
    )
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.analysis.temporal import score_time_series, trend
    from repro.core.exceptions import DataError

    records = _read_measurements(args)
    config = _load_config(args.config)
    points = score_time_series(
        records,
        args.region,
        config,
        window_seconds=args.window_days * 86400.0,
    )
    rows = [
        (
            f"{point.start / 86400.0:.1f}d",
            "n/a" if point.score is None else f"{point.score:.3f}",
            point.samples,
        )
        for point in points
    ]
    print(render_table(["Window start", "IQB", "Tests"], rows))
    from repro.analysis.tables import sparkline

    print(
        "Series: "
        + sparkline([point.score for point in points], low=0.0, high=1.0)
        + "  (scaled 0..1)"
    )
    try:
        slope, _ = trend(points)
        print(f"Trend: {slope:+.4f} IQB/day")
    except DataError:
        print("Trend: not enough scored windows")
    return 0


def _cmd_peak(args: argparse.Namespace) -> int:
    from repro.analysis.temporal import peak_vs_offpeak

    records = _read_measurements(args)
    config = _load_config(args.config)
    contrast = peak_vs_offpeak(records, args.region, config)
    fmt = lambda v: "n/a" if v is None else f"{v:.3f}"
    print(f"Peak (18-23h) : {fmt(contrast.peak_score)} "
          f"({contrast.peak_samples} tests)")
    print(f"Off-peak      : {fmt(contrast.off_peak_score)} "
          f"({contrast.off_peak_samples} tests)")
    if contrast.degradation is not None:
        print(f"Degradation   : {contrast.degradation:+.3f} "
              f"(positive = evenings worse)")
    return 0


def _cmd_equity(args: argparse.Namespace) -> int:
    from repro.analysis.equity import (
        equity_table,
        scores_by_isp,
        scores_by_technology,
    )

    records = _read_measurements(args)
    config = _load_config(args.config)
    analyze = scores_by_isp if args.by == "isp" else scores_by_technology
    breakdown = analyze(records, args.region, config)
    rows = [
        (
            row["group"],
            "n/a" if row["score"] is None else f"{row['score']:.3f}",
            row["samples"],
            (
                "n/a"
                if row["delta_vs_region"] is None
                else f"{row['delta_vs_region']:+.3f}"
            ),
        )
        for row in equity_table(breakdown)
    ]
    print(f"Region {args.region}: overall IQB {breakdown.overall:.3f}")
    print(render_table([args.by.upper(), "IQB", "Tests", "vs region"], rows))
    if breakdown.gap is not None:
        print(f"Equity gap (best - worst group): {breakdown.gap:.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.compare import attribute_difference, render_attribution
    from repro.core.scoring import score_region

    records = _read_measurements(args)
    config = _load_config(args.config)
    breakdowns = []
    for region in (args.region_a, args.region_b):
        sources = records.for_region(region).group_by_source()
        breakdowns.append(score_region(sources, config))
    attribution = attribute_difference(breakdowns[0], breakdowns[1])
    print(f"{args.region_a}: {attribution.score_a:.3f}")
    print(f"{args.region_b}: {attribution.score_b:.3f}")
    print(render_attribution(attribution, top=args.top))
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.publish import build_publication
    from repro.core.scoring import score_regions
    from repro.fsutil import atomic_write

    records = _read_measurements(args)
    config = _load_config(args.config)
    populations = None
    if args.populations:
        with open(args.populations, "r", encoding="utf-8") as handle:
            populations = {
                str(region): float(value)
                for region, value in json_module.load(handle).items()
            }
    breakdowns = score_regions(
        records,
        config,
        workers=args.workers,
        kernel=args.kernel,
        quantiles=args.quantiles,
    )
    _record_degraded(breakdowns)
    document = build_publication(
        records,
        config,
        populations=populations,
        workers=args.workers,
        breakdowns=breakdowns,
    )
    if args.output:
        atomic_write(args.output, document + "\n")
        if _RUN is not None:
            _RUN.add_output(args.output)
        print(f"wrote publication to {args.output}")
    else:
        print(document)
    return 0


def _cmd_label(args: argparse.Namespace) -> int:
    from repro.analysis.scorecard import build_scorecard, render_scorecard

    records = _read_measurements(args)
    config = _load_config(args.config)
    card = build_scorecard(records, args.region, config)
    print(render_scorecard(card))
    return 0


def _open_monitor_journal(args: argparse.Namespace):
    """Open the campaign journal per ``--journal`` / ``--resume``.

    ``--resume PATH`` demands an existing journal (a typo'd path must
    not silently start a fresh campaign); ``--journal PATH`` records to
    PATH and resumes automatically when it already exists.
    """
    import os as os_module

    from repro.resilience import CampaignJournal

    path = args.resume or args.journal
    if path is None:
        return None
    if args.resume and not os_module.path.exists(args.resume):
        raise FileNotFoundError(
            f"--resume journal not found: {args.resume} "
            f"(use --journal to start a new campaign)"
        )
    return CampaignJournal(path)


def _load_slo_rules(path: Optional[str], records, window_s: float):
    """Resolve the SLO rule set: a rule file, or built-in defaults.

    The built-in set derives per-dataset freshness budgets from the
    datasets actually present in ``records`` and the replay's window
    width, so ``iqb health data.jsonl`` is useful with zero config.
    """
    from repro.obs.health import default_rules
    from repro.obs.slo import load_rules

    if path is not None:
        return load_rules(path)
    datasets = sorted({record.source for record in records})
    return default_rules(datasets, window_s)


def _finish_health(health) -> "object":
    """Uninstall the monitor and file its report with the run.

    Runs in command ``finally`` blocks, so an interrupted campaign
    still leaves its last-known health verdict in the manifest.
    """
    from repro.obs.health import uninstall_health_monitor

    uninstall_health_monitor()
    report = health.evaluate()
    if _RUN is not None:
        _RUN.set_health_report(report)
    return report


def _cmd_monitor(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.probing.monitor import BarometerMonitor
    from repro.resilience import window_key

    records = _read_measurements(args)
    config = _load_config(args.config)
    if len(records) == 0:
        print("no measurements to monitor")
        return 0
    width = args.window_days * 86400.0
    health = None
    if args.slo_rules is not None:
        from repro.obs.health import HealthMonitor, install_health_monitor

        health = HealthMonitor(
            rules=_load_slo_rules(args.slo_rules, records, width)
        )
        install_health_monitor(health)
    monitor = BarometerMonitor(
        config,
        min_drop=args.min_drop,
        trailing=args.trailing,
        quantiles=args.quantiles or "exact",
    )
    journal = _open_monitor_journal(args)
    resumed_windows = 0
    if journal is not None and len(journal):
        # Snapshot state first, then redo the post-snapshot WAL
        # windows from their recorded score points — the baselines a
        # resumed campaign alerts against are bit-identical to an
        # uninterrupted run's.
        if journal.state is not None:
            monitor.restore_state(journal.state)
        for _, data in journal.replay():
            if data:
                monitor.apply_window(data)
        resumed_windows = len(journal)
        print(
            f"resuming: {resumed_windows} window(s) already complete "
            f"in journal",
            file=sys.stderr,
        )
    timestamps = [record.timestamp for record in records]
    start = min(timestamps)
    end = max(timestamps)
    total_alerts = 0
    window_start = start
    telemetry = _start_telemetry(args)
    try:
        while window_start <= end:
            window_end = window_start + width
            key = window_key(window_start, window_end)
            if journal is not None and key in journal:
                window_start = window_end
                continue
            alerts = monitor.ingest(records, window_start, window_end)
            if journal is not None:
                journal.record(
                    key, data=monitor.window_state(window_start, window_end)
                )
            day = (window_start - start) / 86400.0
            if alerts:
                total_alerts += len(alerts)
                for alert in alerts:
                    print(f"window +{day:.1f}d: {alert}")
            elif args.verbose:
                scores = ", ".join(
                    f"{region}="
                    + (
                        "n/a"
                        if monitor.history(region)[-1].score is None
                        else f"{monitor.history(region)[-1].score:.3f}"
                    )
                    for region in monitor.regions()
                )
                print(f"window +{day:.1f}d: ok ({scores})")
            if args.cycle_sleep > 0:
                # Pace the replay in real time — this is how a live
                # campaign looks to a telemetry scraper, and how the
                # integration tests curl a running monitor.
                time_module.sleep(args.cycle_sleep)
            window_start = window_end
    finally:
        # Flush on every exit — including KeyboardInterrupt — so the
        # journal always reflects the windows that completed and the
        # manifest carries the last-known health verdict.
        if journal is not None:
            journal.checkpoint(monitor.state_dict())
            journal.close()
        if health is not None:
            health_report = _finish_health(health)
        _stop_telemetry(telemetry)
    summary = f"{total_alerts} alert(s) over {len(records)} measurements"
    if resumed_windows:
        summary += f" ({resumed_windows} window(s) resumed from journal)"
    print(summary)
    if health is not None:
        print(f"health: {health_report.status}")
    return 0


def _follow_jsonl(path, service, stop, interval, on_error) -> None:
    """Tail ``path`` for appended JSONL records and ingest them.

    Byte-offset tailing with torn-line tolerance: only lines ending in
    a newline are consumed, a partial tail stays buffered for the next
    poll (the same guarantee the campaign journal makes for its WAL).
    Malformed lines follow ``--on-error``: ``skip`` counts them into
    ``serve.follow.skipped``; ``raise`` stops the follower and leaves
    the error visible in the log (the server keeps serving the last
    consistent generation).

    Truncation (logrotate copytruncate, an operator rewriting the
    file) is detected by the file shrinking below our offset: the
    follower resets to byte 0, drops any buffered partial tail (it
    belonged to the old file), counts ``serve.follow.truncations``,
    and re-ingests the rewritten content on the same poll — without
    the reset a shrunk file silently stops being followed until it
    grows past the stale offset, serving stale scores forever.
    """
    import json as json_module
    import os

    from repro.measurements.record import Measurement
    from repro.obs import counter, get_logger

    logger = get_logger(__name__)
    skipped = counter("serve.follow.skipped")
    ingested = counter("serve.follow.records")
    truncations = counter("serve.follow.truncations")
    try:
        offset = os.path.getsize(path)
    except OSError:
        offset = 0
    pending = b""
    while not stop.wait(interval):
        try:
            size = os.path.getsize(path)
        except OSError:
            continue
        if size < offset:
            truncations.inc()
            logger.warning(
                "serve follower: input truncated, re-reading from start",
                extra={"ctx": {"path": path, "old_offset": offset}},
            )
            offset = 0
            pending = b""
        if size <= offset:
            continue
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            continue
        offset += len(chunk)
        pending += chunk
        complete, newline, pending = pending.rpartition(b"\n")
        if not newline:
            pending = complete
            continue
        batch = []
        for raw in complete.split(b"\n"):
            line = raw.strip()
            if not line:
                continue
            try:
                record = Measurement.from_dict(
                    json_module.loads(line.decode("utf-8"))
                )
            except Exception as exc:  # noqa: BLE001 - per-line verdict
                if on_error == "raise":
                    logger.error(
                        "serve follower stopped on malformed line",
                        extra={"ctx": {"path": path, "error": repr(exc)}},
                    )
                    return
                skipped.inc()
                continue
            batch.append(record)
        if batch:
            service.ingest(batch)
            ingested.inc(len(batch))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the /v1 scoring API until SIGTERM/SIGINT, then drain."""
    import json as json_module
    import signal
    import threading
    import time as time_module

    from repro.measurements.columnar import ColumnarStore
    from repro.serve import ScoringService, ServeServer

    global _TELEMETRY

    problem = _check_cache_args(args)
    if problem is None and args.from_cache is not None and args.follow > 0:
        problem = "--follow tails a measurement file; it cannot run --from-cache"
    if problem is not None:
        print(f"iqb: error: {problem}", file=sys.stderr)
        return 2
    if args.from_cache is not None:
        from repro.core.exceptions import DataError, IntegrityError

        try:
            store = _warm_from_cache(args)
        except (IntegrityError, DataError) as exc:
            print(f"iqb: error: {exc}", file=sys.stderr)
            return 1
        records = store
    else:
        records = _read_measurements(args)
        store = ColumnarStore(list(records))
    config = _load_config(args.config)
    populations = None
    if args.populations is not None:
        with open(args.populations, "r", encoding="utf-8") as handle:
            populations = {
                str(region): float(population)
                for region, population in json_module.load(handle).items()
            }
    health = None
    if args.slo_rules is not None:
        from repro.obs.health import (
            HealthMonitor,
            install_health_monitor,
            serve_default_rules,
        )
        from repro.obs.slo import load_rules

        rules = (
            serve_default_rules()
            if args.slo_rules == "default"
            else load_rules(args.slo_rules)
        )
        # Wall-clock evaluation: a query service has no data-time
        # replay to anchor to — burn rates age in real time.
        health = HealthMonitor(rules=rules, clock=time_module.time)
        install_health_monitor(health)
    service = ScoringService(
        store,
        config,
        populations=populations,
        kernel=args.kernel,
        quantiles=args.quantiles,
        workers=args.workers,
        cache_size=args.cache_size,
        batch_window_s=args.batch_window,
    )
    server = ServeServer(
        service,
        host=args.host,
        port=args.port,
        stalled_after_s=getattr(args, "stalled_after", None),
        health=health,
    )
    server.start()
    _TELEMETRY = server
    # The address line goes to stderr, flushed: scripts (and the CI
    # smoke step) read the ephemeral port from it.
    print(
        f"serve: listening on http://{server.address}",
        file=sys.stderr,
        flush=True,
    )
    print(
        f"serve: {len(records)} measurement(s) at generation "
        f"{service.generation}, config {service.config_sha256[:12]}",
        file=sys.stderr,
        flush=True,
    )
    stop = threading.Event()

    def _request_stop(signum: int, frame: object) -> None:
        stop.set()

    previous_term = signal.signal(signal.SIGTERM, _request_stop)
    previous_int = signal.signal(signal.SIGINT, _request_stop)
    follower = None
    if args.follow > 0:
        follower = threading.Thread(
            target=_follow_jsonl,
            args=(args.input, service, stop, args.follow, args.on_error),
            name="iqb-serve-follow",
            daemon=True,
        )
        follower.start()
    try:
        while not stop.wait(0.25):
            if health is not None:
                health.tick(time_module.time())
    finally:
        # Graceful shutdown on any exit: stop taking the process down
        # with requests mid-flight, then flush health into the run
        # manifest (main() writes it on the normal return path).
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        stop.set()
        if follower is not None:
            follower.join(timeout=2.0)
        drained = server.drain(timeout=args.drain_timeout)
        _stop_telemetry(server)
        if health is not None:
            _finish_health(health)
    drain_note = "" if drained else " (drain timed out)"
    print(
        f"serve: shut down after {server.request_count()} request(s), "
        f"generation {service.generation}{drain_note}"
    )
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Replay a measurement file and judge the *barometer's* health.

    The score says how the internet is doing; this says whether the
    barometer itself can be believed — dataset freshness and
    completeness SLOs with burn-rate states, ingest error rate,
    scoring latency, and score-drift detection that separates real
    shifts from stale data. Exit status 1 when any SLO is at PAGE.
    """
    import json as json_module
    import time as time_module

    from repro.obs.health import HealthMonitor, install_health_monitor
    from repro.probing.monitor import BarometerMonitor

    records = _read_measurements(args)
    config = _load_config(args.config)
    if len(records) == 0:
        print("no measurements to assess")
        return 0
    width = args.window_days * 86400.0
    health = HealthMonitor(
        rules=_load_slo_rules(args.rules, records, width)
    )
    install_health_monitor(health)
    # Sketch-backed replay: every record folds into the live t-digest
    # plane (notifying health per arrival) and each window close hands
    # the drift detector incremental scores.
    monitor = BarometerMonitor(config, quantiles="sketch")
    telemetry = _start_telemetry(args)
    timestamps = [record.timestamp for record in records]
    start = min(timestamps)
    end = max(timestamps)
    window_start = start
    windows = 0
    try:
        while window_start <= end:
            window_end = window_start + width
            monitor.ingest(records, window_start, window_end)
            windows += 1
            if args.watch:
                snapshot = health.evaluate()
                day = (window_start - start) / 86400.0
                breaches = ", ".join(
                    f"{status.name}={status.state}"
                    for status in snapshot.rules
                    if status.state != "ok"
                )
                print(
                    f"window +{day:.1f}d: {snapshot.status}"
                    + (f" ({breaches})" if breaches else "")
                )
                if args.cycles and windows >= args.cycles:
                    break
                if args.interval > 0:
                    time_module.sleep(args.interval)
            window_start = window_end
    finally:
        # Uninstall + file the report even on Ctrl-C out of a watch
        # loop: the manifest still gets the last-known verdict.
        report = _finish_health(health)
        _stop_telemetry(telemetry)
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        rows = [
            (
                status.name,
                status.signal,
                status.state.upper(),
                f"{status.burn_fast:.2f}",
                f"{status.burn_slow:.2f}",
                status.samples,
                status.detail or "-",
            )
            for status in report.rules
        ]
        print(
            render_table(
                ["Rule", "Signal", "State", "Burn (fast)", "Burn (slow)",
                 "Samples", "Detail"],
                rows,
            )
        )
        for event in report.drift:
            print(
                f"drift: {event['region']} {event['kind']} "
                f"({event['direction']}) score {event['score']:.3f} "
                f"vs baseline {event['baseline']:.3f}"
            )
        print(f"health: {report.status} over {windows} window(s)")
    return 1 if report.status == "page" else 0


def _cmd_adaptive(args: argparse.Namespace) -> int:
    from repro.probing.adaptive import AdaptiveAllocator, uniform_campaign
    from repro.probing.backends import SimulatedBackend

    config = _load_config(args.config)
    names = args.regions or sorted(REGION_PRESETS)
    profiles = [region_preset(name) for name in names]

    def backend():
        return SimulatedBackend(
            profiles=profiles, seed=args.seed, subscribers=args.subscribers
        )

    telemetry = _start_telemetry(args)
    try:
        adaptive = AdaptiveAllocator(
            backend(),
            config,
            seed=args.seed,
            pilot_per_region=args.pilot,
            quantiles=args.quantiles or "exact",
        ).run(total_budget=args.budget, rounds=args.rounds)
        uniform = uniform_campaign(
            backend(), config, total_budget=args.budget, seed=args.seed
        )
    finally:
        _stop_telemetry(telemetry)
    adaptive_counts = adaptive.tests_per_region()
    uniform_counts = uniform.tests_per_region()
    rows = [
        (
            region,
            adaptive_counts.get(region, 0),
            adaptive.final_ci_widths[region],
            uniform_counts.get(region, 0),
            uniform.final_ci_widths[region],
        )
        for region in sorted(adaptive.final_ci_widths)
    ]
    print(f"Probe budget {args.budget}, {args.rounds} adaptive rounds:")
    print(
        render_table(
            ["Region", "Adaptive tests", "Adaptive CI", "Uniform tests",
             "Uniform CI"],
            rows,
        )
    )
    print(
        f"Worst-case CI: adaptive {adaptive.worst_ci_width:.3f} "
        f"vs uniform {uniform.worst_ci_width:.3f}"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Exercise the pipeline end to end and dump the metrics snapshot.

    Three instrumented stages run inside one ``pipeline`` span: a probe
    campaign with injected transient failures (retry/abandon counters
    and per-backend latency), measurement ingest (from ``input`` when
    given, else the campaign's own records), and a batch scoring pass
    (quantile-cache hit/miss counters). The registry snapshot then goes
    to stdout as JSON (or aligned text with ``--text``).
    """
    from repro.core.scoring import score_regions
    from repro.obs import REGISTRY, reset, span
    from repro.probing.backends import ProbeRequest, SimulatedBackend
    from repro.probing.runner import ProbeRunner
    from repro.probing.sinks import MemorySink

    reset()
    config = _load_config(args.config)
    names = args.regions or ["metro-fiber", "rural-dsl"]
    profiles = [region_preset(name) for name in names]
    with span("pipeline"):
        with span("probe"):
            backend = SimulatedBackend(
                profiles=profiles,
                seed=args.seed,
                subscribers=args.subscribers,
                failure_rate=args.failure_rate,
            )
            sink = MemorySink()
            runner = ProbeRunner(backend, sink, max_attempts=3)
            window = 7.0 * 86400.0
            schedule = [
                ProbeRequest(
                    client=client,
                    region=region,
                    timestamp=(i + 0.5) * window / args.probes,
                )
                for region in backend.regions()
                for client in backend.clients()
                for i in range(args.probes)
            ]
            runner.run(schedule)
        with span("ingest"):
            if args.input:
                records = _read_measurements(args)
            else:
                records = sink.as_set()
        with span("score"):
            if len(records):
                score_regions(
                    records,
                    config,
                    workers=args.workers,
                    kernel=args.kernel,
                    quantiles=args.quantiles,
                )
    chosen = args.format or ("text" if args.text else "json")
    if chosen == "prom":
        print(REGISTRY.render_prometheus(), end="")
    elif chosen == "text":
        print(REGISTRY.render_text())
    else:
        print(REGISTRY.render_json())
    return 0


def _cmd_cache_build(args: argparse.Namespace) -> int:
    """Reduce a measurement file to verified quantile-sketch tiles."""
    import json as json_module

    from repro.cache import LocalCache, write_tiles

    records = _read_measurements(args)
    cache = LocalCache(args.cache)
    granularities = tuple(args.granularity or ("region",))
    already_published = {entry.path for entry in cache.manifest().entries}
    entries = write_tiles(
        cache,
        records,
        granularities=granularities,
        period_s=args.period_days * 86400.0,
    )
    built = sorted(
        entry.path for entry in entries
        if entry.path not in already_published
    )
    manifest = cache.manifest()
    if _RUN is not None:
        _RUN.add_output(str(cache.manifest_path))
        _RUN.set_cache_source(
            cache.root, manifest.manifest_sha256, tiles=len(manifest.entries)
        )
    if args.json:
        document = {
            "cache": str(cache.root),
            "built": built,
            "tiles": len(manifest.entries),
            "periods": manifest.periods(),
            "manifest_sha256": manifest.manifest_sha256,
        }
        print(json_module.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            f"cache build: {len(built)} new tile(s) "
            f"({len(manifest.entries)} total) in {cache.root}, "
            f"manifest {manifest.manifest_sha256[:12]}"
        )
    return 0


def _cmd_cache_push(args: argparse.Namespace) -> int:
    """Upload verified local artifacts a remote is missing."""
    import json as json_module

    from repro.cache import LocalCache, default_breaker, open_remote, push
    from repro.core.exceptions import IntegrityError, RemoteError
    from repro.resilience import BreakerOpenError, RetryPolicy

    cache = LocalCache(args.cache)
    remote = open_remote(args.remote)
    policy = RetryPolicy(
        max_attempts=args.max_attempts, base_s=0.05, cap_s=2.0
    )
    try:
        report = push(cache, remote, policy=policy, breaker=default_breaker())
    except (IntegrityError, RemoteError, BreakerOpenError) as exc:
        print(f"iqb cache: error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"cache push: {len(report.uploaded)} uploaded, "
            f"{len(report.skipped)} already on {remote.name}, "
            f"{report.retries} retried, "
            f"{report.bytes_transferred} bytes; "
            f"manifest {report.manifest_sha256[:12]}"
        )
    return 0


def _cmd_cache_pull(args: argparse.Namespace) -> int:
    """Fetch missing artifacts; resume partials; verify everything."""
    import json as json_module

    from repro.cache import LocalCache, default_breaker, open_remote, pull
    from repro.core.exceptions import IntegrityError, RemoteError
    from repro.resilience import BreakerOpenError, RetryPolicy

    cache = LocalCache(args.cache)
    remote = open_remote(args.remote)
    policy = RetryPolicy(
        max_attempts=args.max_attempts, base_s=0.05, cap_s=2.0
    )
    try:
        report = pull(cache, remote, policy=policy, breaker=default_breaker())
    except (IntegrityError, RemoteError, BreakerOpenError) as exc:
        print(f"iqb cache: error: {exc}", file=sys.stderr)
        return 1
    if _RUN is not None:
        _RUN.set_cache_source(
            cache.root,
            report.manifest_sha256,
            tiles=len(cache.manifest().entries),
        )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"cache pull: {len(report.fetched)} fetched, "
            f"{len(report.skipped)} already present, "
            f"{report.resumed} resumed, {report.retries} retried, "
            f"{report.bytes_transferred} bytes; "
            f"manifest {report.manifest_sha256[:12]}"
        )
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    """Re-hash every manifest entry; quarantine and report corruption."""
    import json as json_module

    from repro.cache import LocalCache
    from repro.core.exceptions import IntegrityError

    cache = LocalCache(args.cache)
    try:
        report = cache.verify()
    except IntegrityError as exc:
        # The manifest itself failed its signature — nothing below it
        # can be trusted, so this is its own loud failure mode.
        print(f"iqb cache: error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        document = {
            "cache": str(cache.root),
            "ok": report.ok,
            "verified": report.verified,
            "manifest_sha256": report.manifest_sha256,
            "findings": [
                {"kind": f.kind, "path": f.path, "detail": f.detail}
                for f in report.findings
            ],
        }
        print(json_module.dumps(document, indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            detail = f" ({finding.detail})" if finding.detail else ""
            print(f"cache verify: {finding.kind}: {finding.path}{detail}")
        verdict = "ok" if report.ok else "FAILED"
        print(
            f"cache verify: {verdict} — {report.verified} artifact(s) "
            f"verified, {len(report.findings)} finding(s); "
            f"manifest {report.manifest_sha256[:12]}"
        )
    return 0 if report.ok else 1


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    """Delete unreferenced artifacts and stale partial downloads."""
    import json as json_module

    from repro.cache import LocalCache

    cache = LocalCache(args.cache)
    report = cache.gc()
    if args.json:
        document = {
            "cache": str(cache.root),
            "removed": sorted(report.removed),
            "partials": sorted(report.partials),
        }
        print(json_module.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            f"cache gc: removed {len(report.removed)} unreferenced "
            f"artifact(s), {len(report.partials)} partial download(s) "
            f"from {cache.root}"
        )
    return 0


def _load_manifest(path: str) -> RunManifest:
    """Load one manifest, mapping malformed JSON to a CLI-level error."""
    import json as json_module

    try:
        return RunManifest.load(path)
    except json_module.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not a manifest: {exc}") from exc


def _cmd_runs_list(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.obs import find_manifests

    paths = find_manifests(args.paths)
    if not paths:
        print("no manifests found")
        return 0
    rows = []
    for path in paths:
        manifest = _load_manifest(str(path))
        command = " ".join(manifest.command) or "(unknown)"
        if len(command) > 44:
            command = command[:41] + "..."
        started = time_module.strftime(
            "%Y-%m-%d %H:%M:%SZ", time_module.gmtime(manifest.started_unix)
        )
        rows.append(
            (
                path.name,
                command,
                started,
                f"{manifest.duration_s:.2f}s",
                len(manifest.inputs),
                len(manifest.outputs),
            )
        )
    print(
        render_table(
            ["Manifest", "Command", "Started (UTC)", "Duration", "In", "Out"],
            rows,
        )
    )
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.obs import render_diff

    manifest_a = _load_manifest(args.manifest_a)
    manifest_b = _load_manifest(args.manifest_b)
    print(render_diff(manifest_a, manifest_b))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="iqb",
        description="Internet Quality Barometer (IQB) reproduction toolkit.",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="pipeline log verbosity (events go to stderr)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log events as JSONL instead of human text",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard ingest, batch scoring, and simulation across N "
        "forked worker processes (default 1 = fully in-process; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--kernel",
        choices=("vectorized", "exact"),
        default="vectorized",
        help="batch-scoring kernel: the batched numpy kernel (default) "
        "or the scalar reference path; breakdowns are identical "
        "either way (the choice is recorded in --json output and "
        "run manifests)",
    )
    parser.add_argument(
        "--quantiles",
        choices=("exact", "sketch"),
        default=None,
        help="quantile plane for scoring: exact sorted columns "
        "(bit-identical to the historical output) or streaming "
        "t-digest sketches (O(1) incremental updates; p95/p99 "
        "relative error ≤ 1%%). Default: follow the config's "
        "per-dataset quantile policy. Recorded in --json output "
        "and run manifests",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /metrics.json, /healthz while a "
        "long-running subcommand (monitor, adaptive) executes "
        "(0 = ephemeral port; address printed to stderr)",
    )
    parser.add_argument(
        "--stalled-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="healthz reports 503 when no monitor cycle completed "
        "within this many seconds (requires --telemetry-port)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record every pipeline span and write a Chrome "
        "trace-event JSON (open in Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--manifest-out",
        default=None,
        metavar="PATH",
        help="write the run-provenance manifest (command, config "
        "digest, input SHA-256s, metrics snapshot) to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="simulate a measurement campaign to JSONL"
    )
    simulate.add_argument("output", help="output JSONL path")
    simulate.add_argument(
        "--regions",
        nargs="*",
        choices=sorted(REGION_PRESETS),
        help="region presets (default: all)",
    )
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--subscribers", type=int, default=150)
    simulate.add_argument(
        "--tests", type=int, default=400, help="tests per dataset per region"
    )
    simulate.add_argument("--days", type=float, default=7.0)
    simulate.add_argument(
        "--wifi-share",
        type=float,
        default=0.0,
        help="share of tests run behind imperfect home WiFi (confounder)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    from repro.cache.tiles import GRANULARITIES

    def add_common(
        p: argparse.ArgumentParser, cacheable: bool = False
    ) -> None:
        if cacheable:
            p.add_argument(
                "input",
                nargs="?",
                default=None,
                help="JSONL measurement file (optional with --from-cache)",
            )
            p.add_argument(
                "--from-cache",
                default=None,
                metavar="DIR",
                help="warm the scoring plane from a local tile cache "
                "(see 'iqb cache') instead of ingesting a measurement "
                "file; every tile read is digest-verified and the cache "
                "manifest digest is recorded in the run manifest",
            )
            p.add_argument(
                "--cache-granularity",
                choices=GRANULARITIES,
                default="region",
                help="tile granularity to warm from the cache "
                "(default: region)",
            )
        else:
            p.add_argument("input", help="JSONL measurement file")
        p.add_argument("--config", help="IQB config JSON (default: paper)")
        p.add_argument(
            "--on-error",
            choices=("raise", "skip"),
            default="raise",
            help="malformed-line handling when reading input",
        )

    score = sub.add_parser("score", help="score all regions in a JSONL file")
    add_common(score, cacheable=True)
    score.add_argument(
        "--lint",
        action="store_true",
        help="check the config against the data before scoring",
    )
    score.add_argument(
        "--json",
        action="store_true",
        help="emit full machine-readable breakdowns instead of the table",
    )
    score.set_defaults(func=_cmd_score)

    report = sub.add_parser("report", help="detailed report for one region")
    add_common(report)
    report.add_argument("region", help="region name to report on")
    report.set_defaults(func=_cmd_report)

    config_cmd = sub.add_parser("config", help="print the canonical paper config")
    config_cmd.add_argument("--output", help="write to a file instead of stdout")
    config_cmd.set_defaults(func=_cmd_config)

    tiers = sub.add_parser("tiers", help="render the Fig. 1 tier structure")
    tiers.add_argument("--config", help="IQB config JSON (default: paper)")
    tiers.set_defaults(func=_cmd_tiers)

    sweep = sub.add_parser("sweep", help="percentile sensitivity for a region")
    add_common(sweep)
    sweep.add_argument("region", help="region name to sweep")
    sweep.add_argument(
        "--percentiles",
        nargs="*",
        type=float,
        default=[50.0, 75.0, 90.0, 95.0, 99.0],
    )
    sweep.set_defaults(func=_cmd_sweep)

    trend = sub.add_parser("trend", help="windowed IQB time series for a region")
    add_common(trend)
    trend.add_argument("region", help="region name")
    trend.add_argument("--window-days", type=float, default=1.0)
    trend.set_defaults(func=_cmd_trend)

    peak = sub.add_parser("peak", help="prime-time vs off-peak contrast")
    add_common(peak)
    peak.add_argument("region", help="region name")
    peak.set_defaults(func=_cmd_peak)

    equity = sub.add_parser("equity", help="per-ISP/per-tech score breakdown")
    add_common(equity)
    equity.add_argument("region", help="region name")
    equity.add_argument("--by", choices=("isp", "tech"), default="isp")
    equity.set_defaults(func=_cmd_equity)

    compare = sub.add_parser(
        "compare", help="attribute the score gap between two regions"
    )
    add_common(compare)
    compare.add_argument("region_a", help="baseline region")
    compare.add_argument("region_b", help="comparison region")
    compare.add_argument("--top", type=int, default=6)
    compare.set_defaults(func=_cmd_compare)

    label = sub.add_parser(
        "label", help="consumer scorecard (broadband-label style)"
    )
    add_common(label)
    label.add_argument("region", help="region name")
    label.set_defaults(func=_cmd_label)

    publish = sub.add_parser(
        "publish", help="build the full Markdown barometer report"
    )
    add_common(publish)
    publish.add_argument(
        "--populations",
        help="JSON file mapping region -> population (adds national section)",
    )
    publish.add_argument("--output", help="write to a file instead of stdout")
    publish.set_defaults(func=_cmd_publish)

    monitor = sub.add_parser(
        "monitor", help="replay measurements through the drop detector"
    )
    add_common(monitor)
    monitor.add_argument("--window-days", type=float, default=1.0)
    monitor.add_argument("--min-drop", type=float, default=0.1)
    monitor.add_argument("--trailing", type=int, default=3)
    monitor.add_argument(
        "--verbose", action="store_true", help="print quiet windows too"
    )
    monitor.add_argument(
        "--cycle-sleep",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between windows to pace the replay in real time "
        "(useful with --telemetry-port)",
    )
    monitor.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="record completed windows to a crash-safe campaign "
        "journal at PATH; an existing journal resumes automatically "
        "(completed windows are skipped, baselines restored)",
    )
    monitor.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume a killed campaign from an existing journal "
        "(errors when PATH does not exist; otherwise like --journal)",
    )
    monitor.add_argument(
        "--slo-rules",
        default=None,
        metavar="PATH",
        help="evaluate data-quality SLOs alongside the replay (rule "
        "file as for 'health'); the end-of-run HealthReport lands in "
        "the run manifest and the /slo endpoint",
    )
    monitor.set_defaults(func=_cmd_monitor)

    serve = sub.add_parser(
        "serve",
        help="serve cached region scores over HTTP (/v1 query API)",
    )
    add_common(serve, cacheable=True)
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default loopback; bind 0.0.0.0 to expose)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port; 0 picks an ephemeral one (printed to stderr)",
    )
    serve.add_argument(
        "--populations",
        default=None,
        metavar="PATH",
        help="JSON {region: population} table weighting /v1/national "
        "(default: every region weighs the same)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=64,
        metavar="N",
        help="score-cache LRU bound (results retained across "
        "generations; each entry is one full sweep's output)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="how long a cache-miss leader waits before sweeping so a "
        "request burst coalesces onto one compute (default 0: sweep "
        "immediately)",
    )
    serve.add_argument(
        "--follow",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="poll the input file every SECONDS and ingest appended "
        "JSONL records live (0 disables; ingest bumps the generation "
        "and retires every cached score)",
    )
    serve.add_argument(
        "--slo-rules",
        nargs="?",
        const="default",
        default=None,
        metavar="PATH",
        help="evaluate serve SLOs while running: with no PATH, "
        "built-in p99 latency rules over the /v1 endpoints; with a "
        "PATH, the rule file replaces them (as for 'health')",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="how long shutdown waits for in-flight requests",
    )
    serve.set_defaults(func=_cmd_serve)

    health_cmd = sub.add_parser(
        "health",
        help="data-quality SLO and score-drift assessment of a "
        "measurement file",
    )
    add_common(health_cmd)
    health_cmd.add_argument("--window-days", type=float, default=1.0)
    health_cmd.add_argument(
        "--rules",
        default=None,
        metavar="PATH",
        help="SLO rule file: a JSON list of rule objects or "
        '{"rules": [...]} (YAML accepted when pyyaml is installed). '
        "Default: built-in rules derived from the file's datasets "
        "and the window width",
    )
    health_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the full HealthReport as JSON instead of the table",
    )
    health_cmd.add_argument(
        "--watch",
        action="store_true",
        help="pace the replay one window per --interval, printing "
        "per-window health (Ctrl-C exits cleanly; useful with "
        "--telemetry-port)",
    )
    health_cmd.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sleep between windows in watch mode",
    )
    health_cmd.add_argument(
        "--cycles",
        type=int,
        default=0,
        metavar="N",
        help="stop after N windows in watch mode (0 = replay all)",
    )
    health_cmd.set_defaults(func=_cmd_health)

    adaptive = sub.add_parser(
        "adaptive", help="adaptive vs uniform probe-budget allocation demo"
    )
    adaptive.add_argument(
        "--regions",
        nargs="*",
        choices=sorted(REGION_PRESETS),
        help="region presets (default: all)",
    )
    adaptive.add_argument("--budget", type=int, default=600)
    adaptive.add_argument("--rounds", type=int, default=3)
    adaptive.add_argument("--pilot", type=int, default=40)
    adaptive.add_argument("--subscribers", type=int, default=40)
    adaptive.add_argument("--seed", type=int, default=42)
    adaptive.add_argument("--config", help="IQB config JSON (default: paper)")
    adaptive.set_defaults(func=_cmd_adaptive)

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented pipeline and dump the metrics snapshot",
    )
    metrics.add_argument(
        "input",
        nargs="?",
        help="optional JSONL file to ingest/score (default: the probe "
        "campaign's own records)",
    )
    metrics.add_argument("--config", help="IQB config JSON (default: paper)")
    metrics.add_argument(
        "--on-error",
        choices=("raise", "skip"),
        default="skip",
        help="malformed-line handling when reading input (default: skip, "
        "so skip counters show up in the snapshot)",
    )
    metrics.add_argument(
        "--regions",
        nargs="*",
        choices=sorted(REGION_PRESETS),
        help="region presets for the probe campaign (default: "
        "metro-fiber rural-dsl)",
    )
    metrics.add_argument(
        "--probes",
        type=int,
        default=40,
        help="probes per (region, client) in the campaign",
    )
    metrics.add_argument(
        "--failure-rate",
        type=float,
        default=0.15,
        help="injected transient-failure probability (exercises retries)",
    )
    metrics.add_argument("--subscribers", type=int, default=25)
    metrics.add_argument("--seed", type=int, default=42)
    metrics.add_argument(
        "--format",
        choices=("json", "text", "prom"),
        default=None,
        help="snapshot rendering: JSON (default), aligned text, or "
        "Prometheus text exposition",
    )
    metrics.add_argument(
        "--text",
        action="store_true",
        help="alias for --format text",
    )
    metrics.set_defaults(func=_cmd_metrics)

    cache_cmd = sub.add_parser(
        "cache",
        help="content-addressed dataset cache: build, push, pull, "
        "verify, gc",
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)

    def add_cache_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache",
            required=True,
            metavar="DIR",
            help="local cache root (holds v1/, MANIFEST.json, "
            "quarantine/)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit a machine-readable report instead of the summary "
            "line",
        )

    def add_cache_remote(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "remote",
            help="remote spec: an http(s):// base URL or a directory "
            "path (file remote)",
        )
        p.add_argument(
            "--max-attempts",
            type=int,
            default=5,
            metavar="N",
            help="transfer attempts per artifact before giving up "
            "(decorrelated-jitter backoff between tries)",
        )

    cache_build = cache_sub.add_parser(
        "build",
        help="reduce a JSONL measurement file to quantile-sketch tiles",
    )
    cache_build.add_argument("input", help="JSONL measurement file")
    add_cache_common(cache_build)
    cache_build.add_argument(
        "--on-error",
        choices=("raise", "skip"),
        default="raise",
        help="malformed-line handling when reading input",
    )
    cache_build.add_argument(
        "--granularity",
        action="append",
        choices=GRANULARITIES,
        default=None,
        metavar="G",
        help="tile granularity to materialize (repeatable; default: "
        "region; choices: %(choices)s)",
    )
    cache_build.add_argument(
        "--period-days",
        type=float,
        default=7.0,
        metavar="DAYS",
        help="time-period width of one tile (default: 7)",
    )
    cache_build.set_defaults(func=_cmd_cache_build)

    cache_push = cache_sub.add_parser(
        "push", help="upload verified local artifacts a remote is missing"
    )
    add_cache_remote(cache_push)
    add_cache_common(cache_push)
    cache_push.set_defaults(func=_cmd_cache_push)

    cache_pull = cache_sub.add_parser(
        "pull",
        help="fetch missing artifacts with retry/resume; never publish "
        "unverified bytes",
    )
    add_cache_remote(cache_pull)
    add_cache_common(cache_pull)
    cache_pull.set_defaults(func=_cmd_cache_pull)

    cache_verify = cache_sub.add_parser(
        "verify",
        help="re-hash every cached artifact against the signed manifest "
        "(exit 1 on any integrity failure)",
    )
    add_cache_common(cache_verify)
    cache_verify.set_defaults(func=_cmd_cache_verify)

    cache_gc = cache_sub.add_parser(
        "gc",
        help="delete unreferenced artifacts and stale partial downloads",
    )
    add_cache_common(cache_gc)
    cache_gc.set_defaults(func=_cmd_cache_gc)

    runs = sub.add_parser(
        "runs", help="list and diff run-provenance manifests"
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="tabulate manifests (files or directories)"
    )
    runs_list.add_argument(
        "paths",
        nargs="+",
        help="manifest files, or directories searched for "
        "*.manifest.json",
    )
    runs_list.set_defaults(func=_cmd_runs_list)
    runs_diff = runs_sub.add_parser(
        "diff", help="config/counter/timer deltas between two runs"
    )
    runs_diff.add_argument("manifest_a", help="baseline manifest")
    runs_diff.add_argument("manifest_b", help="comparison manifest")
    runs_diff.set_defaults(func=_cmd_runs_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Operational failures (unreadable paths, malformed measurement
    files) exit 2 with a one-line ``iqb: error: ...`` on stderr;
    anything else propagating out of a command is a bug and keeps its
    traceback.

    Provenance and tracing are run-scoped: a fresh :class:`RunContext`
    accumulates config/input/output registrations across the command,
    and ``--trace-out`` installs a span recorder for exactly this
    invocation. Both artifacts are written only after the command
    succeeds — a failed run leaves no half-true provenance behind.
    """
    global _RUN
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(level=args.log_level, json_mode=args.log_json)
    _RUN = RunContext(argv if argv is not None else sys.argv[1:])
    _RUN.set_kernel(args.kernel)
    _RUN.set_quantiles(args.quantiles)
    recorder: Optional[TraceRecorder] = None
    if args.trace_out:
        recorder = TraceRecorder()
        install_trace_recorder(recorder)
    try:
        code = args.func(args)
        manifest_out = args.manifest_out
        if (
            manifest_out is None
            and args.command == "publish"
            and getattr(args, "output", None)
        ):
            # Publication artifacts carry their provenance alongside.
            manifest_out = args.output + MANIFEST_SUFFIX
        if recorder is not None:
            uninstall_trace_recorder()
            spans_written = write_chrome_trace(recorder, args.trace_out)
            print(
                f"trace: wrote {spans_written} span(s) to {args.trace_out}",
                file=sys.stderr,
            )
            recorder = None
        if manifest_out is not None:
            _RUN.write(manifest_out)
            print(f"manifest: wrote {manifest_out}", file=sys.stderr)
        return code
    except KeyboardInterrupt:
        # Ctrl-C is an operator action, not a bug: command-level
        # cleanup (journal checkpoint, telemetry shutdown) already ran
        # via its finally blocks on the way up. Flush the partial run's
        # provenance — the trace as well as the manifest: an operator
        # interrupting a stuck `monitor --watch` wants the spans up to
        # the interrupt, and losing them made Ctrl-C the one exit path
        # with no trace. Report in one line and exit with the
        # conventional SIGINT status.
        if recorder is not None:
            uninstall_trace_recorder()
            try:
                spans_written = write_chrome_trace(recorder, args.trace_out)
                print(
                    f"trace: wrote {spans_written} span(s) to "
                    f"{args.trace_out} (interrupted run)",
                    file=sys.stderr,
                )
            except OSError:
                pass
            recorder = None
        if args.manifest_out is not None:
            try:
                _RUN.write(args.manifest_out)
                print(
                    f"manifest: wrote {args.manifest_out} (interrupted run)",
                    file=sys.stderr,
                )
            except OSError:
                pass
        print("iqb: interrupted", file=sys.stderr)
        return 130
    except (OSError, SchemaError, ShardError) as exc:
        print(f"iqb: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if recorder is not None:
            uninstall_trace_recorder()
        _RUN = None


if __name__ == "__main__":
    sys.exit(main())
