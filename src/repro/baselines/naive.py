"""Single-dataset and unweighted IQB ablations.

Two "IQB minus one idea" baselines for the ablation benches:

* :func:`single_dataset_score` — the full IQB formulas run on *one*
  dataset only. The gap to the corroborated score measures what the
  multi-dataset tier contributes.
* :func:`unweighted_score` — IQB with all weights forced to 1. The gap
  to the expert-weighted score measures what Table 1 contributes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.core.aggregation import QuantileSource
from repro.core.config import IQBConfig
from repro.core.exceptions import DataError
from repro.core.metrics import Metric
from repro.core.scoring import ScoreBreakdown, score_region
from repro.core.usecases import UseCase
from repro.core.weights import (
    DatasetWeights,
    RequirementWeights,
    UseCaseWeights,
)


def single_dataset_score(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
    dataset: str,
) -> ScoreBreakdown:
    """IQB computed from one dataset alone (no corroboration).

    Raises:
        DataError: when the requested dataset is not among the sources.
    """
    if dataset not in sources:
        raise DataError(
            f"dataset {dataset!r} not present (have {sorted(sources)})"
        )
    return score_region({dataset: sources[dataset]}, config)


def all_single_dataset_scores(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> Dict[str, ScoreBreakdown]:
    """Single-dataset IQB for every available dataset."""
    return {
        dataset: single_dataset_score(sources, config, dataset)
        for dataset in sorted(sources)
    }


def unweighted_config(config: IQBConfig) -> IQBConfig:
    """A copy of ``config`` with every weight forced to 1."""
    requirement = RequirementWeights(
        {(u, m): 1 for u in UseCase for m in Metric}
    )
    use_case = UseCaseWeights({u: 1 for u in UseCase})
    dataset_entries: Dict[Tuple[UseCase, Metric, str], int] = {}
    for u in UseCase:
        for m in Metric:
            for d, w in config.dataset_weights.row(u, m).items():
                if w > 0:
                    dataset_entries[(u, m, d)] = 1
    return config.with_(
        requirement_weights=requirement,
        use_case_weights=use_case,
        dataset_weights=DatasetWeights(dataset_entries),
    )


def unweighted_score(
    sources: Mapping[str, QuantileSource],
    config: IQBConfig,
) -> ScoreBreakdown:
    """IQB with all weights flattened to 1 (structure only)."""
    return score_region(sources, unweighted_config(config))
