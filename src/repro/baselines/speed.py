"""Speed-only baseline scores.

The strawman the IQB poster argues against: "the faster data can move,
the better we expect the performance to be". These baselines reduce a
region's measurements to throughput alone, exactly the way headline
speed-test statistics do, so the evaluation benches can ask whether the
multi-metric IQB ranks regions closer to experienced quality.

Two flavours:

* :func:`median_speed_score` — median download (optionally blended with
  upload), normalized by a reference speed and clipped at 1;
* :func:`mean_speed_score` — the same on the mean, which headline
  statistics often (mis)use.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.aggregation import QuantileSource
from repro.core.exceptions import DataError
from repro.core.metrics import Metric

#: "Gigabit-class is as good as it gets": the normalization reference.
DEFAULT_REFERENCE_MBPS = 100.0
#: Headline speed statistics blend download-heavy.
DOWNLOAD_SHARE = 0.8


def _combined_quantile(
    sources: Mapping[str, QuantileSource],
    metric: Metric,
    percentile: float,
) -> float:
    """Sample-weighted mean of a quantile across datasets.

    Raw values from different datasets cannot be pooled (they are
    methodologically different), so the baseline does what public
    dashboards do: average each dataset's published statistic, weighted
    by its sample count.
    """
    total_weight = 0
    acc = 0.0
    for source in sources.values():
        value = source.quantile(metric, percentile)
        if value is None:
            continue
        count = max(1, source.sample_count(metric))
        acc += value * count
        total_weight += count
    if total_weight == 0:
        raise DataError(f"no dataset observes {metric.value}")
    return acc / total_weight


def median_speed_score(
    sources: Mapping[str, QuantileSource],
    reference_mbps: float = DEFAULT_REFERENCE_MBPS,
    download_share: float = DOWNLOAD_SHARE,
) -> float:
    """Speed-only score in [0, 1] from median throughputs.

    ``score = min(1, blend(median_down, median_up) / reference)``.
    """
    return _speed_score(sources, 50.0, reference_mbps, download_share)


def mean_speed_score(
    sources: Mapping[str, QuantileSource],
    reference_mbps: float = DEFAULT_REFERENCE_MBPS,
    download_share: float = DOWNLOAD_SHARE,
) -> float:
    """Speed-only score using a mean-like high quantile (p60).

    Public "average speed" headlines sit above the median because the
    mean of a right-skewed speed distribution does; p60 is a quantile
    stand-in that keeps the QuantileSource interface sufficient.
    """
    return _speed_score(sources, 60.0, reference_mbps, download_share)


def _speed_score(
    sources: Mapping[str, QuantileSource],
    percentile: float,
    reference_mbps: float,
    download_share: float,
) -> float:
    if reference_mbps <= 0:
        raise ValueError(f"reference_mbps must be positive: {reference_mbps}")
    if not 0.0 <= download_share <= 1.0:
        raise ValueError(f"download_share outside [0, 1]: {download_share}")
    down = _combined_quantile(sources, Metric.DOWNLOAD, percentile)
    try:
        up = _combined_quantile(sources, Metric.UPLOAD, percentile)
    except DataError:
        up = down  # upload unobserved anywhere: fall back to download
    blended = download_share * down + (1.0 - download_share) * up
    return min(1.0, blended / reference_mbps)
