"""Comparator scores: speed-only, FCC benchmark, IQB ablations."""

from .fcc import FCC_DOWN_MBPS, FCC_UP_MBPS, FCCVerdict, fcc_verdict
from .naive import (
    all_single_dataset_scores,
    single_dataset_score,
    unweighted_config,
    unweighted_score,
)
from .speed import (
    DEFAULT_REFERENCE_MBPS,
    mean_speed_score,
    median_speed_score,
)

__all__ = [
    "DEFAULT_REFERENCE_MBPS",
    "FCC_DOWN_MBPS",
    "FCC_UP_MBPS",
    "FCCVerdict",
    "all_single_dataset_scores",
    "fcc_verdict",
    "mean_speed_score",
    "median_speed_score",
    "single_dataset_score",
    "unweighted_config",
    "unweighted_score",
]
