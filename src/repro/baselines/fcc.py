"""FCC-style binary broadband benchmark.

The 2024 FCC benchmark defines "served" as 100 Mbit/s down / 20 Mbit/s
up. Applied at the region level with IQB's own percentile rule, this is
the natural *policy* baseline: a region either clears the bar or it
does not, with no latency, loss, or use-case nuance. Comparing its
coarse verdicts against the IQB score shows what the richer framework
adds (and costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.aggregation import AggregationPolicy, QuantileSource, aggregate_metric
from repro.core.exceptions import DataError
from repro.core.metrics import Metric

FCC_DOWN_MBPS = 100.0
FCC_UP_MBPS = 20.0


@dataclass(frozen=True)
class FCCVerdict:
    """Region-level outcome of the FCC benchmark."""

    download_mbps: float
    upload_mbps: float
    download_ok: bool
    upload_ok: bool

    @property
    def served(self) -> bool:
        """True when both directions clear the benchmark."""
        return self.download_ok and self.upload_ok

    @property
    def score(self) -> float:
        """Binary benchmark as a degenerate [0, 1] score."""
        return 1.0 if self.served else 0.0


def fcc_verdict(
    sources: Mapping[str, QuantileSource],
    policy: AggregationPolicy = AggregationPolicy(),
    down_mbps: float = FCC_DOWN_MBPS,
    up_mbps: float = FCC_UP_MBPS,
) -> FCCVerdict:
    """Evaluate the FCC benchmark across corroborating datasets.

    Each direction passes when *every* dataset observing it clears the
    bar (the benchmark's own all-locations spirit applied to datasets).

    Raises:
        DataError: when no dataset observes a direction.
    """
    down_values = []
    up_values = []
    for source in sources.values():
        down = aggregate_metric(source, Metric.DOWNLOAD, policy)
        if down is not None:
            down_values.append(down)
        up = aggregate_metric(source, Metric.UPLOAD, policy)
        if up is not None:
            up_values.append(up)
    if not down_values or not up_values:
        raise DataError("FCC benchmark needs download and upload observations")
    down_aggregate = min(down_values)
    up_aggregate = min(up_values)
    return FCCVerdict(
        download_mbps=down_aggregate,
        upload_mbps=up_aggregate,
        download_ok=down_aggregate >= down_mbps,
        upload_ok=up_aggregate >= up_mbps,
    )
