"""Result sinks: where completed probe measurements go.

Sinks receive each measurement as the runner completes it. Three
implementations cover the realistic deployment modes:

* :class:`MemorySink` — accumulate into a MeasurementSet (analysis in
  the same process);
* :class:`JsonlSink` — stream to an append-only JSONL file (durable
  collection; what a long-running prober would actually do);
* :class:`StreamingQuantileSink` — keep only P² quantile state per
  (region, source, metric), so an arbitrarily long campaign can feed
  the IQB scorer in O(1) memory. Its per-(region, source) views
  implement the QuantileSource protocol directly.
* :class:`SketchSink` — feed a live
  :class:`~repro.measurements.sketchplane.SketchPlane`: like the P²
  sink it holds O(1) state per cell, but its t-digests are mergeable
  and serializable, so a campaign can checkpoint/resume sketch state
  (``state_dict`` / ``restore_state``) and score any prefix of the
  stream through the standard ``score_regions`` surface.

:class:`FanOutSink` fans one runner's results out to several sinks
(e.g. durable JSONL plus a live sketch plane).
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

import json

from repro.core.metrics import Metric
from repro.measurements.collection import MeasurementSet
from repro.measurements.columnar import ColumnarStore, ColumnarView
from repro.measurements.quantile import P2Quantile
from repro.measurements.record import Measurement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import IQBConfig
    from repro.core.scoring import ScoreBreakdown


@runtime_checkable
class ResultSink(Protocol):
    """Anything that accepts completed measurements."""

    def accept(self, measurement: Measurement) -> None:
        """Consume one measurement."""
        ...


class MemorySink:
    """Accumulates measurements in memory.

    Besides the raw :meth:`as_set` snapshot, the sink maintains a lazy
    columnar plane over everything collected so far: :meth:`as_columnar`
    transposes once and is reused until the next :meth:`accept`, so
    periodically re-scoring a live campaign does not re-group the
    ever-growing record list from scratch each refresh.
    """

    def __init__(self) -> None:
        self._records = []
        self._columnar: Optional[ColumnarStore] = None

    def accept(self, measurement: Measurement) -> None:
        self._records.append(measurement)
        self._columnar = None

    def __len__(self) -> int:
        return len(self._records)

    def as_set(self) -> MeasurementSet:
        """Everything collected so far."""
        return MeasurementSet(self._records)

    def as_columnar(self) -> ColumnarStore:
        """Columnar view of everything collected so far (cached)."""
        if self._columnar is None:
            self._columnar = ColumnarStore(list(self._records))
        return self._columnar

    def sources_by_region(self) -> Dict[str, Dict[str, "ColumnarView"]]:
        """region → dataset → QuantileSource over the collected batch."""
        return self.as_columnar().sources_by_region()

    def score_all(
        self,
        config: "IQBConfig",
        workers: int = 1,
        kernel: str = "vectorized",
        quantiles: Optional[str] = None,
    ) -> Dict[str, "ScoreBreakdown"]:
        """Batch-score every region collected so far (columnar path).

        ``workers > 1`` shards the scoring across a worker pool,
        ``kernel`` selects the batch-scoring kernel — bit-identical
        results either way — and ``quantiles`` overrides the config's
        quantile policy (exact / sketch plane selection).
        """
        from repro.core.scoring import score_regions

        return score_regions(
            self.as_columnar(),
            config,
            workers=workers,
            kernel=kernel,
            quantiles=quantiles,
        )


class SketchSink:
    """Folds measurements into a live t-digest plane as they arrive.

    O(1) amortized per measurement and O(cells · delta) memory like
    :class:`StreamingQuantileSink`, but the plane is mergeable and
    serializable: :meth:`state_dict` / :meth:`restore_state` let a
    campaign journal checkpoint mid-stream, and :meth:`score_all`
    re-scores the stream so far without ever materializing records.
    """

    def __init__(self, delta: Optional[int] = None) -> None:
        from repro.measurements.sketchplane import SketchPlane
        from repro.measurements.tdigest import DEFAULT_DELTA

        self._plane = SketchPlane(
            delta=DEFAULT_DELTA if delta is None else delta
        )

    def accept(self, measurement: Measurement) -> None:
        self._plane.add(measurement)

    def __len__(self) -> int:
        return len(self._plane)

    @property
    def plane(self) -> "object":
        """The live :class:`SketchPlane` (shared, not a copy)."""
        return self._plane

    def score_all(self, config: "IQBConfig") -> Dict[str, "ScoreBreakdown"]:
        """Score every region's live sketches (no batch recompute)."""
        from repro.core.scoring import score_regions

        return score_regions(self._plane, config)

    def state_dict(self) -> dict:
        """JSON-compatible checkpoint of the plane."""
        return self._plane.to_state()

    def restore_state(self, state: dict) -> None:
        """Replace the plane with a :meth:`state_dict` checkpoint."""
        from repro.measurements.sketchplane import SketchPlane

        self._plane = SketchPlane.from_state(dict(state))


class JsonlSink:
    """Appends measurements to a JSONL file as they arrive.

    With ``flush_every_record=True`` each accepted measurement is
    flushed to the OS before ``accept`` returns — required when a
    campaign journal records the probe as complete right afterwards,
    since a completed-but-buffered measurement would be lost by a crash
    while the journal survives (breaking resume parity).
    """

    def __init__(
        self,
        path: Union[str, Path],
        flush_every_record: bool = False,
    ) -> None:
        self.path = Path(path)
        self.written = 0
        self.flush_every_record = flush_every_record
        self._handle = open(self.path, "a", encoding="utf-8")

    def accept(self, measurement: Measurement) -> None:
        self._handle.write(json.dumps(measurement.to_dict(), sort_keys=True))
        self._handle.write("\n")
        if self.flush_every_record:
            self._handle.flush()
        self.written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _QuantileView:
    """QuantileSource over one (region, source) of a streaming sink."""

    def __init__(self) -> None:
        self._estimators: Dict[Tuple[Metric, float], P2Quantile] = {}
        self._counts: Dict[Metric, int] = {}

    def _observe(self, metric: Metric, value: float) -> None:
        self._counts[metric] = self._counts.get(metric, 0) + 1
        for key, estimator in self._estimators.items():
            if key[0] is metric:
                estimator.add(value)

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        if self._counts.get(metric, 0) == 0:
            return None
        estimator = self._estimators.get((metric, percentile))
        if estimator is None or len(estimator) == 0:
            return None
        return estimator.value()

    def sample_count(self, metric: Metric) -> int:
        return self._counts.get(metric, 0)


class StreamingQuantileSink:
    """O(1)-memory sink tracking P² quantiles per (region, source, metric).

    The percentiles to track must be declared up front (P² cannot answer
    arbitrary quantiles after the fact); by default the sink tracks
    exactly what the IQB literal and conservative semantics need.
    """

    DEFAULT_PERCENTILES = (5.0, 50.0, 95.0)

    def __init__(self, percentiles: Tuple[float, ...] = DEFAULT_PERCENTILES) -> None:
        if not percentiles:
            raise ValueError("StreamingQuantileSink needs >= 1 percentile")
        for percentile in percentiles:
            if not 0.0 < percentile < 100.0:
                raise ValueError(f"percentile outside (0, 100): {percentile}")
        self._percentiles = tuple(percentiles)
        self._views: Dict[Tuple[str, str], _QuantileView] = {}
        self.accepted = 0

    def _view(self, region: str, source: str) -> _QuantileView:
        key = (region, source)
        view = self._views.get(key)
        if view is None:
            view = _QuantileView()
            for metric in Metric:
                for percentile in self._percentiles:
                    view._estimators[(metric, percentile)] = P2Quantile(
                        percentile / 100.0
                    )
            self._views[key] = view
        return view

    def accept(self, measurement: Measurement) -> None:
        view = self._view(measurement.region, measurement.source)
        for metric in Metric:
            value = measurement.value(metric)
            if value is not None:
                view._observe(metric, value)
        self.accepted += 1

    def regions(self) -> Tuple[str, ...]:
        """Regions seen so far, sorted."""
        return tuple(sorted({region for region, _ in self._views}))

    def sources_for(self, region: str) -> Dict[str, _QuantileView]:
        """QuantileSources per dataset for one region.

        The returned mapping plugs straight into
        :func:`repro.core.scoring.score_region` — with the caveat that
        the scorer's percentile must be one the sink was tracking.
        """
        return {
            source: view
            for (view_region, source), view in self._views.items()
            if view_region == region
        }


class _DigestView:
    """QuantileSource over one (region, source) of a TDigestSink."""

    def __init__(self, delta: int) -> None:
        self._delta = delta
        self._digests: Dict[Metric, "TDigest"] = {}

    def _observe(self, metric: Metric, value: float) -> None:
        from repro.measurements.tdigest import TDigest

        digest = self._digests.get(metric)
        if digest is None:
            digest = TDigest(delta=self._delta)
            self._digests[metric] = digest
        digest.add(value)

    def quantile(self, metric: Metric, percentile: float) -> Optional[float]:
        digest = self._digests.get(metric)
        if digest is None:
            return None
        return digest.quantile_or_none(percentile)

    def sample_count(self, metric: Metric) -> int:
        digest = self._digests.get(metric)
        return 0 if digest is None else len(digest)

    def merged_with(self, other: "_DigestView") -> "_DigestView":
        view = _DigestView(min(self._delta, other._delta))
        for metric in set(self._digests) | set(other._digests):
            mine = self._digests.get(metric)
            theirs = other._digests.get(metric)
            if mine is not None and theirs is not None:
                view._digests[metric] = mine.merge(theirs)
            else:
                view._digests[metric] = mine or theirs  # type: ignore[assignment]
        return view


class TDigestSink:
    """Mergeable bounded-memory sink: t-digests per (region, source, metric).

    Unlike :class:`StreamingQuantileSink` (P², fixed percentiles,
    unmergeable), digests answer *any* percentile after the fact and
    two sinks from different collector shards combine losslessly via
    :meth:`merge` — the property a distributed measurement fleet needs.
    """

    def __init__(self, delta: int = 100) -> None:
        self._delta = delta
        self._views: Dict[Tuple[str, str], _DigestView] = {}
        self.accepted = 0

    def accept(self, measurement: Measurement) -> None:
        key = (measurement.region, measurement.source)
        view = self._views.get(key)
        if view is None:
            view = _DigestView(self._delta)
            self._views[key] = view
        for metric in Metric:
            value = measurement.value(metric)
            if value is not None:
                view._observe(metric, value)
        self.accepted += 1

    def regions(self) -> Tuple[str, ...]:
        """Regions seen so far, sorted."""
        return tuple(sorted({region for region, _ in self._views}))

    def sources_for(self, region: str) -> Dict[str, _DigestView]:
        """QuantileSources per dataset for one region (→ score_region)."""
        return {
            source: view
            for (view_region, source), view in self._views.items()
            if view_region == region
        }

    def merge(self, other: "TDigestSink") -> "TDigestSink":
        """Combine two collector shards (inputs unchanged)."""
        merged = TDigestSink(delta=min(self._delta, other._delta))
        merged.accepted = self.accepted + other.accepted
        for key in set(self._views) | set(other._views):
            mine = self._views.get(key)
            theirs = other._views.get(key)
            if mine is not None and theirs is not None:
                merged._views[key] = mine.merged_with(theirs)
            else:
                merged._views[key] = mine or theirs  # type: ignore[assignment]
        return merged


class FanOutSink:
    """Forwards each measurement to several child sinks."""

    def __init__(self, *sinks: ResultSink) -> None:
        if not sinks:
            raise ValueError("FanOutSink needs at least one child sink")
        self._sinks = sinks

    def accept(self, measurement: Measurement) -> None:
        for sink in self._sinks:
            sink.accept(measurement)
