"""Probe schedules: when and where to measure.

A schedule is just an iterable of
:class:`~repro.probing.backends.ProbeRequest`, generated
deterministically from a seed. Three generators cover the shapes real
measurement campaigns take:

* :class:`UniformSchedule` — tests spread uniformly over the window
  (infrastructure-driven probing, e.g. RIPE-Atlas-style anchors);
* :class:`DiurnalSchedule` — evening-biased (crowdsourced speed tests:
  people measure when the network feels slow);
* :class:`PoissonSchedule` — memoryless arrivals at a target rate
  (organic test traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.netsim.congestion import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.netsim.rng import make_rng

from .backends import ProbeRequest


def _check_window(days: float) -> None:
    if days <= 0:
        raise ValueError(f"days must be positive: {days}")


def _cross(regions: Sequence[str], clients: Sequence[str]) -> List[Tuple[str, str]]:
    if not regions:
        raise ValueError("schedule needs at least one region")
    if not clients:
        raise ValueError("schedule needs at least one client")
    return [(r, c) for r in regions for c in clients]


@dataclass(frozen=True)
class UniformSchedule:
    """Evenly spread tests per (region, client) over the window."""

    regions: Tuple[str, ...]
    clients: Tuple[str, ...]
    tests_per_pair: int = 200
    days: float = 7.0
    start_timestamp: float = 0.0
    seed: int = 0

    def __iter__(self) -> Iterator[ProbeRequest]:
        _check_window(self.days)
        window = self.days * SECONDS_PER_DAY
        for region, client in _cross(self.regions, self.clients):
            rng = make_rng(self.seed, "uniform", region, client)
            for i in range(self.tests_per_pair):
                # Stratified-uniform: one test per equal slice, jittered.
                slice_start = window * i / self.tests_per_pair
                slice_width = window / self.tests_per_pair
                timestamp = (
                    self.start_timestamp
                    + slice_start
                    + float(rng.uniform(0.0, slice_width))
                )
                yield ProbeRequest(client=client, region=region, timestamp=timestamp)


@dataclass(frozen=True)
class DiurnalSchedule:
    """Crowdsourced-style schedule: a share of tests in the evening."""

    regions: Tuple[str, ...]
    clients: Tuple[str, ...]
    tests_per_pair: int = 200
    days: float = 7.0
    start_timestamp: float = 0.0
    evening_bias: float = 0.5
    seed: int = 0

    def __iter__(self) -> Iterator[ProbeRequest]:
        _check_window(self.days)
        if not 0.0 <= self.evening_bias <= 1.0:
            raise ValueError(f"evening_bias outside [0, 1]: {self.evening_bias}")
        whole_days = max(1, int(self.days))
        window_end = self.start_timestamp + self.days * SECONDS_PER_DAY
        for region, client in _cross(self.regions, self.clients):
            rng = make_rng(self.seed, "diurnal", region, client)
            for _ in range(self.tests_per_pair):
                day = float(rng.integers(0, whole_days))
                if rng.random() < self.evening_bias:
                    hour = float(rng.uniform(18.0, 23.0))
                else:
                    hour = float(rng.uniform(0.0, 24.0))
                timestamp = (
                    self.start_timestamp
                    + day * SECONDS_PER_DAY
                    + hour * SECONDS_PER_HOUR
                )
                # Fractional final days: keep the draw inside the window.
                timestamp = min(timestamp, window_end - 1.0)
                yield ProbeRequest(client=client, region=region, timestamp=timestamp)


@dataclass(frozen=True)
class PoissonSchedule:
    """Memoryless arrivals at ``rate_per_day`` per (region, client)."""

    regions: Tuple[str, ...]
    clients: Tuple[str, ...]
    rate_per_day: float = 30.0
    days: float = 7.0
    start_timestamp: float = 0.0
    seed: int = 0

    def __iter__(self) -> Iterator[ProbeRequest]:
        _check_window(self.days)
        if self.rate_per_day <= 0:
            raise ValueError(f"rate_per_day must be positive: {self.rate_per_day}")
        window = self.days * SECONDS_PER_DAY
        mean_gap = SECONDS_PER_DAY / self.rate_per_day
        for region, client in _cross(self.regions, self.clients):
            rng = make_rng(self.seed, "poisson", region, client)
            t = float(rng.exponential(mean_gap))
            while t < window:
                yield ProbeRequest(
                    client=client,
                    region=region,
                    timestamp=self.start_timestamp + t,
                )
                t += float(rng.exponential(mean_gap))
