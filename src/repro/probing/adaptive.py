"""Adaptive probe allocation: spend the test budget where it matters.

A barometer operator has a finite probe budget (vantage-point capacity,
server load, data costs) and many regions. Uniform allocation wastes
tests on regions whose score is already pinned down and starves regions
whose score straddles a threshold. :class:`AdaptiveAllocator` closes
the loop between :mod:`repro.core.uncertainty` and the probing layer:

1. seed every region with a pilot round;
2. bootstrap each region's score CI from the data so far;
3. allocate the next round proportionally to CI width;
4. repeat until the budget is spent.

The ``ext-adaptive`` bench compares final worst-case CI width against
uniform allocation at the same total budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import IQBConfig
from repro.core.exceptions import DataError
from repro.core.scoring import QUANTILE_SOURCES, score_region
from repro.core.uncertainty import bootstrap_score
from repro.measurements.collection import MeasurementSet
from repro.netsim.rng import make_rng
from repro.obs import counter, gauge, get_logger

_logger = get_logger(__name__)

_CI_COMPUTED = counter("adaptive.ci.computed")
_CI_EMPTY = counter("adaptive.ci.empty_regions")
_CI_FALLBACKS = counter("adaptive.ci.fallbacks")

# Campaign-progress gauges: a telemetry scrape mid-campaign shows how
# far the allocator has gotten and how much budget is left to spend.
_ROUNDS_DONE = gauge("adaptive.rounds.completed")
_BUDGET_LEFT = gauge("adaptive.budget.remaining")

from repro.resilience import RetryPolicy
from repro.resilience.breaker import BreakerBoard

from .backends import MeasurementBackend, ProbeRequest
from .runner import ProbeRunner
from .sinks import FanOutSink, MemorySink, SketchSink


@dataclass(frozen=True)
class AllocationRound:
    """Audit record of one adaptive round.

    ``scores`` is populated only by sketch-mode campaigns: the
    region's IQB read from the live t-digest plane after the round,
    an incremental re-score instead of a per-round batch recompute
    (regions still unscorable at that point are absent).
    """

    index: int
    allocation: Mapping[str, int]
    ci_widths: Mapping[str, float]
    scores: Mapping[str, float] = dataclasses_field(default_factory=dict)


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of an adaptive campaign."""

    records: MeasurementSet
    rounds: Tuple[AllocationRound, ...]
    final_ci_widths: Mapping[str, float]

    @property
    def worst_ci_width(self) -> float:
        """The widest final region CI — what adaptivity minimizes."""
        return max(self.final_ci_widths.values())

    def tests_per_region(self) -> Dict[str, int]:
        """Total probes each region ended up receiving."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.region] = counts.get(record.region, 0) + 1
        return counts


class AdaptiveAllocator:
    """Uncertainty-driven probe allocation across regions."""

    def __init__(
        self,
        backend: MeasurementBackend,
        config: IQBConfig,
        seed: int = 0,
        pilot_per_region: int = 60,
        bootstrap_replicates: int = 60,
        window_days: float = 7.0,
        retry_policy: Optional["RetryPolicy"] = None,
        breakers: Optional["BreakerBoard"] = None,
        quantiles: str = "exact",
    ) -> None:
        """Args:
            backend: where probes run (all its regions participate).
            config: scoring config whose score the CI is computed on.
            pilot_per_region: round-0 probes per region (split across
                the backend's clients).
            bootstrap_replicates: bootstrap size per CI estimate.
            window_days: timestamps are spread over this window.
            retry_policy: forwarded to the internal ProbeRunner.
            breakers: forwarded to the internal ProbeRunner.
            quantiles: ``"sketch"`` tees every probe result into a live
                t-digest plane and records each round's region scores
                incrementally (see :class:`AllocationRound.scores`);
                ``"exact"`` (default) skips per-round score tracking.
                CI widths always bootstrap over the raw records — the
                resample needs full-fidelity samples either way.
        """
        if pilot_per_region < len(backend.clients()):
            raise ValueError(
                f"pilot_per_region must cover every client at least once: "
                f"{pilot_per_region} < {len(backend.clients())}"
            )
        if quantiles not in QUANTILE_SOURCES:
            raise ValueError(
                f"unknown quantile source: {quantiles!r} "
                f"(have {QUANTILE_SOURCES})"
            )
        self.backend = backend
        self.config = config
        self.seed = seed
        self.pilot_per_region = pilot_per_region
        self.bootstrap_replicates = bootstrap_replicates
        self.window_days = window_days
        self.retry_policy = retry_policy
        self.breakers = breakers
        self.quantiles = quantiles

    @staticmethod
    def _health_tick() -> None:
        """Sample the installed health monitor's SLOs after a round.

        Adaptive campaigns close no monitor windows, so without this
        the SLO burn-rate series would never accumulate samples.
        """
        from repro.obs.health import get_health_monitor

        health = get_health_monitor()
        if health is not None:
            health.tick()

    def _schedule(
        self, allocation: Mapping[str, int], round_index: int
    ) -> List[ProbeRequest]:
        """Turn a per-region probe count into concrete requests."""
        requests: List[ProbeRequest] = []
        clients = self.backend.clients()
        for region in sorted(allocation):
            count = allocation[region]
            rng = make_rng(self.seed, "adaptive", region, round_index)
            for i in range(count):
                client = clients[i % len(clients)]
                timestamp = float(
                    rng.uniform(0.0, self.window_days * 86400.0)
                )
                requests.append(
                    ProbeRequest(
                        client=client, region=region, timestamp=timestamp
                    )
                )
        return requests

    def _sketch_scores(
        self, sketch: Optional[SketchSink]
    ) -> Dict[str, float]:
        """Region scores read from the live plane (sketch mode only)."""
        if sketch is None:
            return {}
        scores: Dict[str, float] = {}
        for region, sources in sketch.plane.sources_by_region().items():
            try:
                scores[region] = score_region(
                    sources, self.config, quantile_source="sketch"
                ).value
            except DataError:
                continue  # not yet scorable this round; CI covers it
        return scores

    def _ci_widths(self, records: MeasurementSet) -> Dict[str, float]:
        widths: Dict[str, float] = {}
        for region in self.backend.regions():
            subset = records.for_region(region)
            if len(subset) == 0:
                _CI_EMPTY.inc()
                widths[region] = 1.0  # no data: maximal uncertainty
                continue
            try:
                result = bootstrap_score(
                    subset.group_by_source(),
                    self.config,
                    replicates=self.bootstrap_replicates,
                    seed=self.seed,
                )
                widths[region] = result.width95
                _CI_COMPUTED.inc()
            except DataError as exc:
                # Unscorable region: fall back to maximal uncertainty,
                # but record that the bootstrap was impossible.
                _CI_FALLBACKS.inc()
                _logger.warning(
                    "CI bootstrap fell back to maximal width: %s",
                    exc,
                    extra={"ctx": {"region": region, "samples": len(subset)}},
                )
                widths[region] = 1.0
        return widths

    @staticmethod
    def _proportional(
        widths: Mapping[str, float], budget: int, minimum: int
    ) -> Dict[str, int]:
        """Allocate ``budget`` probes ∝ CI width, with a per-region floor.

        The floor is honoured only while the budget covers it; a budget
        below ``minimum × regions`` degrades to an even split so the
        round never overspends.
        """
        regions = sorted(widths)
        floor_total = minimum * len(regions)
        if budget < floor_total:
            base = budget // len(regions)
            allocation = {region: base for region in regions}
            for region in regions[: budget - base * len(regions)]:
                allocation[region] += 1
            return allocation
        remaining = max(0, budget - floor_total)
        total_width = sum(widths.values())
        allocation = {region: minimum for region in regions}
        if total_width > 0 and remaining > 0:
            raw = {
                region: remaining * widths[region] / total_width
                for region in regions
            }
            for region in regions:
                allocation[region] += int(raw[region])
            shortfall = budget - sum(allocation.values())
            for region in sorted(
                regions, key=lambda r: raw[r] - int(raw[r]), reverse=True
            )[:shortfall]:
                allocation[region] += 1
        return allocation

    def run(
        self,
        total_budget: int,
        rounds: int = 3,
        min_per_region_per_round: int = 6,
    ) -> AdaptiveResult:
        """Execute a full adaptive campaign.

        Round 0 is the uniform pilot; each later round re-allocates the
        remaining budget by current CI width.

        Raises:
            ValueError: when the budget cannot cover the pilot round.
        """
        regions = self.backend.regions()
        pilot_total = self.pilot_per_region * len(regions)
        if total_budget < pilot_total:
            raise ValueError(
                f"budget {total_budget} below pilot requirement {pilot_total}"
            )
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1: {rounds}")

        sink = MemorySink()
        sketch: Optional[SketchSink] = None
        runner_sink: object = sink
        if self.quantiles == "sketch":
            # Every result folds into the live plane as it lands, so
            # round-end scores are sketch reads, not batch recomputes.
            sketch = SketchSink()
            runner_sink = FanOutSink(sink, sketch)
        runner = ProbeRunner(
            self.backend,
            runner_sink,
            max_attempts=3,
            retry_policy=self.retry_policy,
            breakers=self.breakers,
        )
        audit: List[AllocationRound] = []

        pilot = {region: self.pilot_per_region for region in regions}
        runner.run(self._schedule(pilot, round_index=0))
        audit.append(
            AllocationRound(
                index=0,
                allocation=pilot,
                ci_widths=self._ci_widths(sink.as_set()),
                scores=self._sketch_scores(sketch),
            )
        )

        remaining = total_budget - pilot_total
        _ROUNDS_DONE.set(1.0)
        _BUDGET_LEFT.set(remaining)
        self._health_tick()
        adaptive_rounds = max(0, rounds - 1)
        for round_index in range(1, adaptive_rounds + 1):
            if remaining <= 0:
                break
            this_round = remaining // (adaptive_rounds - round_index + 1)
            if this_round <= 0:
                continue
            widths = audit[-1].ci_widths
            allocation = self._proportional(
                widths, this_round, min_per_region_per_round
            )
            runner.run(self._schedule(allocation, round_index))
            remaining -= sum(allocation.values())
            _ROUNDS_DONE.set(round_index + 1)
            _BUDGET_LEFT.set(remaining)
            self._health_tick()
            audit.append(
                AllocationRound(
                    index=round_index,
                    allocation=allocation,
                    ci_widths=self._ci_widths(sink.as_set()),
                    scores=self._sketch_scores(sketch),
                )
            )

        records = sink.as_set()
        return AdaptiveResult(
            records=records,
            rounds=tuple(audit),
            final_ci_widths=self._ci_widths(records),
        )


def uniform_campaign(
    backend: MeasurementBackend,
    config: IQBConfig,
    total_budget: int,
    seed: int = 0,
    window_days: float = 7.0,
    bootstrap_replicates: int = 60,
) -> AdaptiveResult:
    """The non-adaptive comparator: the same budget, split evenly.

    Returns the same result type so the bench can compare like with
    like (single round, uniform allocation).
    """
    allocator = AdaptiveAllocator(
        backend,
        config,
        seed=seed,
        pilot_per_region=total_budget // len(backend.regions()),
        bootstrap_replicates=bootstrap_replicates,
        window_days=window_days,
    )
    return allocator.run(total_budget=total_budget, rounds=1)
