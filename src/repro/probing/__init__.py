"""Active-measurement framework: schedules, backends, runner, sinks."""

from .adaptive import (
    AdaptiveAllocator,
    AdaptiveResult,
    AllocationRound,
    uniform_campaign,
)
from .backends import MeasurementBackend, ProbeRequest, SimulatedBackend
from .monitor import Alert, BarometerMonitor
from .runner import FailedProbe, ProbeRunner, RunReport
from .scheduler import DiurnalSchedule, PoissonSchedule, UniformSchedule
from .sinks import (
    FanOutSink,
    JsonlSink,
    MemorySink,
    ResultSink,
    SketchSink,
    StreamingQuantileSink,
    TDigestSink,
)

__all__ = [
    "AdaptiveAllocator",
    "AdaptiveResult",
    "Alert",
    "AllocationRound",
    "BarometerMonitor",
    "DiurnalSchedule",
    "FailedProbe",
    "FanOutSink",
    "JsonlSink",
    "MeasurementBackend",
    "MemorySink",
    "PoissonSchedule",
    "ProbeRequest",
    "ProbeRunner",
    "ResultSink",
    "RunReport",
    "SimulatedBackend",
    "SketchSink",
    "StreamingQuantileSink",
    "TDigestSink",
    "UniformSchedule",
    "uniform_campaign",
]
