"""Measurement backends for the probing framework.

A backend is where probes actually run. The protocol is deliberately
tiny — one method turning a probe request into a
:class:`~repro.measurements.record.Measurement` — so that the simulated
backend shipped here and any future live backend (a real NDT client, a
Cloudflare API wrapper) are interchangeable from the scheduler's and
runner's point of view.

:class:`SimulatedBackend` wraps :mod:`repro.netsim`: it owns the
subscriber populations of one or more regions and serves tests from the
registered measurement clients, with optional failure injection so the
runner's retry logic can be exercised honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.core.exceptions import BackendError
from repro.measurements.record import Measurement
from repro.netsim.clients import MeasurementClient, default_clients
from repro.netsim.link import SubscriberLink
from repro.netsim.population import RegionProfile, build_links
from repro.netsim.rng import make_rng


@dataclass(frozen=True)
class ProbeRequest:
    """One unit of measurement work: which dataset, where, when."""

    client: str
    region: str
    timestamp: float


@runtime_checkable
class MeasurementBackend(Protocol):
    """Anything that can execute a ProbeRequest."""

    def run(self, request: ProbeRequest) -> Measurement:
        """Execute one probe; raises BackendError on failure."""
        ...

    def regions(self) -> Tuple[str, ...]:
        """Regions this backend can probe."""
        ...

    def clients(self) -> Tuple[str, ...]:
        """Dataset clients this backend can run."""
        ...


class SimulatedBackend:
    """Probe backend over simulated vantage-point populations."""

    def __init__(
        self,
        profiles: Iterable[RegionProfile],
        seed: int,
        subscribers: int = 150,
        clients: Optional[Iterable[MeasurementClient]] = None,
        failure_rate: float = 0.0,
    ) -> None:
        """Args:
            profiles: regions to host vantage points in.
            seed: master seed; everything downstream is deterministic.
            subscribers: population size per region.
            clients: measurement methodologies (default: NDT/Cloudflare/
                Ookla trio).
            failure_rate: probability that any probe fails with
                BackendError (models unreachable servers, aborted tests).
        """
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(f"failure_rate outside [0, 1): {failure_rate}")
        profile_list = list(profiles)
        if not profile_list:
            raise ValueError("SimulatedBackend needs at least one region")
        self._seed = seed
        self._failure_rate = failure_rate
        self._profiles: Dict[str, RegionProfile] = {
            profile.name: profile for profile in profile_list
        }
        self._links: Dict[str, List[SubscriberLink]] = {
            name: build_links(profile, subscribers, seed)
            for name, profile in self._profiles.items()
        }
        client_list = (
            list(clients) if clients is not None else list(default_clients())
        )
        self._clients: Dict[str, MeasurementClient] = {
            client.name: client for client in client_list
        }
        self._rngs: Dict[Tuple[str, str], np.random.Generator] = {}
        self.probes_run = 0
        self.probes_failed = 0

    def regions(self) -> Tuple[str, ...]:
        return tuple(sorted(self._profiles))

    def clients(self) -> Tuple[str, ...]:
        return tuple(sorted(self._clients))

    def _rng(self, region: str, client: str) -> np.random.Generator:
        key = (region, client)
        if key not in self._rngs:
            self._rngs[key] = make_rng(self._seed, "probe", region, client)
        return self._rngs[key]

    def run(self, request: ProbeRequest) -> Measurement:
        """Execute one probe against the simulated population.

        Raises:
            BackendError: for unknown regions/clients or injected
                transient failures.
        """
        profile = self._profiles.get(request.region)
        if profile is None:
            raise BackendError(
                f"unknown region {request.region!r} "
                f"(have {sorted(self._profiles)})"
            )
        client = self._clients.get(request.client)
        if client is None:
            raise BackendError(
                f"unknown client {request.client!r} "
                f"(have {sorted(self._clients)})"
            )
        rng = self._rng(request.region, request.client)
        self.probes_run += 1
        if self._failure_rate > 0 and rng.random() < self._failure_rate:
            self.probes_failed += 1
            raise BackendError(
                f"transient failure running {request.client} in "
                f"{request.region} at t={request.timestamp:.0f}"
            )
        links = self._links[request.region]
        link = links[int(rng.integers(0, len(links)))]
        utilization = profile.diurnal.sample_utilization(
            rng, request.timestamp, profile.load_factor
        )
        return client.measure(link, utilization, request.timestamp, rng)
