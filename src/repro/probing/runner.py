"""The probe runner: schedules in, measurements out.

Executes every :class:`~repro.probing.backends.ProbeRequest` of a
schedule against a backend, with bounded retries on
:class:`~repro.core.exceptions.BackendError` (transient failures are a
fact of life for real measurement infrastructure) and a final abandon
count, delivering successes to a sink and returning an auditable
:class:`RunReport`.

The runner is synchronous and single-threaded on purpose: probe
*timing* lives in the schedule's timestamps, not in wall-clock
concurrency, so a deterministic loop is both sufficient and exactly
reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.exceptions import BackendError
from repro.obs import counter, gauge, get_logger, timer

from .backends import MeasurementBackend, ProbeRequest
from .sinks import ResultSink

_logger = get_logger(__name__)

_SCHEDULED = counter("probe.runner.scheduled")
_SUCCEEDED = counter("probe.runner.succeeded")
_RETRIED = counter("probe.runner.retried")
_ABANDONED = counter("probe.runner.abandoned")

# Liveness gauges, maintained on every run (telemetry server or not) so
# `iqb metrics` shows batch-run liveness through the same vocabulary a
# live /healthz scrape uses.
_UPTIME = gauge("probe.runner.uptime_s")
_LAST_RUN = gauge("probe.runner.last_run_unix")

#: Process start reference for the uptime gauge (module import is as
#: close to process start as a library can observe).
_PROCESS_START_UNIX = time.time()


@dataclass(frozen=True)
class FailedProbe:
    """A probe abandoned after exhausting its retries."""

    request: ProbeRequest
    attempts: int
    last_error: str


@dataclass(frozen=True)
class RunReport:
    """Outcome accounting for one runner invocation."""

    scheduled: int
    succeeded: int
    retried: int
    abandoned: Tuple[FailedProbe, ...]
    #: Wall-clock bounds of the invocation (Unix seconds; 0.0 when the
    #: report was constructed by hand rather than by ``run``).
    started_unix: float = 0.0
    finished_unix: float = 0.0

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds the invocation took."""
        return self.finished_unix - self.started_unix

    @property
    def success_rate(self) -> Optional[float]:
        """Fraction of scheduled probes that eventually succeeded.

        ``None`` when nothing was scheduled: an empty run carries no
        evidence of health, and reporting it as 1.0 let a monitor that
        scheduled zero probes read as perfectly healthy.
        """
        if self.scheduled == 0:
            return None
        return self.succeeded / self.scheduled


class ProbeRunner:
    """Executes probe schedules against a backend with retries."""

    def __init__(
        self,
        backend: MeasurementBackend,
        sink: ResultSink,
        max_attempts: int = 3,
    ) -> None:
        """Args:
            backend: where probes run.
            sink: where successful measurements go.
            max_attempts: total tries per probe (1 = no retries).
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        self.backend = backend
        self.sink = sink
        self.max_attempts = max_attempts
        # Per-backend probe latency histogram, bound once per runner so
        # the hot loop does no registry lookups.
        self._latency = timer(f"probe.latency.{type(backend).__name__}")

    def run(self, schedule: Iterable[ProbeRequest]) -> RunReport:
        """Execute every request in the schedule.

        BackendErrors are retried up to ``max_attempts`` times and then
        abandoned (recorded in the report); any other exception is a
        bug and propagates.
        """
        started_unix = time.time()
        scheduled = 0
        succeeded = 0
        retried = 0
        abandoned: List[FailedProbe] = []
        debug = _logger.isEnabledFor(10)  # logging.DEBUG
        for request in schedule:
            scheduled += 1
            _SCHEDULED.inc()
            last_error = ""
            for attempt in range(1, self.max_attempts + 1):
                started = time.perf_counter()
                try:
                    measurement = self.backend.run(request)
                except BackendError as exc:
                    self._latency.observe(time.perf_counter() - started)
                    last_error = str(exc)
                    if attempt < self.max_attempts:
                        retried += 1
                        _RETRIED.inc()
                        if debug:
                            _logger.debug(
                                "probe retry",
                                extra={
                                    "ctx": {
                                        "client": request.client,
                                        "region": request.region,
                                        "attempt": attempt,
                                        "error": last_error,
                                    }
                                },
                            )
                    continue
                self._latency.observe(time.perf_counter() - started)
                self.sink.accept(measurement)
                succeeded += 1
                _SUCCEEDED.inc()
                break
            else:
                _ABANDONED.inc()
                _logger.warning(
                    "probe abandoned after %d attempts",
                    self.max_attempts,
                    extra={
                        "ctx": {
                            "client": request.client,
                            "region": request.region,
                            "error": last_error,
                        }
                    },
                )
                abandoned.append(
                    FailedProbe(
                        request=request,
                        attempts=self.max_attempts,
                        last_error=last_error,
                    )
                )
        finished_unix = time.time()
        _LAST_RUN.set(finished_unix)
        _UPTIME.set(finished_unix - _PROCESS_START_UNIX)
        return RunReport(
            scheduled=scheduled,
            succeeded=succeeded,
            retried=retried,
            abandoned=tuple(abandoned),
            started_unix=started_unix,
            finished_unix=finished_unix,
        )
